//! A guided tour of the MLL machinery on a Figure-5-style local region:
//! prints the region, the insertion intervals of every row, every valid
//! insertion point with its cost, and the realized placement of the best
//! one — the pipeline of Sections 4 and 5 of the paper made visible.
//!
//! ```text
//! cargo run --example figure_walkthrough
//! ```

use multirow_legalize::legalize::{
    enumerate_insertion_points, realize, InsertionPoint, LocalRegion, TargetSpec,
};
use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Like Figure 5: four rows with five local cells, one of them
    // (cell `a`) double-row height, and a 2-wide, 3-row-tall target.
    let mut b = DesignBuilder::new(4, 16);
    // `a` sits with its bottom on row 1, so its native rail is VSS.
    let a = b.add_cell_with_rail("a", 2, 2, PowerRail::Vss);
    let c2 = b.add_cell("b", 3, 1);
    let c3 = b.add_cell("c", 2, 1);
    let c4 = b.add_cell("d", 3, 1);
    let c5 = b.add_cell("e", 2, 1);
    let target = b.add_cell("t", 2, 3);
    let design = b.finish()?;
    let mut state = PlacementState::new(&design);
    state.place(&design, a, SitePoint::new(6, 1))?;
    state.place(&design, c2, SitePoint::new(10, 3))?;
    state.place(&design, c3, SitePoint::new(2, 2))?;
    state.place(&design, c4, SitePoint::new(1, 0))?;
    state.place(&design, c5, SitePoint::new(10, 0))?;

    println!("local region before insertion:");
    draw(&design, &state, None);

    // Extract the local region covering the whole (tiny) floorplan.
    let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 16, 4));
    let spec = TargetSpec {
        w: 2,
        h: 3,
        x: 5,
        y: 0,
        rail: PowerRail::Vdd,
    };

    println!("\nleftmost/rightmost placements (Section 5.1.1):");
    for i in 0..region.cells.len() {
        println!(
            "  {}: x = {}, xL = {}, xR = {}",
            design.cell(region.cells.id[i]).name(),
            region.cells.x[i],
            region.cells.x_left[i],
            region.cells.x_right[i]
        );
    }

    println!("\ninsertion intervals for a {}x{} target:", spec.w, spec.h);
    for iv in region.insertion_intervals(spec.w) {
        let name = |c: Option<u32>| match c {
            Some(i) => design.cell(region.cells.id[i as usize]).name().to_string(),
            None => "·".into(), // segment boundary (the paper's L/R)
        };
        println!(
            "  row {}: ({}, {}) feasible x in {}",
            iv.row,
            name(iv.left),
            name(iv.right),
            iv.range
        );
    }

    let cfg = LegalizerConfig::paper().with_rail_mode(PowerRailMode::Relaxed);
    let mut points = enumerate_insertion_points(&region, &design, &spec, &cfg);
    points.sort_by(|x, y| x.eval.cost.total_cmp(&y.eval.cost));
    println!("\nvalid insertion points (Section 5.1.3), best first:");
    for p in &points {
        println!("  {}", describe(&design, &region, p));
    }

    let best = points.first().expect("feasible problem");
    let realization = realize(&region, best, &spec);
    println!(
        "\nrealizing the best insertion point: target at x = {}, row {}, {} cells shifted",
        realization.target_x,
        realization.target_row,
        realization.moves.len()
    );
    state.shift_batch(&design, &realization.moves)?;
    state.place_ignoring_rails(
        &design,
        target,
        SitePoint::new(realization.target_x, realization.target_row),
    )?;
    println!("\nlocal region after insertion:");
    draw(&design, &state, Some(target));
    check_legal(&design, &state, RailCheck::Ignore).map_err(|r| format!("{r}"))?;
    println!("\nresult verified legal");
    Ok(())
}

fn describe(design: &Design, region: &LocalRegion, p: &InsertionPoint) -> String {
    let gaps: Vec<String> = p
        .intervals
        .iter()
        .map(|iv| {
            let name = |c: Option<u32>| match c {
                Some(i) => design.cell(region.cells.id[i as usize]).name().to_string(),
                None => "·".into(),
            };
            format!("({}, {}, {})", iv.row, name(iv.left), name(iv.right))
        })
        .collect();
    format!(
        "{{{}}} -> x = {}, cost = {}",
        gaps.join(", "),
        p.eval.x,
        p.eval.cost
    )
}

/// ASCII rendering: rows top-down, one character per site.
fn draw(design: &Design, state: &PlacementState, highlight: Option<CellId>) {
    let fp = design.floorplan();
    let width = fp.bounds().w as usize;
    let mut grid = vec![vec!['.'; width]; fp.num_rows() as usize];
    for (id, pos) in state.iter_placed() {
        let cell = design.cell(id);
        let ch = if Some(id) == highlight {
            'T'
        } else {
            cell.name().chars().next().unwrap_or('?')
        };
        for y in pos.y..pos.y + cell.height() {
            for x in pos.x..pos.x + cell.width() {
                grid[y as usize][x as usize] = ch;
            }
        }
    }
    for (y, row) in grid.iter().enumerate().rev() {
        println!("  row {y}: {}", row.iter().collect::<String>());
    }
}
