//! Benchmark file I/O: write a generated design as Bookshelf and as
//! LEF/DEF, read both back, and legalize the parsed copy — the workflow a
//! user with real ISPD2015-style files would follow.
//!
//! ```text
//! cargo run --example benchmark_io
//! ```

use multirow_legalize::parsers::{bookshelf, lefdef};
use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::new("io_demo", 800, 80, 0.45, 0.0);
    let design = generate(&spec, &GeneratorConfig::default())?;
    let dir = std::env::temp_dir().join("multirow_legalize_io_demo");
    std::fs::create_dir_all(&dir)?;

    // Bookshelf out + in.
    bookshelf::write(&design, &dir, "io_demo")?;
    let from_bookshelf = bookshelf::read(&dir.join("io_demo.aux"))?;
    println!(
        "bookshelf round trip: {} cells, {} nets, {} rows -> {}",
        from_bookshelf.num_cells(),
        from_bookshelf.netlist().num_nets(),
        from_bookshelf.floorplan().num_rows(),
        dir.join("io_demo.aux").display(),
    );

    // LEF/DEF out + in.
    lefdef::write(&design, &dir, "io_demo")?;
    let from_lefdef = lefdef::read(&dir.join("io_demo.lef"), &dir.join("io_demo.def"))?;
    println!(
        "lef/def round trip: {} cells, site {} um x {} um",
        from_lefdef.num_cells(),
        from_lefdef.grid().site_width_um(),
        from_lefdef.grid().row_height_um(),
    );

    // A peek at the emitted files.
    let def_text = std::fs::read_to_string(dir.join("io_demo.def"))?;
    println!("\nfirst DEF lines:");
    for line in def_text.lines().take(6) {
        println!("  {line}");
    }

    // Legalize the parsed design exactly as if it came from disk.
    let mut state = PlacementState::new(&from_lefdef);
    let stats = Legalizer::default().legalize(&from_lefdef, &mut state)?;
    check_legal(&from_lefdef, &state, RailCheck::Enforce).map_err(|r| format!("{r}"))?;
    let disp = displacement_stats(&from_lefdef, &state);
    println!(
        "\nlegalized the parsed design: {} cells, avg displacement {:.2} sites",
        stats.placed, disp.avg_sites
    );
    Ok(())
}
