//! Wirelength-driven detailed placement on top of MLL — the application
//! the paper's abstract claims "significant improvement in the objective
//! function" for. Every cell move is one transactional MLL insertion, so
//! the placement is legal after every single move (the "instant
//! legalization" style of refs. [11] and [12]).
//!
//! ```text
//! cargo run --release --example detailed_placement
//! ```

use multirow_legalize::legalize::{DetailedConfig, DetailedPlacer};
use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size clone of fft_2 (~3 200 cells with a clustered netlist).
    let spec = &ispd2015_suite()[5];
    let design = generate(spec, &GeneratorConfig::default().with_scale(10.0))?;

    // Legalize the global placement first.
    let mut state = PlacementState::new(&design);
    Legalizer::default().legalize(&design, &mut state)?;
    check_legal(&design, &state, RailCheck::Enforce).map_err(|r| format!("{r}"))?;
    let legalized_hpwl = hpwl_change(&design, &state).placed_um;
    println!(
        "after legalization: HPWL {:.4} m, avg displacement {:.2} sites",
        legalized_hpwl * 1e-6,
        displacement_stats(&design, &state).avg_sites,
    );

    // Then run MLL-based detailed placement passes.
    let placer = DetailedPlacer::new(DetailedConfig {
        passes: 3,
        ..DetailedConfig::default()
    });
    let t0 = std::time::Instant::now();
    let stats = placer.improve(&design, &mut state)?;
    println!(
        "detailed placement: {} moves tried, {} accepted in {:.2}s",
        stats.tried,
        stats.accepted,
        t0.elapsed().as_secs_f64(),
    );
    println!(
        "HPWL {:.4} m -> {:.4} m ({:.2}% better)",
        stats.hpwl_before_um * 1e-6,
        stats.hpwl_after_um * 1e-6,
        stats.improvement() * 100.0,
    );

    // The placement is still legal — it was legal after *every* move.
    check_legal(&design, &state, RailCheck::Enforce).map_err(|r| format!("{r}"))?;
    println!("final placement verified legal");
    Ok(())
}
