//! Incremental legalization for ECO-style changes — the scenarios the
//! paper motivates MLL with: "in gate sizing, we may want to locally
//! legalize the placement after cell size changes; in buffer insertion, we
//! may want to legalize the solution locally to remove overlapping induced
//! by the newly inserted buffer."
//!
//! The example legalizes a base design, then drives the incremental
//! engine ([`EcoSession`]) through the three ECO archetypes as
//! transactional batches: buffer insertion into occupied spots, local
//! replacement into a congested area, and gate sizing — plus a batch that
//! blows its displacement budget and rolls back bit-exactly.
//!
//! ```text
//! cargo run --example incremental_ecos
//! ```

use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base design: 260 mixed-height cells on a 24-row floorplan.
    let mut b = DesignBuilder::new(24, 160);
    let mut base_cells = Vec::new();
    for i in 0..260 {
        let w = 2 + (i % 4) * 2;
        let h = if i % 9 == 0 { 2 } else { 1 };
        let c = b.add_cell(format!("g{i}"), w, h);
        b.set_input_position(c, (i as f64 * 7.3) % 150.0, (i as f64 * 1.37) % 22.0);
        base_cells.push(c);
    }
    let design = b.finish()?;

    // Phase 1: the one full legalization run; everything after is local.
    let cfg = LegalizerConfig::paper();
    let mut state = PlacementState::new(&design);
    let stats = Legalizer::new(cfg.clone()).legalize(&design, &mut state)?;
    println!(
        "base placement: {} cells ({} direct, {} via MLL)",
        stats.placed, stats.direct, stats.via_mll
    );

    let mut session = EcoSession::new(design, state, cfg, EcoConfig::default());

    // Phase 2: buffer insertion. Each buffer wants a spot that is already
    // occupied; the engine re-legalizes only the disturbed window.
    for i in 0..3u64 {
        let before = session.state().snapshot();
        let stats = session.apply_batch(&EditBatch {
            id: i,
            edits: vec![Edit::Insert {
                name: format!("buf{i}"),
                width: 3,
                height: 1,
                rail: PowerRail::Vdd,
                x: f64::from(40 + 20 * i as i32),
                y: 10.0,
            }],
        })?;
        println!(
            "inserted buf{i} at ({}, 10): applied={}, {} neighbour cells shifted, \
             window {}x{} sites",
            40 + 20 * i,
            stats.applied,
            session.state().count_moved(&before).saturating_sub(1),
            stats.window.2,
            stats.window.3,
        );
    }

    // Phase 3: local cell movement (the detailed-placement primitive):
    // relocate a cell to a deliberately congested spot.
    let victim = base_cells[42];
    let before = session.state().snapshot();
    let stats = session.apply_batch(&EditBatch {
        id: 10,
        edits: vec![Edit::Move {
            cell: victim,
            x: 42.0,
            y: 10.0,
        }],
    })?;
    println!(
        "moved {} toward (42, 10): applied={}, {} cells touched, {} moved",
        session.design().cell(victim).name(),
        stats.applied,
        stats.touched,
        session.state().count_moved(&before),
    );

    // Phase 4: gate sizing — widen a cell in place; neighbors make room.
    let sized = base_cells[7];
    let w = session.design().cell(sized).width();
    let stats = session.apply_batch(&EditBatch {
        id: 11,
        edits: vec![Edit::Resize {
            cell: sized,
            width: w + 2,
        }],
    })?;
    println!(
        "resized {} from {w} to {} sites: applied={}, induced displacement {}",
        session.design().cell(sized).name(),
        w + 2,
        stats.applied,
        stats.induced_disp,
    );

    // Phase 5: a batch that exceeds its displacement budget rolls back
    // bit-exactly — the placement is untouched and still legal.
    let before = session.state().snapshot();
    let stats = session.apply_batch_with_budget(
        &EditBatch {
            id: 12,
            edits: vec![Edit::Insert {
                name: "buf_rejected".to_string(),
                width: 8,
                height: 1,
                rail: PowerRail::Vdd,
                x: 42.0,
                y: 10.0,
            }],
        },
        Some(0),
    )?;
    assert!(
        !stats.applied,
        "zero budget must reject a displacing insert"
    );
    assert_eq!(session.state().count_moved(&before), 0);
    println!(
        "rejected insert rolled back: {}",
        stats.reject.as_deref().unwrap_or("?")
    );

    // Every committed batch left the placement fully legal — the property
    // the paper calls "instant legalization".
    check_legal(session.design(), session.state(), RailCheck::Enforce)
        .map_err(|r| format!("illegal placement: {r}"))?;
    println!(
        "final placement verified legal ({} batches applied, {} rejected)",
        session.batches_applied(),
        session.batches_rejected(),
    );
    Ok(())
}
