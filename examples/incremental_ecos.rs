//! Incremental legalization for ECO-style changes — the scenarios the
//! paper motivates MLL with: "in gate sizing, we may want to locally
//! legalize the placement after cell size changes; in buffer insertion, we
//! may want to legalize the solution locally to remove overlapping induced
//! by the newly inserted buffer."
//!
//! The example legalizes a base design, then (1) inserts buffers one at a
//! time into already-occupied spots, and (2) relocates a cell to a
//! congested area — both via single MLL calls that perturb only a local
//! window.
//!
//! ```text
//! cargo run --example incremental_ecos
//! ```

use multirow_legalize::legalize::mll;
use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base design plus three not-yet-placed buffers declared up front.
    let mut b = DesignBuilder::new(24, 160);
    let mut base_cells = Vec::new();
    for i in 0..260 {
        let w = 2 + (i % 4) * 2;
        let h = if i % 9 == 0 { 2 } else { 1 };
        let c = b.add_cell(format!("g{i}"), w, h);
        b.set_input_position(c, (i as f64 * 7.3) % 150.0, (i as f64 * 1.37) % 22.0);
        base_cells.push(c);
    }
    let buffers: Vec<CellId> = (0..3)
        .map(|i| b.add_cell(format!("buf{i}"), 3, 1))
        .collect();
    let design = b.finish()?;

    // Phase 1: legalize the base cells only, using the driver's public
    // per-cell entry point.
    let legalizer = Legalizer::new(LegalizerConfig::paper());
    let mut state = PlacementState::new(&design);
    let mut stats = LegalizeStats::default();
    for &cell in &base_cells {
        let (fx, fy) = design.input_position(cell);
        if !legalizer.try_place(&design, &mut state, cell, fx, fy, &mut stats)? {
            return Err(format!("base cell {cell} could not be placed").into());
        }
    }
    println!(
        "base placement: {} cells ({} direct, {} via MLL)",
        stats.placed, stats.direct, stats.via_mll
    );

    // Phase 2: buffer insertion. Each buffer wants a spot that is already
    // occupied; a single MLL call makes room with minimal displacement.
    for (i, &buf) in buffers.iter().enumerate() {
        let at = SitePoint::new(40 + 20 * i as i32, 10);
        let before = snapshot(&design, &state);
        let outcome = mll(&design, &mut state, legalizer.config(), buf, at)?;
        let moved = count_moved(&design, &state, &before);
        println!(
            "inserted {} at {at}: {:?}, {} neighbour cells shifted",
            design.cell(buf).name(),
            outcome,
            moved,
        );
    }

    // Phase 3: local cell movement (the detailed-placement primitive):
    // rip a cell out and re-insert it at a deliberately congested spot.
    let victim = base_cells[42];
    let old = state.remove(&design, victim)?;
    let target = SitePoint::new(42, 10);
    let before = snapshot(&design, &state);
    let outcome = mll(&design, &mut state, legalizer.config(), victim, target)?;
    println!(
        "moved {} from {old} toward {target}: {:?}, {} neighbour cells shifted",
        design.cell(victim).name(),
        outcome,
        count_moved(&design, &state, &before),
    );

    // Every intermediate state stayed fully legal — the property the paper
    // calls "instant legalization".
    check_legal(&design, &state, RailCheck::Enforce)
        .map_err(|r| format!("illegal placement: {r}"))?;
    println!("final placement verified legal");
    Ok(())
}

fn snapshot(design: &Design, state: &PlacementState) -> Vec<Option<SitePoint>> {
    (0..design.num_cells())
        .map(|i| state.position(CellId::from_usize(i)))
        .collect()
}

fn count_moved(design: &Design, state: &PlacementState, before: &[Option<SitePoint>]) -> usize {
    (0..design.num_cells())
        .filter(|&i| {
            let id = CellId::from_usize(i);
            before[i].is_some() && state.position(id) != before[i]
        })
        .count()
}
