//! The complete flow, every stage from this workspace: synthetic netlist →
//! quadratic global placement → MLL legalization → optimal row re-packing →
//! MLL-based detailed placement → verification → SVG plot.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use multirow_legalize::legalize::{refine_rows, DetailedConfig, DetailedPlacer};
use multirow_legalize::metrics::{render_svg, SvgOptions};
use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic design with fences and tall cells (the input position
    //    field will be replaced by the global placer below).
    let spec = BenchmarkSpec::new("full_flow", 1_500, 150, 0.55, 0.0);
    let gen = GeneratorConfig::default()
        .with_fence_regions(2)
        .with_tall_cells(0.02);
    let design = generate(&spec, &gen)?;
    println!(
        "design: {} cells, density {:.2}, {} fences",
        design.num_movable(),
        design.density(),
        design.regions().len()
    );

    // 2. Global placement.
    let gp = GlobalPlacer::new(GpConfig::default()).place(&design);
    println!(
        "global placement: HPWL {:.5} m -> {:.5} m, peak overflow {:.2}",
        gp.hpwl_trace.first().unwrap() * 1e-6,
        gp.hpwl_trace.last().unwrap() * 1e-6,
        gp.final_overflow
    );
    let design = design.with_input_positions(gp.positions);

    // 3. Legalization (the paper's algorithm).
    let mut state = PlacementState::new(&design);
    let t0 = std::time::Instant::now();
    let stats = Legalizer::new(LegalizerConfig::paper()).legalize(&design, &mut state)?;
    println!(
        "legalized {} cells in {:.3}s, avg displacement {:.2} sites",
        stats.placed,
        t0.elapsed().as_secs_f64(),
        displacement_stats(&design, &state).avg_sites
    );
    check_legal(&design, &state, RailCheck::Enforce).map_err(|r| format!("{r}"))?;

    // 4. Optimal row re-packing (refs. [8]/[9], multi-row-safe).
    let r = refine_rows(&design, &mut state)?;
    println!(
        "row re-packing: {} cells moved, displacement {:.1} -> {:.1} sites",
        r.moved, r.disp_before, r.disp_after
    );

    // 5. Detailed placement on transactional MLL.
    let d = DetailedPlacer::new(DetailedConfig {
        passes: 2,
        ..DetailedConfig::default()
    })
    .improve(&design, &mut state)?;
    println!(
        "detailed placement: {}/{} moves kept, HPWL {:.2}% better",
        d.accepted,
        d.tried,
        d.improvement() * 100.0
    );

    // 6. Final verification and a plot.
    check_legal(&design, &state, RailCheck::Enforce).map_err(|r| format!("{r}"))?;
    let svg = render_svg(&design, &state, &SvgOptions::default());
    let path = std::env::temp_dir().join("mrl_full_flow.svg");
    std::fs::write(&path, svg)?;
    println!("final placement legal; plot at {}", path.display());
    Ok(())
}
