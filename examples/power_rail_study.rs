//! The paper's second experiment (Section 6, last paragraph): quantify the
//! displacement and wirelength cost of the power-rail alignment
//! constraint by legalizing the same design with the constraint enforced
//! and relaxed.
//!
//! ```text
//! cargo run --release --example power_rail_study
//! ```

use multirow_legalize::prelude::*;

fn run(design: &Design, mode: PowerRailMode) -> (f64, f64, f64) {
    let cfg = LegalizerConfig::paper().with_rail_mode(mode);
    let mut state = PlacementState::new(design);
    let t0 = std::time::Instant::now();
    Legalizer::new(cfg)
        .legalize(design, &mut state)
        .expect("legalization succeeds on suite designs");
    let secs = t0.elapsed().as_secs_f64();
    let rails = match mode {
        PowerRailMode::Aligned => RailCheck::Enforce,
        PowerRailMode::Relaxed => RailCheck::Ignore,
    };
    check_legal(design, &state, rails).expect("result is legal");
    (
        displacement_stats(design, &state).avg_sites,
        hpwl_change(design, &state).delta(),
        secs,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(&[
        "benchmark",
        "density",
        "disp aligned",
        "disp relaxed",
        "disp gain",
        "dHPWL aligned",
        "dHPWL relaxed",
    ]);
    let mut gains = Vec::new();
    for name in ["fft_1", "fft_2", "des_perf_b", "pci_bridge32_a"] {
        let spec = ispd2015_suite()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known benchmark");
        let design = generate(&spec, &GeneratorConfig::default().with_scale(20.0))?;
        let (d_aligned, h_aligned, _) = run(&design, PowerRailMode::Aligned);
        let (d_relaxed, h_relaxed, _) = run(&design, PowerRailMode::Relaxed);
        let gain = 1.0 - d_relaxed / d_aligned;
        gains.push(gain);
        table.row(&[
            name.to_string(),
            format!("{:.2}", design.density()),
            format!("{d_aligned:.2}"),
            format!("{d_relaxed:.2}"),
            format!("{:.1}%", gain * 100.0),
            format!("{:.2}%", h_aligned * 100.0),
            format!("{:.2}%", h_relaxed * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "average displacement reduction from relaxing rail alignment: {:.1}%",
        gains.iter().sum::<f64>() / gains.len() as f64 * 100.0
    );
    println!(
        "(the paper reports 42% for MLL on the full-size suite; double-row\n\
         cells must otherwise sit on alternate rows, which costs vertical\n\
         displacement whenever the global placement puts them elsewhere)"
    );
    Ok(())
}
