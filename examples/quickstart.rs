//! Quickstart: build a small mixed-height design, legalize its global
//! placement with MLL, and report the paper's quality metrics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use multirow_legalize::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic clone of the paper's fft_2 benchmark at 1/10 scale:
    // ~3 200 cells, ~10% of them double-row height, density 0.50.
    let spec = &ispd2015_suite()[5];
    let design = generate(spec, &GeneratorConfig::default().with_scale(10.0))?;
    println!(
        "design {}: {} movable cells ({} double-height), density {:.2}, {} rows",
        design.name(),
        design.num_movable(),
        design
            .movable_cells()
            .filter(|&c| design.cell(c).height() > 1)
            .count(),
        design.density(),
        design.floorplan().num_rows(),
    );

    // Legalize with the paper's configuration: Rx = 30, Ry = 5,
    // approximate insertion-point evaluation, power rails aligned.
    let legalizer = Legalizer::new(LegalizerConfig::paper());
    let mut placement = PlacementState::new(&design);
    let t0 = std::time::Instant::now();
    let stats = legalizer.legalize(&design, &mut placement)?;
    let elapsed = t0.elapsed();

    println!(
        "legalized {} cells in {:.3}s ({} direct, {} via MLL, {} retry rounds)",
        stats.placed,
        elapsed.as_secs_f64(),
        stats.direct,
        stats.via_mll,
        stats.retry_rounds,
    );

    // Verify all four constraints of the paper's problem formulation with
    // the independent checker.
    check_legal(&design, &placement, RailCheck::Enforce)
        .map_err(|report| format!("illegal result: {report}"))?;
    println!("placement verified legal");

    // The two quality metrics of Table 1.
    let disp = displacement_stats(&design, &placement);
    let hpwl = hpwl_change(&design, &placement);
    println!(
        "average displacement: {:.2} site widths (max {:.1}, total {:.1} um)",
        disp.avg_sites, disp.max_sites, disp.total_um,
    );
    println!(
        "HPWL: {:.4} m -> {:.4} m ({:+.2}%)",
        hpwl.input_um * 1e-6,
        hpwl.placed_um * 1e-6,
        hpwl.delta() * 100.0,
    );
    Ok(())
}
