//! Multi-row height standard cell legalization.
//!
//! A Rust reproduction of Chow, Pui & Young, *"Legalization Algorithm for
//! Multiple-Row Height Standard Cell Design"* (DAC 2016), packaged as a
//! workspace of focused crates and re-exported here as one facade:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geom`] | `mrl-geom` | site-unit geometry, power rails |
//! | [`db`] | `mrl-db` | cells, netlist, rows/segments, placement state |
//! | [`legalize`] | `mrl-legalize` | **the MLL algorithm** and driver |
//! | [`baselines`] | `mrl-baselines` | ILP-optimal, Abacus, Tetris |
//! | [`gp`] | `mrl-gp` | quadratic global placer (B2B + CG + spreading) |
//! | [`ilp`] | `mrl-ilp` | small MILP solver (simplex + B&B) |
//! | [`metrics`] | `mrl-metrics` | legality checks, displacement, HPWL |
//! | [`synth`] | `mrl-synth` | ISPD2015-like synthetic benchmarks |
//! | [`parsers`] | `mrl-parsers` | Bookshelf and LEF/DEF I/O |
//! | [`eco`] | `mrl-eco` | incremental ECO engine, NDJSON edit streams |
//!
//! # Quickstart
//!
//! ```
//! use multirow_legalize::prelude::*;
//!
//! // A 2000-cell clone of the paper's fft_2 benchmark at 1/16 scale.
//! let spec = &ispd2015_suite()[5];
//! let design = generate(spec, &GeneratorConfig::default().with_scale(16.0))?;
//!
//! // Legalize its synthetic global placement with MLL (Rx=30, Ry=5).
//! let mut placement = PlacementState::new(&design);
//! let stats = Legalizer::default().legalize(&design, &mut placement)?;
//! assert_eq!(stats.placed, design.num_movable());
//!
//! // Verify all four constraints of the paper's problem formulation and
//! // report the Table 1 metrics.
//! check_legal(&design, &placement, RailCheck::Enforce)
//!     .map_err(|report| format!("{report}"))?;
//! let disp = displacement_stats(&design, &placement);
//! println!("average displacement: {:.2} site widths", disp.avg_sites);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mrl_baselines as baselines;
pub use mrl_db as db;
pub use mrl_eco as eco;
pub use mrl_geom as geom;
pub use mrl_gp as gp;
pub use mrl_ilp as ilp;
pub use mrl_legalize as legalize;
pub use mrl_metrics as metrics;
pub use mrl_parsers as parsers;
pub use mrl_synth as synth;

/// The most common imports in one place.
pub mod prelude {
    pub use mrl_baselines::{AbacusLegalizer, IlpLegalizer, LocalSolver, TetrisLegalizer};
    pub use mrl_db::{CellId, Design, DesignBuilder, PlacementState};
    pub use mrl_eco::{EcoConfig, EcoSession, Edit, EditBatch};
    pub use mrl_geom::{PowerRail, SiteGrid, SitePoint, SiteRect};
    pub use mrl_gp::{GlobalPlacer, GpConfig};
    pub use mrl_legalize::{
        CellOrder, DetailedConfig, DetailedPlacer, EvalMode, LegalizeStats, Legalizer,
        LegalizerConfig, PowerRailMode,
    };
    pub use mrl_metrics::{check_legal, displacement_stats, hpwl_change, RailCheck, Table};
    pub use mrl_synth::{generate, ispd2015_suite, BenchmarkSpec, GeneratorConfig};
}
