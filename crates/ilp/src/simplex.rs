//! Dense two-phase primal simplex.
//!
//! Solves `min c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0` on a dense tableau.
//! Bland's rule guarantees termination; a generous iteration cap guards
//! against numerical stalls. Variable bounds are *not* handled here — the
//! [`crate::Model`] layer shifts lower bounds to zero and adds upper
//! bounds as explicit rows before calling in.

use crate::model::{Op, SolveError};

const EPS: f64 = 1e-9;

/// A raw LP in `x ≥ 0` form.
#[derive(Clone, Debug)]
pub(crate) struct RawLp {
    /// Objective coefficients (length = #vars).
    pub costs: Vec<f64>,
    /// Constraint rows: coefficients, operator, right-hand side.
    pub rows: Vec<(Vec<f64>, Op, f64)>,
}

/// Solves `min c·x, A x op b, x ≥ 0`; returns the optimal `x`.
///
/// # Errors
///
/// [`SolveError::Infeasible`], [`SolveError::Unbounded`], or
/// [`SolveError::IterationLimit`].
pub(crate) fn solve_raw(lp: &RawLp) -> Result<Vec<f64>, SolveError> {
    let n = lp.costs.len();
    let m = lp.rows.len();
    // Column layout: [structural 0..n | slack/surplus | artificial], one
    // slack or surplus per inequality, one artificial where needed.
    let mut slack_cols = 0usize;
    for (_, op, _) in &lp.rows {
        if *op != Op::Eq {
            slack_cols += 1;
        }
    }
    let total = n + slack_cols + m; // artificials allocated per row (some unused)
    let mut tableau = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let art_base = n + slack_cols;

    for (i, (coeffs, op, rhs)) in lp.rows.iter().enumerate() {
        let (mut row_coeffs, mut op, mut rhs) = (coeffs.clone(), *op, *rhs);
        if rhs < 0.0 {
            for c in &mut row_coeffs {
                *c = -*c;
            }
            rhs = -rhs;
            op = match op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
        tableau[i][..n].copy_from_slice(&row_coeffs);
        tableau[i][total] = rhs;
        match op {
            Op::Le => {
                tableau[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Op::Ge => {
                tableau[i][next_slack] = -1.0;
                next_slack += 1;
                tableau[i][art_base + i] = 1.0;
                basis[i] = art_base + i;
            }
            Op::Eq => {
                tableau[i][art_base + i] = 1.0;
                basis[i] = art_base + i;
            }
        }
    }

    // Phase 1: minimize the sum of artificials.
    let has_artificials = basis.iter().any(|&b| b >= art_base);
    if has_artificials {
        let mut z = vec![0.0f64; total + 1];
        for (i, &b) in basis.iter().enumerate() {
            if b >= art_base {
                for (zc, tc) in z.iter_mut().zip(tableau[i].iter()) {
                    *zc += tc;
                }
            }
        }
        pivot_until_optimal(&mut tableau, &mut basis, &mut z, art_base, total)?;
        if z[total] > 1e-6 {
            return Err(SolveError::Infeasible);
        }
        // Drive leftover degenerate artificials out of the basis.
        for i in 0..m {
            if basis[i] >= art_base {
                if let Some(col) = (0..art_base).find(|&c| tableau[i][c].abs() > EPS) {
                    pivot(&mut tableau, &mut basis, i, col, total);
                } else {
                    // Redundant row.
                    basis[i] = usize::MAX;
                }
            }
        }
    }

    // Phase 2: original objective. Express reduced costs.
    let mut z = vec![0.0f64; total + 1];
    for (c, &cost) in z.iter_mut().zip(lp.costs.iter()) {
        *c = -cost;
    }
    for (i, &b) in basis.iter().enumerate() {
        if b != usize::MAX && b < n {
            let coeff = lp.costs[b];
            if coeff != 0.0 {
                let row = tableau[i].clone();
                for (zc, rc) in z.iter_mut().zip(row.iter()) {
                    *zc += coeff * rc;
                }
            }
        }
    }
    pivot_until_optimal(&mut tableau, &mut basis, &mut z, art_base, total)?;

    let mut x = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b != usize::MAX && b < n {
            x[b] = tableau[i][total];
        }
    }
    Ok(x)
}

/// Runs primal simplex pivots (Bland's rule) until the reduced-cost row
/// `z` has no positive entry among non-artificial columns.
fn pivot_until_optimal(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    z: &mut [f64],
    art_base: usize,
    total: usize,
) -> Result<(), SolveError> {
    let max_iters = 200 * (tableau.len() + total + 1);
    for _ in 0..max_iters {
        // Bland: entering column = smallest index with positive reduced cost.
        let Some(col) = (0..art_base).find(|&c| z[c] > EPS) else {
            return Ok(());
        };
        // Ratio test, Bland tie-break on basis index.
        let mut best: Option<(f64, usize, usize)> = None;
        for (i, row) in tableau.iter().enumerate() {
            if basis[i] == usize::MAX {
                continue;
            }
            let a = row[col];
            if a > EPS {
                let ratio = row[total] / a;
                let better = match best {
                    None => true,
                    Some((r, _, b)) => ratio < r - EPS || (ratio < r + EPS && basis[i] < b),
                };
                if better {
                    best = Some((ratio, i, basis[i]));
                }
            }
        }
        let Some((_, row, _)) = best else {
            return Err(SolveError::Unbounded);
        };
        pivot_with_z(tableau, basis, z, row, col, total);
    }
    Err(SolveError::IterationLimit)
}

fn pivot_with_z(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    z: &mut [f64],
    row: usize,
    col: usize,
    total: usize,
) {
    pivot(tableau, basis, row, col, total);
    let factor = z[col];
    if factor.abs() > 0.0 {
        for c in 0..=total {
            z[c] -= factor * tableau[row][c];
        }
    }
}

fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let pivot_val = tableau[row][col];
    debug_assert!(pivot_val.abs() > EPS, "pivot on ~zero element");
    let _ = total;
    for v in tableau[row].iter_mut() {
        *v /= pivot_val;
    }
    let pivot_row = tableau[row].clone();
    for (i, r) in tableau.iter_mut().enumerate() {
        if i != row {
            let factor = r[col];
            if factor.abs() > 0.0 {
                for c in 0..=total {
                    r[c] -= factor * pivot_row[c];
                }
            }
        }
    }
    basis[row] = col;
}

/// Convenience wrapper solving a raw-form LP directly; exposed for tests
/// and for callers who build `x ≥ 0` models themselves.
///
/// # Errors
///
/// Same as the model-level solver: infeasible, unbounded, or iteration
/// limit.
pub fn solve_lp(costs: &[f64], rows: &[(Vec<f64>, Op, f64)]) -> Result<Vec<f64>, SolveError> {
    solve_raw(&RawLp {
        costs: costs.to_vec(),
        rows: rows.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_maximization_as_min() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> min -(x+y).
        let x = solve_lp(
            &[-1.0, -1.0],
            &[(vec![1.0, 2.0], Op::Le, 4.0), (vec![3.0, 1.0], Op::Le, 6.0)],
        )
        .unwrap();
        // Optimum at intersection: x = 1.6, y = 1.2.
        assert_close(x[0], 1.6);
        assert_close(x[1], 1.2);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2.
        let x = solve_lp(
            &[1.0, 1.0],
            &[
                (vec![1.0, 1.0], Op::Eq, 5.0),
                (vec![1.0, -1.0], Op::Eq, 1.0),
            ],
        )
        .unwrap();
        assert_close(x[0], 3.0);
        assert_close(x[1], 2.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4? y=0: cost 8; x=1,y=3:
        // cost 11. Optimum x=4, y=0.
        let x = solve_lp(
            &[2.0, 3.0],
            &[(vec![1.0, 1.0], Op::Ge, 4.0), (vec![1.0, 0.0], Op::Ge, 1.0)],
        )
        .unwrap();
        assert_close(x[0], 4.0);
        assert_close(x[1], 0.0);
    }

    #[test]
    fn infeasible_detected() {
        let r = solve_lp(
            &[1.0],
            &[(vec![1.0], Op::Le, 1.0), (vec![1.0], Op::Ge, 2.0)],
        );
        assert_eq!(r.unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unconstrained above.
        let r = solve_lp(&[-1.0], &[(vec![1.0], Op::Ge, 0.0)]);
        assert_eq!(r.unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let x = solve_lp(&[1.0], &[(vec![-1.0], Op::Le, -3.0)]).unwrap();
        assert_close(x[0], 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let x = solve_lp(
            &[-1.0, -1.0],
            &[
                (vec![1.0, 0.0], Op::Le, 1.0),
                (vec![1.0, 0.0], Op::Le, 1.0),
                (vec![0.0, 1.0], Op::Le, 1.0),
                (vec![1.0, 1.0], Op::Le, 2.0),
            ],
        )
        .unwrap();
        assert_close(x[0] + x[1], 2.0);
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 2 stated twice.
        let x = solve_lp(
            &[1.0, 2.0],
            &[(vec![1.0, 1.0], Op::Eq, 2.0), (vec![2.0, 2.0], Op::Eq, 4.0)],
        )
        .unwrap();
        assert_close(x[0], 2.0);
        assert_close(x[1], 0.0);
    }
}
