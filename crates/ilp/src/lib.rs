//! A small mixed-integer linear programming solver.
//!
//! This crate plays the role `lpsolve` plays in the paper's ILP baseline:
//! an exact solver for the local legalization subproblem. It implements,
//! from scratch:
//!
//! * a dense **two-phase primal simplex** with Bland's anti-cycling rule
//!   ([`solve_lp`]), and
//! * **branch-and-bound** over integer variables with incumbent pruning
//!   ([`Model::solve`]).
//!
//! It is written for *small* models (tens of variables, hundreds of
//! constraints) solved many times — exactly the shape of MLL's local
//! windows — and favours robustness over speed. With ordering binaries
//! fixed, the local-legalization LP is a system of difference constraints
//! (totally unimodular), so every LP relaxation solved during
//! branch-and-bound has an integral optimal basis and the search only
//! branches on the binaries.
//!
//! # Examples
//!
//! ```
//! use mrl_ilp::{Model, Op};
//!
//! // min  -x - 2y   s.t.  x + y <= 4,  x <= 3,  y <= 2,  x,y >= 0
//! let mut m = Model::new();
//! let x = m.add_var(0.0, 3.0, -1.0);
//! let y = m.add_var(0.0, 2.0, -2.0);
//! m.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Le, 4.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - (-6.0)).abs() < 1e-6); // x=2, y=2
//! assert!((sol[x] - 2.0).abs() < 1e-6);
//! # Ok::<(), mrl_ilp::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod simplex;

pub use model::{Model, Op, Solution, SolveError, VarId};
pub use simplex::solve_lp;
