//! The user-facing model layer: bounded variables, integrality, and
//! branch-and-bound.

use crate::simplex::{solve_raw, RawLp};
use std::error::Error;
use std::fmt;
use std::ops::Index;

const INT_TOL: f64 = 1e-6;

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// Identifier of a model variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

impl VarId {
    /// The variable's index in [`Solution`] order.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Solver failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SolveError {
    /// No feasible point satisfies the constraints (and integrality).
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The simplex iteration cap was hit (numerical trouble).
    IterationLimit,
    /// The branch-and-bound node budget was exhausted.
    NodeLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "model is infeasible",
            SolveError::Unbounded => "objective is unbounded",
            SolveError::IterationLimit => "simplex iteration limit reached",
            SolveError::NodeLimit => "branch-and-bound node limit reached",
        })
    }
}

impl Error for SolveError {}

/// An optimal solution.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// The optimal objective value.
    pub objective: f64,
    /// Variable values in creation order.
    pub values: Vec<f64>,
}

impl Index<VarId> for Solution {
    type Output = f64;

    fn index(&self, var: VarId) -> &f64 {
        &self.values[var.0]
    }
}

/// One linear constraint: sparse terms, operator, right-hand side.
type ConstraintRow = (Vec<(usize, f64)>, Op, f64);

#[derive(Clone, Debug)]
struct Var {
    lower: f64,
    upper: f64,
    cost: f64,
    integer: bool,
}

/// A mixed-integer linear program: `min c·x` over box-bounded continuous
/// and integer variables with linear constraints.
///
/// See the [crate-level example](crate).
#[derive(Clone, Debug, Default)]
pub struct Model {
    vars: Vec<Var>,
    rows: Vec<ConstraintRow>,
    node_limit: usize,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self {
            vars: Vec::new(),
            rows: Vec::new(),
            node_limit: 200_000,
        }
    }

    /// Caps the number of branch-and-bound nodes (default 200 000).
    pub fn set_node_limit(&mut self, limit: usize) -> &mut Self {
        self.node_limit = limit;
        self
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and the
    /// given objective coefficient. `upper` may be `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `lower` is not finite.
    pub fn add_var(&mut self, lower: f64, upper: f64, cost: f64) -> VarId {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(lower <= upper, "empty variable domain");
        self.vars.push(Var {
            lower,
            upper,
            cost,
            integer: false,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds an integer variable with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Model::add_var`].
    pub fn add_integer_var(&mut self, lower: f64, upper: f64, cost: f64) -> VarId {
        let id = self.add_var(lower, upper, cost);
        self.vars[id.0].integer = true;
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary_var(&mut self, cost: f64) -> VarId {
        self.add_integer_var(0.0, 1.0, cost)
    }

    /// Adds the constraint `Σ coeff·var op rhs`.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable does not belong to this model.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: Op, rhs: f64) -> &mut Self {
        let terms: Vec<(usize, f64)> = terms
            .iter()
            .map(|&(v, c)| {
                assert!(v.0 < self.vars.len(), "foreign variable");
                (v.0, c)
            })
            .collect();
        self.rows.push((terms, op, rhs));
        self
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves the model to optimality.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`],
    /// [`SolveError::IterationLimit`], or [`SolveError::NodeLimit`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        // Branch-and-bound over (tightened) integer bounds.
        let base_bounds: Vec<(f64, f64)> = self.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let mut stack = vec![base_bounds];
        let mut incumbent: Option<Solution> = None;
        let mut nodes = 0usize;
        let mut any_feasible_relaxation = false;
        let mut saw_unbounded = false;

        while let Some(bounds) = stack.pop() {
            nodes += 1;
            if nodes > self.node_limit {
                return Err(SolveError::NodeLimit);
            }
            let relaxed = match self.solve_relaxation(&bounds) {
                Ok(s) => s,
                Err(SolveError::Infeasible) => continue,
                Err(SolveError::Unbounded) => {
                    saw_unbounded = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            any_feasible_relaxation = true;
            if let Some(inc) = &incumbent {
                if relaxed.objective >= inc.objective - 1e-9 {
                    continue; // bound: cannot improve
                }
            }
            // Find a fractional integer variable.
            let frac = self.vars.iter().enumerate().find(|(i, v)| {
                v.integer && (relaxed.values[*i] - relaxed.values[*i].round()).abs() > INT_TOL
            });
            match frac {
                None => {
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|inc| relaxed.objective < inc.objective - 1e-9);
                    if better {
                        incumbent = Some(relaxed);
                    }
                }
                Some((i, _)) => {
                    let v = relaxed.values[i];
                    let mut down = bounds.clone();
                    down[i].1 = down[i].1.min(v.floor());
                    let mut up = bounds;
                    up[i].0 = up[i].0.max(v.ceil());
                    if down[i].0 <= down[i].1 {
                        stack.push(down);
                    }
                    if up[i].0 <= up[i].1 {
                        stack.push(up);
                    }
                }
            }
        }
        match incumbent {
            Some(s) => Ok(s),
            None if saw_unbounded && !any_feasible_relaxation => Err(SolveError::Unbounded),
            None if saw_unbounded => Err(SolveError::Unbounded),
            None => Err(SolveError::Infeasible),
        }
    }

    /// Solves the LP relaxation under the given bounds by shifting each
    /// variable to `x' = x − lower ≥ 0` and adding finite upper bounds as
    /// rows.
    fn solve_relaxation(&self, bounds: &[(f64, f64)]) -> Result<Solution, SolveError> {
        let n = self.vars.len();
        let mut rows: Vec<(Vec<f64>, Op, f64)> = Vec::with_capacity(self.rows.len() + n);
        for (terms, op, rhs) in &self.rows {
            let mut coeffs = vec![0.0; n];
            let mut shift = 0.0;
            for &(i, c) in terms {
                coeffs[i] += c;
                shift += c * bounds[i].0;
            }
            rows.push((coeffs, *op, rhs - shift));
        }
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if hi.is_finite() && hi - lo >= 0.0 {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, Op::Le, hi - lo));
            }
        }
        let costs: Vec<f64> = self.vars.iter().map(|v| v.cost).collect();
        let shifted = solve_raw(&RawLp {
            costs: costs.clone(),
            rows,
        })?;
        let values: Vec<f64> = shifted
            .iter()
            .zip(bounds)
            .map(|(x, &(lo, _))| x + lo)
            .collect();
        let objective = values.iter().zip(&costs).map(|(x, c)| x * c).sum::<f64>();
        Ok(Solution { objective, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn pure_lp_with_bounds() {
        // min -x - 2y, x in [0,3], y in [0,2], x + y <= 4.
        let mut m = Model::new();
        let x = m.add_var(0.0, 3.0, -1.0);
        let y = m.add_var(0.0, 2.0, -2.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Op::Le, 4.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -6.0);
        assert_close(s[x], 2.0);
        assert_close(s[y], 2.0);
    }

    #[test]
    fn negative_lower_bounds_shifted() {
        // min x, x in [-5, 5], x >= -2.5.
        let mut m = Model::new();
        let x = m.add_var(-5.0, 5.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Op::Ge, -2.5);
        let s = m.solve().unwrap();
        assert_close(s[x], -2.5);
    }

    #[test]
    fn knapsack_binary() {
        // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8 (binaries)
        // -> a=1, c=1 (value 14); b=1,c=1 value 10; a=1,b=0,c=1: weight 8 ok.
        let mut m = Model::new();
        let a = m.add_binary_var(-10.0);
        let b = m.add_binary_var(-6.0);
        let c = m.add_binary_var(-4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Op::Le, 8.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -14.0);
        assert_close(s[a], 1.0);
        assert_close(s[b], 0.0);
        assert_close(s[c], 1.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers -> LP opt 2.5, IP opt 2.
        let mut m = Model::new();
        let x = m.add_integer_var(0.0, 10.0, -1.0);
        let y = m.add_integer_var(0.0, 10.0, -1.0);
        m.add_constraint(&[(x, 2.0), (y, 2.0)], Op::Le, 5.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -2.0);
        assert!((s[x].round() - s[x]).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6, x integer.
        let mut m = Model::new();
        let x = m.add_integer_var(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Op::Ge, 0.4);
        m.add_constraint(&[(x, 1.0)], Op::Le, 0.6);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_model() {
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, -1.0);
        let _ = x;
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn equality_with_integers() {
        // min x + y s.t. x + 2y = 7, both integer >= 0: y=3,x=1 -> 4? or
        // y=2,x=3 -> 5; y=3 gives x=1, cost 4. y must be <= 3.5.
        let mut m = Model::new();
        let x = m.add_integer_var(0.0, 100.0, 1.0);
        let y = m.add_integer_var(0.0, 100.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 2.0)], Op::Eq, 7.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 4.0);
        assert_close(s[x], 1.0);
        assert_close(s[y], 3.0);
    }

    #[test]
    fn displacement_style_absolute_value() {
        // The local-legalization pattern: minimize |x - 6| via d >= x-6,
        // d >= 6-x with 0 <= x <= 4 -> x=4, d=2.
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, 0.0);
        let d = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(d, 1.0), (x, -1.0)], Op::Ge, -6.0);
        m.add_constraint(&[(d, 1.0), (x, 1.0)], Op::Ge, 6.0);
        let s = m.solve().unwrap();
        assert_close(s[x], 4.0);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn big_m_disjunction() {
        // Either x <= 2 or x >= 8, choose nearest to 7: with binary z,
        // x <= 2 + M z, x >= 8 - M(1-z); minimize |x-7|.
        let m_big = 100.0;
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 0.0);
        let z = m.add_binary_var(0.0);
        let d = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (z, -m_big)], Op::Le, 2.0);
        m.add_constraint(&[(x, 1.0), (z, -m_big)], Op::Ge, 8.0 - m_big);
        m.add_constraint(&[(d, 1.0), (x, -1.0)], Op::Ge, -7.0);
        m.add_constraint(&[(d, 1.0), (x, 1.0)], Op::Ge, 7.0);
        let s = m.solve().unwrap();
        assert_close(s[x], 8.0);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = Model::new();
        m.set_node_limit(1);
        // Needs branching: two fractional-forcing integers.
        let x = m.add_integer_var(0.0, 10.0, -1.0);
        let y = m.add_integer_var(0.0, 10.0, -1.0);
        m.add_constraint(&[(x, 2.0), (y, 2.0)], Op::Le, 5.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::NodeLimit);
    }

    #[test]
    fn solution_indexing() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0, 1.0);
        let s = m.solve().unwrap();
        assert_close(s[x], 1.0);
        assert_eq!(x.index(), 0);
        assert_eq!(m.num_vars(), 1);
        assert_eq!(m.num_constraints(), 0);
    }
}
