//! Metrics summary: fixed log2-bucket histograms over the attempt records
//! plus the run's counters, serialized as JSON for `--metrics-json`,
//! `BENCH_legalize.json`, and `mrl report`.

use crate::phase::{Phase, PhaseTimes};
use crate::record::{AttemptOutcome, EscalationCounters, FailCounts, FailReason};
use crate::sink::TraceBuf;
use std::fmt::Write as _;
use std::time::Duration;

/// A fixed log2-bucket histogram over `u64` samples.
///
/// Bucket 0 counts the value 0; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything above. Fixed
/// buckets make histograms mergeable and comparable across runs without
/// rebinning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket counts.
    pub buckets: [u64; Hist::BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
}

impl Hist {
    /// Number of buckets: value 0, then 31 powers of two.
    pub const BUCKETS: usize = 32;

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(Hist::BUCKETS - 1)
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: u64) {
        self.buckets[Hist::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Index of the highest non-empty bucket, if any sample was added.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Folds another histogram into this one. Because the buckets are
    /// fixed, merging N per-source histograms is exact: the result equals
    /// recording every sample into a single histogram (the telemetry
    /// snapshot-merge property test pins this).
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Upper bound of the bucket containing the `p`-quantile sample
    /// (`0.0 <= p <= 1.0`), i.e. a conservative percentile estimate with
    /// log2 resolution: the true p-quantile is `<=` the returned value.
    /// Returns 0 on an empty histogram; the absorbing last bucket reports
    /// `u64::MAX`.
    pub fn quantile_upper(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return match i {
                    0 => 0,
                    i if i == Hist::BUCKETS - 1 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }

    fn append_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"buckets\":[",
            self.count, self.sum
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; Hist::BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// The machine-readable digest of one legalization run.
///
/// Split into a *run* section (timing and environment: allowed to vary
/// between runs and thread counts) and *counters* / *fail_reasons* /
/// *histograms* sections that are deterministic for a given design and
/// configuration — identical for `--threads 1` and `--threads 4` because
/// the stripe schedule, not the worker count, decides what happens.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSummary {
    /// Design name.
    pub design: String,
    /// Worker threads requested (run section: varies).
    pub threads: usize,
    /// End-to-end wall time (run section: varies).
    pub wall: Duration,
    /// Per-phase wall clock and call counts. Durations go to the run
    /// section; call counts and combo counters to the counters section.
    pub phases: PhaseTimes,
    /// Cells placed.
    pub placed: u64,
    /// Cells placed directly.
    pub direct: u64,
    /// Cells placed via MLL.
    pub via_mll: u64,
    /// MLL invocations (including failed).
    pub mll_calls: u64,
    /// Driver retry rounds.
    pub retry_rounds: u64,
    /// Parallel stripes formed (0 = sequential driver).
    pub stripes: u64,
    /// Stripes discarded on halo conflicts.
    pub conflicts: u64,
    /// Cells handled by the sequential residue/retry pass.
    pub residue: u64,
    /// Failed-attempt tally by reason.
    pub fail_counts: FailCounts,
    /// Escalation-tier tally (all zero when escalation never engaged).
    pub escalation: EscalationCounters,
    /// Attempt records observed in the trace.
    pub attempts: u64,
    /// Trace events recorded.
    pub events: u64,
    /// Trace events dropped by ring capacity.
    pub dropped_events: u64,
    /// Realized displacement per placed attempt, in rounded site units
    /// (direct placements contribute 0).
    pub hist_displacement: Hist,
    /// Local-region size (cell count) per MLL attempt.
    pub hist_region_cells: Hist,
    /// Retry round at which each placed attempt succeeded.
    pub hist_retries: Hist,
    /// Additional named histograms appended to the `histograms` section —
    /// the serving path merges its live telemetry (batch/phase latency,
    /// escalations per batch) here so `mrl report` renders one document.
    /// Names must not collide with the three fixed histograms.
    pub extras: Vec<(String, Hist)>,
}

impl MetricsSummary {
    /// Schema identifier emitted in the JSON.
    pub const SCHEMA: &'static str = "mrl-metrics-v1";

    /// Folds the trace's attempt records and event counts into the
    /// histograms. The run counters (placed/direct/…) come from the
    /// driver's stats and are set directly by the caller.
    pub fn ingest(&mut self, buf: &TraceBuf) {
        self.events = buf.len() as u64;
        self.dropped_events = buf.dropped();
        for rec in buf.attempts() {
            self.attempts += 1;
            match rec.outcome {
                AttemptOutcome::Direct { .. } => {
                    self.hist_displacement.add(0);
                    self.hist_retries.add(u64::from(rec.retry_round));
                }
                AttemptOutcome::Mll { cost, .. } => {
                    self.hist_displacement.add(cost.max(0.0).round() as u64);
                    self.hist_region_cells.add(u64::from(rec.region_cells));
                    self.hist_retries.add(u64::from(rec.retry_round));
                }
                AttemptOutcome::Fail(FailReason::RegionExtractionEmpty) => {}
                AttemptOutcome::Fail(_) => {
                    self.hist_region_cells.add(u64::from(rec.region_cells));
                }
            }
        }
    }

    /// Serializes the summary as JSON (object key order is fixed; the
    /// counters/fail_reasons/histograms sections are thread-count
    /// invariant, the run section is not).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", MetricsSummary::SCHEMA);
        // Run section: timing and environment.
        let _ = write!(
            out,
            "  \"run\": {{\"design\": \"{}\", \"threads\": {}, \"wall_s\": {:.6}, \"phases\": {{",
            escape(&self.design),
            self.threads,
            self.wall.as_secs_f64()
        );
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}_s\": {:.6}",
                phase.name(),
                self.phases.time_of(phase).as_secs_f64()
            );
        }
        out.push_str("}},\n");
        // Deterministic counters.
        out.push_str("  \"counters\": {");
        let counters: [(&str, u64); 16] = [
            ("placed", self.placed),
            ("direct", self.direct),
            ("via_mll", self.via_mll),
            ("mll_calls", self.mll_calls),
            ("retry_rounds", self.retry_rounds),
            ("stripes", self.stripes),
            ("conflicts", self.conflicts),
            ("residue", self.residue),
            ("attempts", self.attempts),
            ("events", self.events),
            ("dropped_events", self.dropped_events),
            ("extract_calls", self.phases.extract_calls),
            ("enumerate_calls", self.phases.enumerate_calls),
            ("evaluate_calls", self.phases.evaluate_calls),
            ("realize_calls", self.phases.realize_calls),
            ("combos_generated", self.phases.combos_generated),
        ];
        for (i, (k, v)) in counters
            .into_iter()
            .chain([("escalate_calls", self.phases.escalate_calls)])
            .chain(self.escalation.entries())
            .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\": {v}");
        }
        let _ = writeln!(
            out,
            ", \"combos_pruned\": {}, \"combos_evaluated\": {}}},",
            self.phases.combos_pruned, self.phases.combos_evaluated
        );
        // Failure reasons (snake_case keys).
        out.push_str("  \"fail_reasons\": {");
        for (i, reason) in FailReason::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {}",
                reason.code().replace('-', "_"),
                self.fail_counts.get(reason)
            );
        }
        out.push_str("},\n");
        // Histograms.
        out.push_str("  \"histograms\": {\n");
        for (i, (name, hist)) in [
            ("displacement_sites", &self.hist_displacement),
            ("region_cells", &self.hist_region_cells),
            ("retry_round", &self.hist_retries),
        ]
        .into_iter()
        .chain(self.extras.iter().map(|(n, h)| (n.as_str(), h)))
        .enumerate()
        {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "    \"{name}\": ");
            hist.append_json(&mut out);
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AttemptRecord;
    use crate::Sink;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1023), 10);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), Hist::BUCKETS - 1);
    }

    #[test]
    fn hist_tracks_count_sum_mean() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 5] {
            h.add(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 8);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.max_bucket(), Some(3));
        assert_eq!(Hist::default().max_bucket(), None);
    }

    #[test]
    fn ingest_buckets_attempts_by_outcome() {
        let mut buf = TraceBuf::new(64);
        let mut s = buf.lane(0);
        let base = AttemptRecord {
            cell: 0,
            height: 1,
            retry_round: 0,
            window: [0, 0, 8, 1],
            region_cells: 4,
            combos_generated: 2,
            combos_pruned: 0,
            combos_evaluated: 2,
            outcome: AttemptOutcome::Direct { x: 1, y: 0 },
        };
        s.attempt(base);
        s.attempt(AttemptRecord {
            outcome: AttemptOutcome::Mll {
                x: 3,
                y: 0,
                cost: 5.4,
            },
            retry_round: 2,
            ..base
        });
        s.attempt(AttemptRecord {
            outcome: AttemptOutcome::Fail(FailReason::NoInsertionPoint),
            ..base
        });
        buf.absorb(s);
        let mut m = MetricsSummary::default();
        m.ingest(&buf);
        assert_eq!(m.attempts, 3);
        assert_eq!(m.events, 3);
        // Displacement: direct 0, mll round(5.4) = 5; the failure adds none.
        assert_eq!(m.hist_displacement.count, 2);
        assert_eq!(m.hist_displacement.sum, 5);
        // Region size observed for the mll attempt and the failed one.
        assert_eq!(m.hist_region_cells.count, 2);
        // Retry rounds of the two placements: 0 and 2.
        assert_eq!(m.hist_retries.count, 2);
        assert_eq!(m.hist_retries.sum, 2);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let (mut a, mut b, mut all) = (Hist::default(), Hist::default(), Hist::default());
        for (i, v) in [0u64, 1, 1, 7, 100, 4096, 1 << 50].into_iter().enumerate() {
            if i % 2 == 0 {
                a.add(v)
            } else {
                b.add(v)
            }
            all.add(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_upper_reports_bucket_bounds() {
        let mut h = Hist::default();
        assert_eq!(h.quantile_upper(0.5), 0);
        for v in [0u64, 2, 2, 2, 1000] {
            h.add(v);
        }
        assert_eq!(h.quantile_upper(0.0), 0); // rank 1 -> bucket 0
        assert_eq!(h.quantile_upper(0.5), 3); // rank 3 -> bucket [2,4)
        assert_eq!(h.quantile_upper(1.0), 1023); // rank 5 -> bucket [512,1024)
        let mut top = Hist::default();
        top.add(u64::MAX);
        assert_eq!(top.quantile_upper(0.5), u64::MAX);
    }

    #[test]
    fn extras_render_into_histograms_section() {
        let mut extra = Hist::default();
        extra.add(5);
        let m = MetricsSummary {
            extras: vec![("batch_latency_us".into(), extra)],
            ..MetricsSummary::default()
        };
        let json = m.to_json_string();
        assert!(json.contains("\"batch_latency_us\""), "{json}");
        assert!(json.contains("\"retry_round\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_has_fixed_sections() {
        let mut m = MetricsSummary {
            design: "t\"est".into(),
            threads: 4,
            placed: 10,
            ..MetricsSummary::default()
        };
        m.fail_counts.record(FailReason::NoInsertionPoint);
        let json = m.to_json_string();
        assert!(json.contains("\"schema\": \"mrl-metrics-v1\""));
        assert!(json.contains("\"design\": \"t\\\"est\""));
        assert!(json.contains("\"no_insertion_point\": 1"));
        assert!(json.contains("\"retry_budget_exhausted\": 0"));
        assert!(json.contains("\"escalation_exhausted\": 0"));
        assert!(json.contains("\"escalation_engaged\": 0"));
        assert!(json.contains("\"ilp_placed\": 0"));
        assert!(json.contains("\"escalate_calls\": 0"));
        assert!(json.contains("\"displacement_sites\""));
        assert!(json.contains("\"extract_s\""));
        // Braces balance (cheap well-formedness check; the real parse
        // check lives in mrl-bench's tests against Json::parse).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
