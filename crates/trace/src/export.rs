//! Chrome Trace Event Format export (the JSON array flavour, which
//! `chrome://tracing` and Perfetto both accept).
//!
//! Span begin/end pairs are matched per lane (LIFO) and emitted as
//! complete `"X"` events; a begin with no matching end (e.g. truncated by
//! the ring capacity) degrades to a raw `"B"` event, an orphaned end to
//! `"E"`. Counters and attempt records are emitted as zero-duration `"X"`
//! events whose `args` carry the payload, so the whole file is an array of
//! `ph:"X"/"B"/"E"` events with `pid`/`tid`/`ts`/`dur`/`name` — the subset
//! every Trace Event consumer understands. `tid` is the *lane* (stripe
//! index + 1; 0 = sequential/retry pass), not a physical thread id, which
//! is what makes the export stable across `--threads N`.

use crate::record::AttemptOutcome;
use crate::sink::{TraceBuf, TraceEvent};
use std::fmt::Write as _;

/// Microseconds with nanosecond precision, the unit Trace Event expects.
fn us(ts_ns: u64) -> f64 {
    ts_ns as f64 / 1e3
}

fn push_common(out: &mut String, name: &str, ph: char, tid: u32, ts_ns: u64) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"mll\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3}",
        us(ts_ns)
    );
}

impl TraceBuf {
    /// Serializes the trace as a Chrome Trace Event JSON array.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.len() * 96 + 2);
        out.push('[');
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push_str(",\n");
            }
        };
        // Per-lane stacks of pending Begin events (event text deferred
        // until the matching End supplies the duration).
        let mut stacks: Vec<(u32, Vec<(u64, crate::Phase)>)> = Vec::new();
        let stack_of = |stacks: &mut Vec<(u32, Vec<(u64, crate::Phase)>)>, lane: u32| {
            if let Some(i) = stacks.iter().position(|&(l, _)| l == lane) {
                i
            } else {
                stacks.push((lane, Vec::new()));
                stacks.len() - 1
            }
        };
        for &(lane, ev) in self.events() {
            match ev {
                TraceEvent::Begin { ts_ns, phase } => {
                    let i = stack_of(&mut stacks, lane);
                    stacks[i].1.push((ts_ns, phase));
                }
                TraceEvent::End { ts_ns, phase } => {
                    let i = stack_of(&mut stacks, lane);
                    // LIFO match; tolerate interleaving by searching for
                    // the innermost begin of the same phase.
                    let found = stacks[i].1.iter().rposition(|&(_, p)| p == phase);
                    match found {
                        Some(j) => {
                            let (t0, _) = stacks[i].1.remove(j);
                            sep(&mut out);
                            push_common(&mut out, phase.name(), 'X', lane, t0);
                            let _ = write!(
                                out,
                                ",\"dur\":{:.3},\"args\":{{}}}}",
                                us(ts_ns.saturating_sub(t0))
                            );
                        }
                        None => {
                            sep(&mut out);
                            push_common(&mut out, phase.name(), 'E', lane, ts_ns);
                            out.push('}');
                        }
                    }
                }
                TraceEvent::Counter { ts_ns, name, value } => {
                    sep(&mut out);
                    push_common(&mut out, name, 'X', lane, ts_ns);
                    let _ = write!(out, ",\"dur\":0.0,\"args\":{{\"value\":{value}}}}}");
                }
                TraceEvent::Attempt { ts_ns, rec } => {
                    sep(&mut out);
                    push_common(&mut out, "attempt", 'X', lane, ts_ns);
                    let _ = write!(
                        out,
                        ",\"dur\":0.0,\"args\":{{\"cell\":{},\"height\":{},\"retry_round\":{},\
                         \"window\":[{},{},{},{}],\"region_cells\":{},\
                         \"combos_generated\":{},\"combos_pruned\":{},\"combos_evaluated\":{},\
                         \"outcome\":\"{}\"",
                        rec.cell,
                        rec.height,
                        rec.retry_round,
                        rec.window[0],
                        rec.window[1],
                        rec.window[2],
                        rec.window[3],
                        rec.region_cells,
                        rec.combos_generated,
                        rec.combos_pruned,
                        rec.combos_evaluated,
                        rec.outcome.label(),
                    );
                    match rec.outcome {
                        AttemptOutcome::Direct { x, y } => {
                            let _ = write!(out, ",\"x\":{x},\"y\":{y}");
                        }
                        AttemptOutcome::Mll { x, y, cost } => {
                            let _ = write!(out, ",\"x\":{x},\"y\":{y},\"cost\":{cost:.3}");
                        }
                        AttemptOutcome::Fail(_) => {}
                    }
                    out.push_str("}}");
                }
            }
        }
        // Truncated spans (begin recorded, end dropped by the ring cap).
        for (lane, stack) in stacks {
            for (ts_ns, phase) in stack {
                sep(&mut out);
                push_common(&mut out, phase.name(), 'B', lane, ts_ns);
                out.push('}');
            }
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttemptRecord, FailReason};
    use crate::{Phase, Sink};

    #[test]
    fn paired_spans_become_complete_events() {
        let mut buf = TraceBuf::new(64);
        let mut s = buf.lane(3);
        s.begin(Phase::Enumerate);
        s.begin(Phase::Evaluate);
        s.end(Phase::Evaluate);
        s.end(Phase::Enumerate);
        buf.absorb(s);
        let json = buf.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"evaluate\""));
        assert!(json.contains("\"tid\":3"));
        assert!(!json.contains("\"ph\":\"B\""));
    }

    #[test]
    fn orphans_degrade_to_b_and_e_events() {
        let mut buf = TraceBuf::new(64);
        let mut s = buf.lane(0);
        s.begin(Phase::Extract); // never ended
        s.end(Phase::Realize); // never begun
        buf.absorb(s);
        let json = buf.to_chrome_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    fn attempts_and_counters_carry_args() {
        let mut buf = TraceBuf::new(64);
        let mut s = buf.lane(1);
        s.counter("residue", 7);
        s.attempt(AttemptRecord {
            cell: 42,
            height: 2,
            retry_round: 3,
            window: [-5, 0, 20, 4],
            region_cells: 6,
            combos_generated: 10,
            combos_pruned: 4,
            combos_evaluated: 6,
            outcome: crate::AttemptOutcome::Fail(FailReason::RegionExtractionEmpty),
        });
        buf.absorb(s);
        let json = buf.to_chrome_json();
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"cell\":42"));
        assert!(json.contains("\"outcome\":\"region-extraction-empty\""));
        assert!(json.contains("\"window\":[-5,0,20,4]"));
    }
}
