//! The statically dispatched event sink, the ring-buffer recorder, and the
//! deterministic merge buffer.

use crate::phase::Phase;
use crate::record::AttemptRecord;
use std::time::Instant;

/// A statically dispatched trace-event consumer.
///
/// Pipeline kernels are generic over `S: Sink` and guard every event
/// emission (including the *construction* of the event payload) with
/// `if S::ENABLED { … }`. For [`NoopSink`] that constant is `false`, the
/// branch folds away at monomorphization, and the traced kernel compiles
/// to the identical machine code as the untraced one — verified by the
/// bench harness's throughput gate and `benches/trace.rs`.
///
/// All methods have no-op defaults so sinks only override what they
/// record.
pub trait Sink {
    /// Whether this sink observes anything. Call sites use this constant
    /// to skip event construction entirely.
    const ENABLED: bool;

    /// Opens a span of `phase`. Spans nest (evaluate inside enumerate,
    /// everything inside a retry round) and close in LIFO order per lane.
    #[inline]
    fn begin(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// Closes the innermost open span of `phase`.
    #[inline]
    fn end(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// Samples a named counter value at the current time.
    #[inline]
    fn counter(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records one placement attempt.
    #[inline]
    fn attempt(&mut self, rec: AttemptRecord) {
        let _ = rec;
    }
}

/// The disabled sink: `ENABLED = false`, every method a no-op. This is
/// what every pre-existing public entry point instantiates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ENABLED: bool = false;
}

/// One recorded trace event, timestamped in nanoseconds since the owning
/// [`TraceBuf`]'s epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// Span open.
    Begin {
        /// Nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Span kind.
        phase: Phase,
    },
    /// Span close (matches the innermost open `Begin` of the same phase).
    End {
        /// Nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Span kind.
        phase: Phase,
    },
    /// Counter sample.
    Counter {
        /// Nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
    /// Per-cell placement attempt.
    Attempt {
        /// Nanoseconds since the trace epoch.
        ts_ns: u64,
        /// The record.
        rec: AttemptRecord,
    },
}

impl TraceEvent {
    /// The event timestamp in nanoseconds since the trace epoch.
    pub const fn ts_ns(&self) -> u64 {
        match *self {
            TraceEvent::Begin { ts_ns, .. }
            | TraceEvent::End { ts_ns, .. }
            | TraceEvent::Counter { ts_ns, .. }
            | TraceEvent::Attempt { ts_ns, .. } => ts_ns,
        }
    }
}

/// A bounded recording sink tagged with a *lane*.
///
/// Lanes are logical threads: the parallel driver uses `stripe index + 1`
/// and the sequential / retry pass lane 0, so lane assignment — and with
/// it the merged event sequence — is independent of the physical thread
/// count. When the buffer is full new events are dropped (never old ones,
/// so span nesting stays intact from the start) and counted in
/// [`RingSink::dropped`].
#[derive(Clone, Debug)]
pub struct RingSink {
    lane: u32,
    epoch: Instant,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A recording sink for `lane` holding at most `capacity` events,
    /// timestamping against `epoch` (share one epoch across lanes so
    /// timestamps are comparable).
    pub fn new(lane: u32, capacity: usize, epoch: Instant) -> Self {
        RingSink {
            lane,
            epoch,
            capacity: capacity.max(1),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The lane tag.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of trace; the cast is safe.
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Sink for RingSink {
    const ENABLED: bool = true;

    #[inline]
    fn begin(&mut self, phase: Phase) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent::Begin { ts_ns, phase });
    }

    #[inline]
    fn end(&mut self, phase: Phase) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent::End { ts_ns, phase });
    }

    #[inline]
    fn counter(&mut self, name: &'static str, value: u64) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent::Counter { ts_ns, name, value });
    }

    #[inline]
    fn attempt(&mut self, rec: AttemptRecord) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent::Attempt { ts_ns, rec });
    }
}

/// The merged trace: per-lane [`RingSink`]s absorbed in a deterministic
/// order (the parallel driver absorbs in stripe order at the wave
/// barrier, the sequential pass last).
///
/// Because lanes are stripe indices and absorption order is stripe order,
/// the sequence of `(lane, event)` pairs — everything except the
/// timestamps inside the events — is a pure function of the stripe
/// schedule: identical for any worker-thread count.
#[derive(Debug)]
pub struct TraceBuf {
    epoch: Instant,
    lane_capacity: usize,
    events: Vec<(u32, TraceEvent)>,
    dropped: u64,
}

impl TraceBuf {
    /// Default per-lane event capacity (~1M events ≈ 48 MB worst case).
    pub const DEFAULT_LANE_CAPACITY: usize = 1 << 20;

    /// An empty trace whose lanes hold at most `lane_capacity` events.
    /// The epoch (timestamp zero) is the moment of construction.
    pub fn new(lane_capacity: usize) -> Self {
        TraceBuf {
            epoch: Instant::now(),
            lane_capacity: lane_capacity.max(1),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The shared timestamp epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The per-lane capacity new lanes are created with.
    pub fn lane_capacity(&self) -> usize {
        self.lane_capacity
    }

    /// A fresh recording sink for `lane`, sharing this trace's epoch.
    pub fn lane(&self, lane: u32) -> RingSink {
        RingSink::new(lane, self.lane_capacity, self.epoch)
    }

    /// Appends a lane's events. Call in a deterministic lane order.
    pub fn absorb(&mut self, sink: RingSink) {
        self.dropped += sink.dropped;
        let lane = sink.lane;
        self.events
            .extend(sink.events.into_iter().map(|ev| (lane, ev)));
    }

    /// The merged `(lane, event)` sequence in absorption order.
    pub fn events(&self) -> &[(u32, TraceEvent)] {
        &self.events
    }

    /// Total events across all absorbed lanes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events dropped across all absorbed lanes.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The attempt records, in absorption order.
    pub fn attempts(&self) -> impl Iterator<Item = &AttemptRecord> + '_ {
        self.events.iter().filter_map(|(_, ev)| match ev {
            TraceEvent::Attempt { rec, .. } => Some(rec),
            _ => None,
        })
    }
}

impl Default for TraceBuf {
    fn default() -> Self {
        TraceBuf::new(TraceBuf::DEFAULT_LANE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttemptOutcome, FailReason};

    fn rec(cell: u32) -> AttemptRecord {
        AttemptRecord {
            cell,
            height: 1,
            retry_round: 0,
            window: [0, 0, 10, 2],
            region_cells: 3,
            combos_generated: 4,
            combos_pruned: 1,
            combos_evaluated: 3,
            outcome: AttemptOutcome::Fail(FailReason::NoInsertionPoint),
        }
    }

    #[test]
    fn noop_sink_is_enabled_false() {
        const { assert!(!NoopSink::ENABLED) };
        let mut s = NoopSink;
        s.begin(Phase::Extract);
        s.end(Phase::Extract);
        s.counter("x", 1);
        s.attempt(rec(0));
    }

    #[test]
    fn ring_records_in_order_and_drops_at_capacity() {
        let buf = TraceBuf::new(3);
        let mut s = buf.lane(7);
        s.begin(Phase::Enumerate);
        s.counter("combos", 5);
        s.end(Phase::Enumerate);
        s.attempt(rec(1)); // over capacity: dropped
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.dropped(), 1);
        assert!(matches!(s.events()[0], TraceEvent::Begin { .. }));
        assert!(matches!(s.events()[2], TraceEvent::End { .. }));
    }

    #[test]
    fn absorb_merges_lanes_in_call_order() {
        let mut buf = TraceBuf::new(16);
        let mut a = buf.lane(2);
        let mut b = buf.lane(1);
        a.attempt(rec(10));
        b.attempt(rec(20));
        // Stripe order, not lane-numeric order, decides.
        buf.absorb(a);
        buf.absorb(b);
        let lanes: Vec<u32> = buf.events().iter().map(|&(l, _)| l).collect();
        assert_eq!(lanes, vec![2, 1]);
        let cells: Vec<u32> = buf.attempts().map(|r| r.cell).collect();
        assert_eq!(cells, vec![10, 20]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 0);
        assert!(!buf.is_empty());
    }

    #[test]
    fn timestamps_are_monotonic_within_a_lane() {
        let buf = TraceBuf::new(64);
        let mut s = buf.lane(0);
        for _ in 0..10 {
            s.begin(Phase::Extract);
            s.end(Phase::Extract);
        }
        let ts: Vec<u64> = s.events().iter().map(|e| e.ts_ns()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
