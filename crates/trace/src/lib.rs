//! Structured tracing and per-cell diagnostics for the MLL pipeline.
//!
//! The legalizer's kernel functions are generic over a [`Sink`] — a
//! statically dispatched event consumer. The default [`NoopSink`] has
//! `ENABLED = false`, every call site guards record construction with that
//! associated constant, and the whole layer monomorphizes away: a
//! trace-disabled run compiles to exactly the pre-trace hot path (guarded
//! by the bench harness's throughput gate).
//!
//! Three kinds of events exist:
//!
//! * **Spans** — begin/end pairs for the five pipeline phases
//!   ([`Phase`]: extract / enumerate / evaluate / realize / retry),
//!   nested (evaluate inside enumerate, everything inside retry rounds)
//!   and lane-tagged.
//! * **Counters** — named monotonic values sampled at a point in time.
//! * **Attempt records** ([`AttemptRecord`]) — one per placement attempt
//!   of a target cell: height class, window bounds, combo funnel counts,
//!   chosen insertion point, displacement, retry round, and a
//!   [`FailReason`] when the attempt failed.
//!
//! The recording sink is a bounded ring buffer ([`RingSink`]) tagged with
//! a *lane*. Lanes are logical, not physical: the parallel driver assigns
//! `stripe index + 1` (the sequential residue/retry pass is lane 0), so a
//! trace is a pure function of the stripe schedule and **identical for any
//! `--threads N`** up to timestamps. Per-lane sinks merge into a
//! [`TraceBuf`] at the wave barrier, in stripe order.
//!
//! Consumers: [`TraceBuf::to_chrome_json`] (Chrome/Perfetto Trace Event
//! JSON) and [`MetricsSummary`] (log2-bucket histograms + counters as
//! JSON). [`PhaseTimes`] — the aggregate per-phase wall-clock view that
//! predates this crate — lives here too and stays the cheap always-available
//! summary; `mrl_legalize::timing` re-exports it for compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod phase;
mod record;
mod sink;

pub use metrics::{Hist, MetricsSummary};
pub use phase::{Phase, PhaseTimes};
pub use record::{AttemptOutcome, AttemptRecord, EscalationCounters, FailCounts, FailReason};
pub use sink::{NoopSink, RingSink, Sink, TraceBuf, TraceEvent};
