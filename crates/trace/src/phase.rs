//! Per-phase wall-clock accounting for the MLL pipeline.
//!
//! A [`PhaseTimes`] accumulates call counts and wall-clock time for the
//! five pipeline phases (extract / enumerate / evaluate / realize / retry).
//! Timing is opt-in: a default-constructed `PhaseTimes` is *disabled* and
//! every probe collapses to a no-op, so library entry points that do not
//! care about observability (`mll()`, tests) pay nothing. The drivers
//! (`Legalizer::legalize` and the parallel driver) enable it and surface
//! the totals through `LegalizeStats`.
//!
//! Phase nesting: `evaluate` time is spent *inside* `enumerate` (candidate
//! scoring during the scanline), and `retry` is the wall time of the whole
//! retry loop, which itself calls extract/enumerate/realize. The phases are
//! therefore not disjoint; see `PhaseTimes` field docs.

use std::time::{Duration, Instant};

/// One pipeline phase: the key for [`PhaseTimes::stop`] and the span kind
/// of [`crate::Sink::begin`]/[`crate::Sink::end`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Local-region extraction from the occupancy index.
    Extract,
    /// Insertion-point enumeration (the scanline, *including* scoring).
    Enumerate,
    /// Candidate scoring (the `evaluate`/`evaluate_exact` share of the
    /// scanline).
    Evaluate,
    /// Realization: optimal shifting, `shift_batch`, and the final place.
    Realize,
    /// The driver's random-offset retry loop (wall time of whole rounds;
    /// overlaps the other four phases).
    Retry,
    /// The escalation ladder (ripple chains / height-binned repack /
    /// ILP-local) run for one target cell; nested inside `retry`.
    Escalate,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Extract,
        Phase::Enumerate,
        Phase::Evaluate,
        Phase::Realize,
        Phase::Retry,
        Phase::Escalate,
    ];

    /// Stable lowercase name (used as the span name in trace exports).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Extract => "extract",
            Phase::Enumerate => "enumerate",
            Phase::Evaluate => "evaluate",
            Phase::Realize => "realize",
            Phase::Retry => "retry",
            Phase::Escalate => "escalate",
        }
    }
}

/// Wall-clock time and call counts per pipeline phase.
///
/// Disabled by default (`PhaseTimes::default()`); construct with
/// [`PhaseTimes::enabled`] to record. Probes are `start()`/`stop(phase)`
/// pairs; when disabled, `start` returns `None` and `stop` is a no-op, so
/// the only cost on the hot path is one branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    enabled: bool,
    /// Time extracting local regions.
    pub extract: Duration,
    /// Number of region extractions.
    pub extract_calls: u64,
    /// Time enumerating insertion points (includes `evaluate`).
    pub enumerate: Duration,
    /// Number of enumeration scans.
    pub enumerate_calls: u64,
    /// Time scoring candidate insertion points (subset of `enumerate`).
    pub evaluate: Duration,
    /// Number of candidates scored.
    pub evaluate_calls: u64,
    /// Time realizing chosen insertion points (shift + place).
    pub realize: Duration,
    /// Number of realizations.
    pub realize_calls: u64,
    /// Wall time of the driver retry loop (overlaps the other phases).
    pub retry: Duration,
    /// Retry rounds timed.
    pub retry_rounds: u64,
    /// Wall time inside the escalation ladder (subset of `retry`).
    pub escalate: Duration,
    /// Escalation pipeline invocations (one per escalated target cell).
    pub escalate_calls: u64,
    /// Valid insertion-point combinations the scanline generated.
    ///
    /// Unlike the wall-clock fields, the three combo counters record even
    /// when the accumulator is disabled: they cost one integer add each and
    /// the pruning property ("never evaluate more combos than the
    /// exhaustive path emits") must be observable without timing overhead.
    pub combos_generated: u64,
    /// Combinations discarded by the branch-and-bound lower bound before
    /// any exact scoring ran.
    pub combos_pruned: u64,
    /// Combinations that reached `evaluate`/`evaluate_exact`.
    pub combos_evaluated: u64,
}

impl PhaseTimes {
    /// A recording accumulator.
    pub fn enabled() -> Self {
        PhaseTimes {
            enabled: true,
            ..PhaseTimes::default()
        }
    }

    /// Whether probes record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a probe. Returns `None` (free) when disabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a probe started by [`PhaseTimes::start`], attributing the
    /// elapsed time to `phase` and bumping its call count.
    #[inline]
    pub fn stop(&mut self, phase: Phase, probe: Option<Instant>) {
        let Some(t0) = probe else { return };
        let dt = t0.elapsed();
        match phase {
            Phase::Extract => {
                self.extract += dt;
                self.extract_calls += 1;
            }
            Phase::Enumerate => {
                self.enumerate += dt;
                self.enumerate_calls += 1;
            }
            Phase::Evaluate => {
                self.evaluate += dt;
                self.evaluate_calls += 1;
            }
            Phase::Realize => {
                self.realize += dt;
                self.realize_calls += 1;
            }
            Phase::Retry => {
                self.retry += dt;
                self.retry_rounds += 1;
            }
            Phase::Escalate => {
                self.escalate += dt;
                self.escalate_calls += 1;
            }
        }
    }

    /// Folds another accumulator into this one (used to merge per-worker
    /// timings in the parallel driver). The result is enabled if either
    /// side was. Merging is associative and commutative (every field is an
    /// independent sum / boolean-or), which is what makes the parallel
    /// driver's stripe-order merge equivalent to any other order.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.enabled |= other.enabled;
        self.extract += other.extract;
        self.extract_calls += other.extract_calls;
        self.enumerate += other.enumerate;
        self.enumerate_calls += other.enumerate_calls;
        self.evaluate += other.evaluate;
        self.evaluate_calls += other.evaluate_calls;
        self.realize += other.realize;
        self.realize_calls += other.realize_calls;
        self.retry += other.retry;
        self.retry_rounds += other.retry_rounds;
        self.escalate += other.escalate;
        self.escalate_calls += other.escalate_calls;
        self.combos_generated += other.combos_generated;
        self.combos_pruned += other.combos_pruned;
        self.combos_evaluated += other.combos_evaluated;
    }

    /// Exclusive pipeline time: extract + enumerate + realize. (`evaluate`
    /// is inside `enumerate`, and `retry` overlaps everything, so neither
    /// is added.)
    pub fn pipeline_total(&self) -> Duration {
        self.extract + self.enumerate + self.realize
    }

    /// Wall time attributed to `phase`.
    pub fn time_of(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Extract => self.extract,
            Phase::Enumerate => self.enumerate,
            Phase::Evaluate => self.evaluate,
            Phase::Realize => self.realize,
            Phase::Retry => self.retry,
            Phase::Escalate => self.escalate,
        }
    }

    /// Call count attributed to `phase` (`retry_rounds` for retry).
    pub fn calls_of(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Extract => self.extract_calls,
            Phase::Enumerate => self.enumerate_calls,
            Phase::Evaluate => self.evaluate_calls,
            Phase::Realize => self.realize_calls,
            Phase::Retry => self.retry_rounds,
            Phase::Escalate => self.escalate_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let mut t = PhaseTimes::default();
        let probe = t.start();
        assert!(probe.is_none());
        t.stop(Phase::Extract, probe);
        assert_eq!(t, PhaseTimes::default());
    }

    #[test]
    fn enabled_probes_accumulate() {
        let mut t = PhaseTimes::enabled();
        let probe = t.start();
        assert!(probe.is_some());
        t.stop(Phase::Enumerate, probe);
        assert_eq!(t.enumerate_calls, 1);
        let probe = t.start();
        t.stop(Phase::Enumerate, probe);
        assert_eq!(t.enumerate_calls, 2);
        assert_eq!(t.extract_calls, 0);
    }

    #[test]
    fn combo_counters_record_even_when_disabled() {
        let mut t = PhaseTimes::default();
        assert!(!t.is_enabled());
        t.combos_generated += 3;
        t.combos_pruned += 2;
        t.combos_evaluated += 1;
        let mut sum = PhaseTimes::default();
        sum.merge(&t);
        sum.merge(&t);
        assert_eq!(sum.combos_generated, 6);
        assert_eq!(sum.combos_pruned, 4);
        assert_eq!(sum.combos_evaluated, 2);
        assert!(!sum.is_enabled());
    }

    #[test]
    fn merge_sums_counts_and_enables() {
        let mut a = PhaseTimes::default();
        let mut b = PhaseTimes::enabled();
        let probe = b.start();
        b.stop(Phase::Realize, probe);
        a.merge(&b);
        assert!(a.is_enabled());
        assert_eq!(a.realize_calls, 1);
        assert!(a.pipeline_total() >= a.realize);
    }

    #[test]
    fn phase_accessors_cover_all_phases() {
        let mut t = PhaseTimes::enabled();
        for phase in Phase::ALL {
            let probe = t.start();
            t.stop(phase, probe);
        }
        for phase in Phase::ALL {
            assert_eq!(t.calls_of(phase), 1, "{}", phase.name());
        }
        let mut by_field = PhaseTimes {
            extract: Duration::from_nanos(1),
            enumerate: Duration::from_nanos(2),
            evaluate: Duration::from_nanos(3),
            realize: Duration::from_nanos(4),
            retry: Duration::from_nanos(5),
            escalate: Duration::from_nanos(6),
            ..PhaseTimes::default()
        };
        by_field.enabled = true;
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(
                by_field.time_of(phase),
                Duration::from_nanos(i as u64 + 1),
                "{}",
                phase.name()
            );
        }
    }
}
