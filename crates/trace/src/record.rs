//! Per-cell attempt records and failure taxonomy.

/// Why a placement attempt for a target cell did not place it.
///
/// These are the reason codes carried by `(CellId, FailReason)` pairs in
/// the drivers and by [`AttemptOutcome::Fail`]; [`FailCounts`] aggregates
/// them per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailReason {
    /// The local region was extracted but contains no valid insertion
    /// point for the target (nothing wide enough / rail-compatible /
    /// side-consistent).
    NoInsertionPoint,
    /// The driver's retry loop ran out of rounds (`max_retry_iters`) with
    /// the cell still unplaced.
    RetryBudgetExhausted,
    /// Region extraction produced no free segment at all — every row of
    /// the window is fully covered by frozen cells or blockages, or the
    /// window is shorter than the target.
    RegionExtractionEmpty,
    /// The full escalation ladder (ripple chains, height-binned repack,
    /// ILP-local) ran for this cell and none of the tiers placed it.
    EscalationExhausted,
}

impl FailReason {
    /// Every reason, in display order.
    pub const ALL: [FailReason; 4] = [
        FailReason::NoInsertionPoint,
        FailReason::RetryBudgetExhausted,
        FailReason::RegionExtractionEmpty,
        FailReason::EscalationExhausted,
    ];

    /// Stable kebab-case code for reports and JSON keys (with `_`
    /// substituted by consumers that need snake_case).
    pub const fn code(self) -> &'static str {
        match self {
            FailReason::NoInsertionPoint => "no-insertion-point",
            FailReason::RetryBudgetExhausted => "retry-budget-exhausted",
            FailReason::RegionExtractionEmpty => "region-extraction-empty",
            FailReason::EscalationExhausted => "escalation-exhausted",
        }
    }
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Per-run failure-reason tally. `Copy` so `LegalizeStats` can stay `Copy`.
///
/// `no_insertion_point` and `region_extraction_empty` count failed
/// *attempts* (one cell retried five times contributes five), while
/// `retry_budget_exhausted` counts *cells* still unplaced when the retry
/// budget ran out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailCounts {
    /// Attempts that found no valid insertion point in a non-empty region.
    pub no_insertion_point: u64,
    /// Cells left unplaced when the retry budget was exhausted.
    pub retry_budget_exhausted: u64,
    /// Attempts whose extraction window contained no free segment.
    pub region_extraction_empty: u64,
    /// Escalation pipeline runs that left the target cell unplaced.
    pub escalation_exhausted: u64,
}

impl FailCounts {
    /// Bumps the counter for `reason`.
    pub fn record(&mut self, reason: FailReason) {
        match reason {
            FailReason::NoInsertionPoint => self.no_insertion_point += 1,
            FailReason::RetryBudgetExhausted => self.retry_budget_exhausted += 1,
            FailReason::RegionExtractionEmpty => self.region_extraction_empty += 1,
            FailReason::EscalationExhausted => self.escalation_exhausted += 1,
        }
    }

    /// The count for `reason`.
    pub fn get(&self, reason: FailReason) -> u64 {
        match reason {
            FailReason::NoInsertionPoint => self.no_insertion_point,
            FailReason::RetryBudgetExhausted => self.retry_budget_exhausted,
            FailReason::RegionExtractionEmpty => self.region_extraction_empty,
            FailReason::EscalationExhausted => self.escalation_exhausted,
        }
    }

    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        FailReason::ALL.iter().map(|&r| self.get(r)).sum()
    }

    /// Folds another tally into this one (stripe-result merging).
    pub fn merge(&mut self, other: &FailCounts) {
        self.no_insertion_point += other.no_insertion_point;
        self.retry_budget_exhausted += other.retry_budget_exhausted;
        self.region_extraction_empty += other.region_extraction_empty;
        self.escalation_exhausted += other.escalation_exhausted;
    }
}

/// Per-run escalation-tier tally. `Copy` so `LegalizeStats` can stay
/// `Copy`; merged in stripe order like [`FailCounts`] (every field is an
/// independent sum, so the merge is associative and commutative).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EscalationCounters {
    /// Escalation pipeline invocations (one per escalated target cell).
    pub engaged: u64,
    /// Ripple chains attempted (tier 1), accepted or not.
    pub ripple_chains: u64,
    /// Cells placed by an accepted ripple chain.
    pub ripple_placed: u64,
    /// Ripple chains rolled back (failed to place, or displacement bound
    /// exceeded).
    pub ripple_rolled_back: u64,
    /// Height-binned repack windows attempted (tier 2).
    pub repack_windows: u64,
    /// Cells placed by a successful repack.
    pub repack_placed: u64,
    /// ILP-local window solves attempted (tier 3).
    pub ilp_solves: u64,
    /// Cells placed by the ILP-local fallback.
    pub ilp_placed: u64,
}

impl EscalationCounters {
    /// Stable `(key, value)` rows for counter exports, in display order.
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        [
            ("escalation_engaged", self.engaged),
            ("ripple_chains", self.ripple_chains),
            ("ripple_placed", self.ripple_placed),
            ("ripple_rolled_back", self.ripple_rolled_back),
            ("repack_windows", self.repack_windows),
            ("repack_placed", self.repack_placed),
            ("ilp_solves", self.ilp_solves),
            ("ilp_placed", self.ilp_placed),
        ]
    }

    /// Cells placed by any tier.
    pub fn placed(&self) -> u64 {
        self.ripple_placed + self.repack_placed + self.ilp_placed
    }

    /// Folds another tally into this one (stripe-result merging).
    pub fn merge(&mut self, other: &EscalationCounters) {
        self.engaged += other.engaged;
        self.ripple_chains += other.ripple_chains;
        self.ripple_placed += other.ripple_placed;
        self.ripple_rolled_back += other.ripple_rolled_back;
        self.repack_windows += other.repack_windows;
        self.repack_placed += other.repack_placed;
        self.ilp_solves += other.ilp_solves;
        self.ilp_placed += other.ilp_placed;
    }
}

/// How one placement attempt ended.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttemptOutcome {
    /// The snapped footprint was free: placed directly, zero displacement.
    Direct {
        /// Placed x (sites).
        x: i32,
        /// Placed bottom row.
        y: i32,
    },
    /// MLL found and realized an insertion point.
    Mll {
        /// Placed x (sites).
        x: i32,
        /// Placed bottom row.
        y: i32,
        /// Total displacement cost of the insertion (target + pushed
        /// neighbours, in site units with the aspect-weighted vertical
        /// term).
        cost: f64,
    },
    /// The attempt failed; the cell stays unplaced for this round.
    Fail(FailReason),
}

impl AttemptOutcome {
    /// Whether the attempt placed the cell.
    pub const fn placed(&self) -> bool {
        !matches!(self, AttemptOutcome::Fail(_))
    }

    /// Stable outcome label for exports.
    pub const fn label(&self) -> &'static str {
        match self {
            AttemptOutcome::Direct { .. } => "direct",
            AttemptOutcome::Mll { .. } => "mll",
            AttemptOutcome::Fail(r) => r.code(),
        }
    }
}

/// One placement attempt of one target cell — the per-cell diagnostic
/// record (the quantities Tables II/III of the paper aggregate).
///
/// Identifiers are raw `u32` cell indices (this crate sits below `mrl-db`
/// and cannot name `CellId`); they match `CellId::index()`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttemptRecord {
    /// Target cell index (`CellId::index()`).
    pub cell: u32,
    /// Height class of the target in rows.
    pub height: u8,
    /// Retry round of the attempt (0 = first pass).
    pub retry_round: u32,
    /// Extraction window `[x, y, w, h]` in site/row units (the region
    /// bounds before clipping).
    pub window: [i32; 4],
    /// Local cells in the extracted region (0 for direct placements,
    /// which skip extraction).
    pub region_cells: u32,
    /// Combinations the scanline emitted during this attempt.
    pub combos_generated: u64,
    /// Combinations pruned on the lower bound during this attempt.
    pub combos_pruned: u64,
    /// Combinations exactly scored during this attempt.
    pub combos_evaluated: u64,
    /// How the attempt ended (chosen insertion point or failure code).
    pub outcome: AttemptOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_counts_record_get_total_merge() {
        let mut c = FailCounts::default();
        c.record(FailReason::NoInsertionPoint);
        c.record(FailReason::NoInsertionPoint);
        c.record(FailReason::RegionExtractionEmpty);
        assert_eq!(c.get(FailReason::NoInsertionPoint), 2);
        assert_eq!(c.get(FailReason::RetryBudgetExhausted), 0);
        assert_eq!(c.total(), 3);
        let mut sum = FailCounts::default();
        sum.merge(&c);
        sum.merge(&c);
        assert_eq!(sum.total(), 6);
        assert_eq!(sum.region_extraction_empty, 2);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(AttemptOutcome::Direct { x: 0, y: 0 }.label(), "direct");
        assert!(AttemptOutcome::Direct { x: 0, y: 0 }.placed());
        assert_eq!(
            AttemptOutcome::Fail(FailReason::RetryBudgetExhausted).label(),
            "retry-budget-exhausted"
        );
        assert!(!AttemptOutcome::Fail(FailReason::NoInsertionPoint).placed());
        for r in FailReason::ALL {
            assert_eq!(r.to_string(), r.code());
        }
    }
}
