//! A self-contained property-testing harness, API-compatible with the subset
//! of `proptest` 1.x that this workspace's test suites use.
//!
//! The build environment is fully offline, so the real `proptest` crate
//! cannot be fetched. This crate is wired into the workspace under the
//! dependency name `proptest` (see the root `Cargo.toml`), which keeps the
//! existing `proptest! { ... }` test blocks compiling unchanged.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the test's
//!   deterministic per-case seed; re-running reproduces it exactly because
//!   case seeds are derived from the test name and case index alone.
//! * **Default case count is 64** (the real default is 256); suites that
//!   care set it explicitly via `ProptestConfig::with_cases`.
//! * `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// The RNG handed to strategies. A thin wrapper so strategy code does not
/// depend on which generator backs it.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-case RNG: seed = FNV-1a(test path) mixed with the
    /// case index. Stable across runs, platforms, and thread counts.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ (u64::from(case) << 32) ^ u64::from(case),
        ))
    }

    pub fn gen_index(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.0.gen_range(lo..hi)
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub fn gen_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

/// Why a test case failed. Mirrors `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy` minus
/// shrinking: `generate` replaces the `ValueTree` machinery.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `Strategy` is used behind `&impl Strategy` in the macro expansion.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $via:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.$via(self.start as i64, self.end as i64) as $t
            }
        }
    )*};
}

int_range_strategy!(i8 => gen_i64, i16 => gen_i64, i32 => gen_i64, i64 => gen_i64,
                    u8 => gen_i64, u16 => gen_i64, u32 => gen_i64, u64 => gen_i64);

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.gen_index(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Full-domain values, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let n = self.len.start + rng.gen_index(self.len.end - self.len.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The test-block macro. Each `fn name(pat in strategy, ...) { body }` item
/// expands to a `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::for_case(path, case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                        panic!(
                            "property '{}' failed at case {case}/{}: {reason}",
                            stringify!($name),
                            cfg.cases,
                        );
                    }
                }
            }
        }
    )*};
}

/// `prop_assert!`: early-return a [`TestCaseError::Fail`] instead of
/// panicking, so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn per_case_rng_is_deterministic() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.gen_u64(), b.gen_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.gen_u64(), c.gen_u64());
    }

    #[test]
    fn strategies_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = (0..10i32, -5..5i64)
            .prop_map(|(a, b)| (a * 2, b))
            .prop_flat_map(|(a, b)| (0..(a + 1), Just(b)));
        for _ in 0..100 {
            let (x, y) = s.generate(&mut rng);
            assert!((0..19).contains(&x));
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("vec", 0);
        let s = collection::vec((0..3i32, 0..2i32), 1..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns(a in 0..5i32, (b, c) in (0..3i32, any::<u64>())) {
            prop_assert!((0..5).contains(&a));
            prop_assert!((0..3).contains(&b));
            prop_assert_eq!(c, c);
        }

        #[test]
        fn macro_accepts_mut_and_vec(mut v in collection::vec(0..100i32, 1..10)) {
            v.sort_unstable();
            for w in v.windows(2) {
                prop_assert!(w[0] <= w[1], "sorted order violated: {:?}", w);
            }
        }
    }
}
