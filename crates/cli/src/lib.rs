//! The `mrl` command-line tool: drive the whole workspace from benchmark
//! files.
//!
//! ```text
//! mrl generate --bench fft_2 --scale 20 --out DIR [--format bookshelf|lefdef]
//! mrl legalize (--aux F | --lef F --def F) [--relaxed] [--exact]
//!              [--rx N --ry N] [--threads N] [--refine] [--detail N]
//!              [--no-prune] [--out DIR] [--svg FILE]
//!              [--trace FILE] [--metrics-json FILE]
//! mrl report   --metrics-json FILE [--svg FILE]
//! mrl gp       (--aux F | --lef F --def F) --out DIR [--iterations N]
//! mrl check    (--aux F | --lef F --def F) [--relaxed]
//! mrl stats    (--aux F | --lef F --def F)
//! mrl convert  (--aux F | --lef F --def F) --out DIR --format bookshelf|lefdef
//! mrl fuzz     [--seed S] [--iters N] [--cells N] [--time-budget T]
//!              [--corpus DIR] [--json FILE] [--inject-bug]
//! mrl serve    (--aux F | --lef F --def F) [--input FILE] [--listen ADDR]
//!              [--metrics-addr ADDR] [--stats-every N] [--metrics-json FILE]
//!              [--check] [--budget N]
//! ```
//!
//! The library surface ([`run`]) takes the argument vector and returns the
//! textual report, so every subcommand is integration-testable without
//! spawning processes; `src/bin/mrl.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mrl_bench::json::Json;
use mrl_db::{Design, PlacementState};
use mrl_gp::{GlobalPlacer, GpConfig};
use mrl_legalize::{
    refine_rows, DetailedConfig, DetailedPlacer, EvalMode, LegalizeStats, Legalizer,
    LegalizerConfig, MetricsSummary, PowerRailMode, TraceBuf,
};
use mrl_metrics::{
    check_legal, displacement_stats, hpwl_change, render_svg, RailCheck, SvgOptions,
};
use mrl_parsers::{bookshelf, lefdef};
use mrl_synth::{generate, ispd2015_suite, GeneratorConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 2,
    }
}

/// Parsed common options.
#[derive(Default, Debug)]
struct Opts {
    aux: Option<PathBuf>,
    lef: Option<PathBuf>,
    def: Option<PathBuf>,
    out: Option<PathBuf>,
    svg: Option<PathBuf>,
    format: Option<String>,
    bench: Option<String>,
    scale: f64,
    seed: u64,
    fences: usize,
    tall: f64,
    rx: Option<i32>,
    ry: Option<i32>,
    iterations: Option<usize>,
    threads: Option<usize>,
    relaxed: bool,
    exact: bool,
    refine: bool,
    no_prune: bool,
    detail: usize,
    iters: Option<u32>,
    cells: Option<usize>,
    time_budget: Option<std::time::Duration>,
    corpus: Option<PathBuf>,
    json: Option<PathBuf>,
    inject_bug: bool,
    regime: Option<String>,
    no_tiers: bool,
    trace: Option<PathBuf>,
    metrics_json: Option<PathBuf>,
    input: Option<PathBuf>,
    listen: Option<String>,
    check: bool,
    budget: Option<i64>,
    metrics_addr: Option<String>,
    stats_every: Option<u64>,
}

/// Parses a duration like `60`, `60s`, or `2m` (seconds by default).
fn parse_duration(s: &str) -> Option<std::time::Duration> {
    let (num, mult) = match s.as_bytes().last()? {
        b'm' => (&s[..s.len() - 1], 60.0),
        b's' => (&s[..s.len() - 1], 1.0),
        _ => (s, 1.0),
    };
    let v: f64 = num.parse().ok()?;
    (v >= 0.0).then(|| std::time::Duration::from_secs_f64(v * mult))
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut o = Opts {
        scale: 1.0,
        seed: 1,
        ..Opts::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| fail(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--aux" => o.aux = Some(PathBuf::from(val("--aux")?)),
            "--lef" => o.lef = Some(PathBuf::from(val("--lef")?)),
            "--def" => o.def = Some(PathBuf::from(val("--def")?)),
            "--out" => o.out = Some(PathBuf::from(val("--out")?)),
            "--svg" => o.svg = Some(PathBuf::from(val("--svg")?)),
            "--format" => o.format = Some(val("--format")?.clone()),
            "--bench" => o.bench = Some(val("--bench")?.clone()),
            "--scale" => o.scale = val("--scale")?.parse().map_err(|_| fail("bad --scale"))?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| fail("bad --seed"))?,
            "--fences" => o.fences = val("--fences")?.parse().map_err(|_| fail("bad --fences"))?,
            "--tall" => o.tall = val("--tall")?.parse().map_err(|_| fail("bad --tall"))?,
            "--rx" => o.rx = Some(val("--rx")?.parse().map_err(|_| fail("bad --rx"))?),
            "--ry" => o.ry = Some(val("--ry")?.parse().map_err(|_| fail("bad --ry"))?),
            "--iterations" => {
                o.iterations = Some(
                    val("--iterations")?
                        .parse()
                        .map_err(|_| fail("bad --iterations"))?,
                )
            }
            "--threads" => {
                o.threads = Some(
                    val("--threads")?
                        .parse()
                        .map_err(|_| fail("bad --threads"))?,
                )
            }
            "--iters" => o.iters = Some(val("--iters")?.parse().map_err(|_| fail("bad --iters"))?),
            "--cells" => o.cells = Some(val("--cells")?.parse().map_err(|_| fail("bad --cells"))?),
            "--time-budget" => {
                o.time_budget = Some(
                    parse_duration(val("--time-budget")?)
                        .ok_or_else(|| fail("bad --time-budget (use e.g. 60, 60s, or 2m)"))?,
                )
            }
            "--corpus" => o.corpus = Some(PathBuf::from(val("--corpus")?)),
            "--json" => o.json = Some(PathBuf::from(val("--json")?)),
            "--trace" => o.trace = Some(PathBuf::from(val("--trace")?)),
            "--metrics-json" => o.metrics_json = Some(PathBuf::from(val("--metrics-json")?)),
            "--input" => o.input = Some(PathBuf::from(val("--input")?)),
            "--listen" => o.listen = Some(val("--listen")?.clone()),
            "--metrics-addr" => o.metrics_addr = Some(val("--metrics-addr")?.clone()),
            "--stats-every" => {
                let n: u64 = val("--stats-every")?
                    .parse()
                    .map_err(|_| fail("bad --stats-every"))?;
                if n == 0 {
                    return Err(fail("bad --stats-every (must be >= 1)"));
                }
                o.stats_every = Some(n);
            }
            "--check" => o.check = true,
            "--budget" => {
                o.budget = Some(val("--budget")?.parse().map_err(|_| fail("bad --budget"))?)
            }
            "--inject-bug" => o.inject_bug = true,
            "--regime" => o.regime = Some(val("--regime")?.clone()),
            "--no-tiers" => o.no_tiers = true,
            "--relaxed" => o.relaxed = true,
            "--exact" => o.exact = true,
            "--refine" => o.refine = true,
            "--no-prune" => o.no_prune = true,
            "--detail" => o.detail = val("--detail")?.parse().map_err(|_| fail("bad --detail"))?,
            other => return Err(fail(format!("unknown option {other}"))),
        }
    }
    Ok(o)
}

fn load_design(o: &Opts) -> Result<Design, CliError> {
    match (&o.aux, &o.lef, &o.def) {
        (Some(aux), ..) => {
            bookshelf::read(aux).map_err(|e| fail(format!("cannot read {}: {e}", aux.display())))
        }
        (None, Some(lef), Some(def)) => {
            lefdef::read(lef, def).map_err(|e| fail(format!("cannot read lef/def: {e}")))
        }
        _ => Err(fail("need --aux FILE or both --lef FILE and --def FILE")),
    }
}

fn write_design(design: &Design, dir: &Path, format: &str) -> Result<String, CliError> {
    let base = design.name().to_string();
    match format {
        "bookshelf" => {
            bookshelf::write(design, dir, &base)
                .map_err(|e| fail(format!("cannot write bookshelf: {e}")))?;
            Ok(format!("{}/{base}.aux", dir.display()))
        }
        "lefdef" => {
            lefdef::write(design, dir, &base)
                .map_err(|e| fail(format!("cannot write lef/def: {e}")))?;
            Ok(format!("{}/{base}.lef + .def", dir.display()))
        }
        other => Err(fail(format!("unknown format {other} (bookshelf|lefdef)"))),
    }
}

fn legalizer_config(o: &Opts) -> LegalizerConfig {
    let mut cfg = LegalizerConfig::paper().with_seed(o.seed);
    if let (Some(rx), Some(ry)) = (o.rx, o.ry) {
        cfg = cfg.with_window(rx, ry);
    }
    if o.relaxed {
        cfg = cfg.with_rail_mode(PowerRailMode::Relaxed);
    }
    if o.exact {
        cfg = cfg.with_eval_mode(EvalMode::Exact);
    }
    if o.no_prune {
        cfg = cfg.with_prune(false);
    }
    cfg
}

fn stats_text(design: &Design) -> String {
    let mut out = String::new();
    let fp = design.floorplan();
    let _ = writeln!(out, "design {}", design.name());
    let _ = writeln!(
        out,
        "  {} movable cells ({} multi-row), {} fixed/blockage objects",
        design.num_movable(),
        design
            .movable_cells()
            .filter(|&c| design.cell(c).is_multi_row())
            .count(),
        design.num_cells() - design.num_movable(),
    );
    let _ = writeln!(
        out,
        "  {} rows x up to {} sites, capacity {} sites, density {:.3}",
        fp.num_rows(),
        fp.bounds().w,
        fp.capacity(),
        design.density(),
    );
    let _ = writeln!(
        out,
        "  {} nets, {} pins, {} fence regions",
        design.netlist().num_nets(),
        design.netlist().pins().len(),
        design.regions().len(),
    );
    let _ = writeln!(
        out,
        "  input HPWL {:.6} m",
        mrl_metrics::hpwl_of_input(design) * 1e-6
    );
    out
}

/// Builds the metrics digest of one legalization run from the driver stats
/// and the collected trace.
fn metrics_summary(design: &Design, stats: &LegalizeStats, buf: &TraceBuf) -> MetricsSummary {
    let mut m = MetricsSummary {
        design: design.name().to_string(),
        threads: stats.threads,
        wall: stats.wall,
        phases: stats.phases,
        placed: stats.placed as u64,
        direct: stats.direct as u64,
        via_mll: stats.via_mll as u64,
        mll_calls: stats.mll_calls as u64,
        retry_rounds: u64::from(stats.retry_rounds),
        stripes: stats.stripes as u64,
        conflicts: stats.conflicts as u64,
        residue: stats.residue as u64,
        fail_counts: stats.fail_counts,
        ..MetricsSummary::default()
    };
    m.ingest(buf);
    m
}

fn get_u64(json: &Json, section: &str, key: &str) -> u64 {
    json.get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64
}

/// The value range covered by log2 histogram bucket `i` (see
/// `mrl_legalize::Hist`), as a label.
fn bucket_label(i: usize) -> String {
    match i {
        0 => "0".to_string(),
        1 => "1".to_string(),
        _ => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// Per-histogram `(label, count)` rows up to the last non-empty bucket.
fn hist_rows(hist: &Json) -> Vec<(String, u64)> {
    let Some(Json::Arr(buckets)) = hist.get("buckets") else {
        return Vec::new();
    };
    let counts: Vec<u64> = buckets
        .iter()
        .map(|b| b.as_f64().unwrap_or(0.0) as u64)
        .collect();
    let Some(last) = counts.iter().rposition(|&c| c > 0) else {
        return Vec::new();
    };
    counts[..=last]
        .iter()
        .enumerate()
        .map(|(i, &c)| (bucket_label(i), c))
        .collect()
}

/// Renders the human-readable digest of a `mrl-metrics-v1` JSON document.
fn report_text(json: &Json) -> Result<String, CliError> {
    let schema = match json.get("schema") {
        Some(Json::Str(s)) => s.as_str(),
        _ => return Err(fail("missing \"schema\" key — not a metrics JSON")),
    };
    let design = match json.get("run").and_then(|r| r.get("design")) {
        Some(Json::Str(s)) => s.clone(),
        _ => "?".to_string(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "metrics digest for {design} ({schema})");
    let run = |key: &str| {
        json.get("run")
            .and_then(|r| r.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let phase = |key: &str| {
        json.get("run")
            .and_then(|r| r.get("phases"))
            .and_then(|p| p.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let _ = writeln!(
        out,
        "  run: {} threads, {:.3}s wall (extract {:.3}s, enumerate {:.3}s, evaluate {:.3}s, realize {:.3}s, retry {:.3}s)",
        run("threads") as u64,
        run("wall_s"),
        phase("extract_s"),
        phase("enumerate_s"),
        phase("evaluate_s"),
        phase("realize_s"),
        phase("retry_s"),
    );
    let c = |key: &str| get_u64(json, "counters", key);
    let _ = writeln!(
        out,
        "  placement: {} placed ({} direct, {} via MLL), {} MLL calls, {} retry rounds",
        c("placed"),
        c("direct"),
        c("via_mll"),
        c("mll_calls"),
        c("retry_rounds"),
    );
    if c("stripes") > 0 {
        let _ = writeln!(
            out,
            "  parallel: {} stripes, {} conflicts, {} residue cells",
            c("stripes"),
            c("conflicts"),
            c("residue"),
        );
    }
    let generated = c("combos_generated");
    let pruned = c("combos_pruned");
    let pct = if generated > 0 {
        100.0 * pruned as f64 / generated as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  combos: {generated} generated, {pruned} pruned ({pct:.1}%), {} evaluated",
        c("combos_evaluated"),
    );
    let f = |key: &str| get_u64(json, "fail_reasons", key);
    let _ = writeln!(
        out,
        "  failures: {} no-insertion-point, {} region-extraction-empty, {} retry-budget-exhausted",
        f("no_insertion_point"),
        f("region_extraction_empty"),
        f("retry_budget_exhausted"),
    );
    let _ = writeln!(
        out,
        "  trace: {} attempts, {} events ({} dropped)",
        c("attempts"),
        c("events"),
        c("dropped_events"),
    );
    for (name, title) in hist_catalog(json) {
        let Some(hist) = json.get("histograms").and_then(|h| h.get(&name)) else {
            continue;
        };
        let count = hist.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        let sum = hist.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
        let mean = if count > 0.0 { sum / count } else { 0.0 };
        let _ = writeln!(out, "  {title} ({} samples, mean {mean:.2}):", count as u64);
        let rows = hist_rows(hist);
        let peak = rows.iter().map(|&(_, c)| c).max().unwrap_or(0).max(1);
        for (label, n) in rows {
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize).to_string();
            let _ = writeln!(out, "    {label:>12} {n:>8} {bar}");
        }
    }
    Ok(out)
}

const HIST_TITLES: [(&str, &str); 3] = [
    ("displacement_sites", "displacement (sites)"),
    ("region_cells", "local region size (cells)"),
    ("retry_round", "retry round of success"),
];

/// The histograms to render, in order: the three standard legalization
/// series first (with their curated titles), then any extras the document
/// carries — the serving path's latency and escalation histograms land
/// there — titled by their key. Keys come from a `BTreeMap`, so extras
/// render in a stable sorted order.
fn hist_catalog(json: &Json) -> Vec<(String, String)> {
    let mut catalog: Vec<(String, String)> = HIST_TITLES
        .iter()
        .map(|&(n, t)| (n.to_string(), t.to_string()))
        .collect();
    if let Some(Json::Obj(map)) = json.get("histograms") {
        for name in map.keys() {
            if HIST_TITLES.iter().all(|&(n, _)| n != name) {
                catalog.push((name.clone(), name.replace('_', " ")));
            }
        }
    }
    catalog
}

/// Renders the histograms of a metrics JSON as a simple SVG bar chart.
fn report_svg(json: &Json) -> String {
    let mut charts = Vec::new();
    for (name, title) in hist_catalog(json) {
        let Some(hist) = json.get("histograms").and_then(|h| h.get(&name)) else {
            continue;
        };
        charts.push((title, hist_rows(hist)));
    }
    let bar_w = 18;
    let chart_h = 120;
    let label_h = 40;
    let pad = 20;
    let chart_w = charts
        .iter()
        .map(|(_, rows)| rows.len().max(1) * bar_w + pad)
        .max()
        .unwrap_or(100);
    let total_h = charts.len() * (chart_h + label_h + pad) + pad;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{total_h}\" viewBox=\"0 0 {w} {total_h}\">\n",
        w = chart_w + 2 * pad
    );
    svg.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    for (ci, (title, rows)) in charts.iter().enumerate() {
        let top = pad + ci * (chart_h + label_h + pad);
        let _ = writeln!(
            svg,
            "<text x=\"{pad}\" y=\"{}\" font-family=\"monospace\" font-size=\"12\">{title}</text>",
            top + 12
        );
        let peak = rows.iter().map(|&(_, c)| c).max().unwrap_or(0).max(1);
        for (i, (label, n)) in rows.iter().enumerate() {
            let h = ((n * chart_h as u64) / peak) as usize;
            let x = pad + i * bar_w;
            let y = top + label_h + chart_h - h;
            let _ = writeln!(
                svg,
                "<rect x=\"{x}\" y=\"{y}\" width=\"{}\" height=\"{h}\" fill=\"#4878a8\"><title>{label}: {n}</title></rect>",
                bar_w - 2
            );
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" font-family=\"monospace\" font-size=\"8\" text-anchor=\"middle\">{label}</text>",
                x + bar_w / 2,
                top + label_h + chart_h + 10
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Runs one CLI invocation; `args` excludes the program name. Returns the
/// report text printed to stdout.
///
/// # Errors
///
/// [`CliError`] with a message and exit code on bad usage or I/O failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(fail(USAGE));
    };
    let o = parse_opts(rest)?;
    match cmd.as_str() {
        "generate" => {
            let name = o
                .bench
                .clone()
                .ok_or_else(|| fail("--bench NAME required"))?;
            let spec = ispd2015_suite()
                .into_iter()
                .find(|s| s.name == name)
                .ok_or_else(|| fail(format!("unknown benchmark {name}")))?;
            let cfg = GeneratorConfig::default()
                .with_scale(o.scale.max(1.0))
                .with_seed(o.seed)
                .with_fence_regions(o.fences)
                .with_tall_cells(o.tall);
            let design = generate(&spec, &cfg).map_err(|e| fail(format!("generate: {e}")))?;
            let dir = o.out.clone().ok_or_else(|| fail("--out DIR required"))?;
            let format = o.format.clone().unwrap_or_else(|| "bookshelf".into());
            let path = write_design(&design, &dir, &format)?;
            Ok(format!("{}wrote {path}\n", stats_text(&design)))
        }
        "stats" => {
            let design = load_design(&o)?;
            Ok(stats_text(&design))
        }
        "legalize" => {
            let design = load_design(&o)?;
            let cfg = legalizer_config(&o);
            let mut state = PlacementState::new(&design);
            let legalizer = Legalizer::new(cfg);
            let tracing = o.trace.is_some() || o.metrics_json.is_some();
            let mut buf = TraceBuf::default();
            let (stats, outcome) = if tracing {
                match o.threads {
                    Some(n) => legalizer.legalize_parallel_traced(&design, &mut state, n, &mut buf),
                    None => {
                        let mut sink = buf.lane(0);
                        let (stats, res) =
                            legalizer.legalize_traced(&design, &mut state, &mut sink);
                        buf.absorb(sink);
                        (stats, res)
                    }
                }
            } else {
                match o.threads {
                    Some(n) => legalizer.legalize_parallel(&design, &mut state, n),
                    None => legalizer.legalize(&design, &mut state),
                }
                .map_or_else(
                    |e| (LegalizeStats::default(), Err(e)),
                    |stats| (stats, Ok(())),
                )
            };
            // Write the diagnostics even when the run fails — that is when
            // they are most useful.
            let mut out = String::new();
            if let Some(path) = &o.trace {
                std::fs::write(path, buf.to_chrome_json())
                    .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
                let _ = writeln!(out, "wrote trace to {}", path.display());
            }
            if let Some(path) = &o.metrics_json {
                let summary = metrics_summary(&design, &stats, &buf);
                std::fs::write(path, summary.to_json_string())
                    .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
                let _ = writeln!(out, "wrote metrics to {}", path.display());
            }
            let stats = outcome
                .map(|()| stats)
                .map_err(|e| fail(format!("legalization failed: {e}")))?;
            let secs = stats.wall.as_secs_f64();
            let rails = if o.relaxed {
                RailCheck::Ignore
            } else {
                RailCheck::Enforce
            };
            check_legal(&design, &state, rails)
                .map_err(|r| fail(format!("result failed verification:\n{r}")))?;
            let _ = writeln!(
                out,
                "legalized {} cells in {secs:.3}s ({} direct, {} via MLL, {} retry rounds)",
                stats.placed, stats.direct, stats.via_mll, stats.retry_rounds
            );
            let fc = &stats.fail_counts;
            let _ = writeln!(
                out,
                "failed attempts: {} no-insertion-point, {} region-extraction-empty; {} cells exhausted the retry budget, {} exhausted escalation",
                fc.no_insertion_point, fc.region_extraction_empty, fc.retry_budget_exhausted, fc.escalation_exhausted
            );
            let esc = &stats.escalation;
            if esc.engaged > 0 {
                let _ = writeln!(
                    out,
                    "escalation: engaged {} times — ripple {} placed / {} rolled back ({} chains), repack {} placed ({} windows), ilp {} placed ({} solves); {:.3}s",
                    esc.engaged,
                    esc.ripple_placed,
                    esc.ripple_rolled_back,
                    esc.ripple_chains,
                    esc.repack_placed,
                    esc.repack_windows,
                    esc.ilp_placed,
                    esc.ilp_solves,
                    stats.phases.escalate.as_secs_f64()
                );
            }
            if o.threads.is_some() {
                let _ = writeln!(
                    out,
                    "parallel driver: {} threads, {} stripes, {} conflicts, {} residue cells",
                    stats.threads, stats.stripes, stats.conflicts, stats.residue
                );
            }
            let p = &stats.phases;
            let _ = writeln!(
                out,
                "phases: extract {:.3}s ({} calls), enumerate {:.3}s ({}), evaluate {:.3}s ({}), realize {:.3}s ({}), retry {:.3}s ({} rounds)",
                p.extract.as_secs_f64(),
                p.extract_calls,
                p.enumerate.as_secs_f64(),
                p.enumerate_calls,
                p.evaluate.as_secs_f64(),
                p.evaluate_calls,
                p.realize.as_secs_f64(),
                p.realize_calls,
                p.retry.as_secs_f64(),
                p.retry_rounds
            );
            if o.refine {
                let r = refine_rows(&design, &mut state)
                    .map_err(|e| fail(format!("refinement failed: {e}")))?;
                check_legal(&design, &state, rails)
                    .map_err(|r| fail(format!("refined result failed verification:\n{r}")))?;
                let _ = writeln!(
                    out,
                    "row re-packing: {} cells moved, total displacement {:.1} -> {:.1} sites",
                    r.moved, r.disp_before, r.disp_after
                );
            }
            if o.detail > 0 {
                let dcfg = DetailedConfig {
                    legalizer: legalizer_config(&o),
                    passes: o.detail,
                    ..DetailedConfig::default()
                };
                let d = DetailedPlacer::new(dcfg)
                    .improve(&design, &mut state)
                    .map_err(|e| fail(format!("detailed placement failed: {e}")))?;
                check_legal(&design, &state, rails)
                    .map_err(|r| fail(format!("detailed result failed verification:\n{r}")))?;
                let _ = writeln!(
                    out,
                    "detailed placement ({} passes): {} moves tried, {} kept, HPWL {:.2}% better",
                    o.detail,
                    d.tried,
                    d.accepted,
                    d.improvement() * 100.0
                );
            }
            let disp = displacement_stats(&design, &state);
            let hpwl = hpwl_change(&design, &state);
            let _ = writeln!(
                out,
                "displacement: avg {:.3} sites, max {:.1}, total {:.1} um",
                disp.avg_sites, disp.max_sites, disp.total_um
            );
            let _ = writeln!(
                out,
                "HPWL: {:.6} m -> {:.6} m ({:+.3}%)",
                hpwl.input_um * 1e-6,
                hpwl.placed_um * 1e-6,
                hpwl.delta() * 100.0
            );
            if let Some(dir) = &o.out {
                let positions: Vec<(f64, f64)> = (0..design.num_cells())
                    .map(|i| state.position_or_input(&design, mrl_db::CellId::from_usize(i)))
                    .collect();
                let placed = design.with_input_positions(positions);
                let format = o.format.clone().unwrap_or_else(|| "bookshelf".into());
                let path = write_design(&placed, dir, &format)?;
                let _ = writeln!(out, "wrote legalized placement to {path}");
            }
            if let Some(svg_path) = &o.svg {
                let svg = render_svg(
                    &design,
                    &state,
                    &SvgOptions {
                        displacement_whiskers: true,
                        ..SvgOptions::default()
                    },
                );
                std::fs::write(svg_path, svg)
                    .map_err(|e| fail(format!("cannot write svg: {e}")))?;
                let _ = writeln!(out, "wrote plot to {}", svg_path.display());
            }
            Ok(out)
        }
        "gp" => {
            let design = load_design(&o)?;
            let mut cfg = GpConfig {
                seed: o.seed,
                ..GpConfig::default()
            };
            if let Some(iters) = o.iterations {
                cfg.iterations = iters;
            }
            let result = GlobalPlacer::new(cfg).place(&design);
            let placed = design.with_input_positions(result.positions);
            let dir = o.out.clone().ok_or_else(|| fail("--out DIR required"))?;
            let format = o.format.clone().unwrap_or_else(|| "bookshelf".into());
            let path = write_design(&placed, &dir, &format)?;
            Ok(format!(
                "global placement: HPWL {:.6} m -> {:.6} m over {} iterations, peak overflow {:.2}\nwrote {path}\n",
                result.hpwl_trace.first().unwrap_or(&0.0) * 1e-6,
                result.hpwl_trace.last().unwrap_or(&0.0) * 1e-6,
                result.hpwl_trace.len().saturating_sub(1),
                result.final_overflow,
            ))
        }
        "check" => {
            let design = load_design(&o)?;
            // Snap the file's positions onto the grid and re-place them;
            // any failure is a legality violation of the input placement.
            let mut state = PlacementState::new(&design);
            let mut problems = Vec::new();
            for cell in design.movable_cells() {
                let (fx, fy) = design.input_position(cell);
                let at = mrl_geom::SitePoint::new(fx.round() as i32, fy.round() as i32);
                if (fx - f64::from(at.x)).abs() > 1e-6 || (fy - f64::from(at.y)).abs() > 1e-6 {
                    problems.push(format!(
                        "cell {} is off the site grid at ({fx}, {fy})",
                        design.cell(cell).name()
                    ));
                    continue;
                }
                let placed = if o.relaxed {
                    state.place_ignoring_rails(&design, cell, at)
                } else {
                    state.place(&design, cell, at)
                };
                if let Err(e) = placed {
                    problems.push(e.to_string());
                }
            }
            if problems.is_empty() {
                Ok("placement is legal\n".into())
            } else {
                let mut out = format!("{} violations:\n", problems.len());
                for p in problems.iter().take(20) {
                    let _ = writeln!(out, "  {p}");
                }
                if problems.len() > 20 {
                    let _ = writeln!(out, "  ... and {} more", problems.len() - 20);
                }
                Err(CliError {
                    message: out,
                    code: 1,
                })
            }
        }
        "convert" => {
            let design = load_design(&o)?;
            let dir = o.out.clone().ok_or_else(|| fail("--out DIR required"))?;
            let format = o.format.clone().ok_or_else(|| fail("--format required"))?;
            let path = write_design(&design, &dir, &format)?;
            Ok(format!("wrote {path}\n"))
        }
        "fuzz" => {
            let mut cfg = mrl_fuzz::FuzzConfig::new(o.seed);
            if let Some(iters) = o.iters {
                cfg = cfg.with_iters(iters);
            }
            if let Some(cells) = o.cells {
                cfg = cfg.with_max_cells(cells);
            }
            if let Some(budget) = o.time_budget {
                cfg = cfg.with_time_budget(budget);
            }
            if let Some(dir) = &o.corpus {
                std::fs::create_dir_all(dir)
                    .map_err(|e| fail(format!("cannot create {}: {e}", dir.display())))?;
                cfg = cfg.with_corpus_dir(dir.clone());
            }
            if let Some(slug) = &o.regime {
                let regime = mrl_fuzz::Regime::from_slug(slug)
                    .ok_or_else(|| fail(format!("unknown regime {slug} (baseline|dense|eco)")))?;
                cfg = cfg.with_regime(regime);
            }
            if o.inject_bug && o.no_tiers {
                return Err(fail("--inject-bug and --no-tiers are mutually exclusive"));
            }
            if o.inject_bug {
                cfg = cfg.with_fault(mrl_fuzz::Fault::NoPruneOffByOne);
            }
            if o.no_tiers {
                // The escalation self-test: a dense campaign run with every
                // tier disabled must FAIL (exit 1), proving the regime
                // actually depends on the escalation ladder.
                cfg = cfg.with_fault(mrl_fuzz::Fault::TiersDisabled);
            }
            let report = mrl_fuzz::fuzz(&cfg);
            if let Some(path) = &o.json {
                std::fs::write(path, report.to_json().pretty())
                    .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
            }
            if report.clean() {
                Ok(report.summary())
            } else {
                // Discrepancies exit 1 (like `check`) so CI jobs fail; the
                // summary carries seeds and reproducer paths.
                Err(CliError {
                    message: report.summary(),
                    code: 1,
                })
            }
        }
        "serve" => {
            let design = load_design(&o)?;
            let design_name = design.name().to_string();
            let cfg = legalizer_config(&o);
            let mut state = PlacementState::new(&design);
            Legalizer::new(cfg.clone())
                .legalize(&design, &mut state)
                .map_err(|e| fail(format!("base legalization failed: {e}")))?;
            let eco_cfg = mrl_eco::EcoConfig::default().with_max_induced_disp(o.budget);
            let mut session = mrl_eco::EcoSession::new(design, state, cfg, eco_cfg);
            let telemetry = std::sync::Arc::clone(session.telemetry());

            // The exporter thread holds its own Arc; it keeps answering
            // /metrics and /healthz until the process exits.
            if let Some(addr) = &o.metrics_addr {
                let collect: std::sync::Arc<dyn mrl_telemetry::Collect> = telemetry.clone();
                let (bound, _thread) = mrl_telemetry::spawn_exporter(addr, collect)
                    .map_err(|e| fail(format!("cannot bind metrics endpoint {addr}: {e}")))?;
                eprintln!("metrics on {bound}");
            }

            let mut out = if let Some(addr) = &o.listen {
                serve_tcp(&mut session, addr, o.check, o.stats_every)?
            } else {
                let text = match &o.input {
                    Some(path) => std::fs::read_to_string(path)
                        .map_err(|e| fail(format!("cannot read {}: {e}", path.display())))?,
                    None => {
                        let mut buf = String::new();
                        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                            .map_err(|e| fail(format!("cannot read stdin: {e}")))?;
                        buf
                    }
                };
                let mut out = String::new();
                let mut processed = 0u64;
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        if line == "#poison" {
                            session.telemetry().poison();
                        }
                        continue;
                    }
                    out.push_str(&serve_one(&mut session, line, o.check)?);
                    out.push('\n');
                    processed += 1;
                    if o.stats_every.is_some_and(|n| processed.is_multiple_of(n)) {
                        eprintln!("{}", session.telemetry().stats_line("stats"));
                    }
                }
                let _ = writeln!(
                    out,
                    "served {} batches ({} applied, {} rejected, {} cells now deleted)",
                    session.batches_applied() + session.batches_rejected(),
                    session.batches_applied(),
                    session.batches_rejected(),
                    session.num_deleted(),
                );
                out
            };
            // Final stats summary on the EOF/peer-close path — stderr, so
            // the NDJSON response stream on stdout stays canonical.
            eprintln!("{}", telemetry.stats_line("shutdown"));
            if let Some(path) = &o.metrics_json {
                let summary = telemetry.to_metrics_summary(&design_name);
                std::fs::write(path, summary.to_json_string())
                    .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
                let _ = writeln!(out, "wrote metrics to {}", path.display());
            }
            Ok(out)
        }
        "report" => {
            let path = o
                .metrics_json
                .clone()
                .ok_or_else(|| fail("--metrics-json FILE required"))?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| fail(format!("cannot read {}: {e}", path.display())))?;
            let json = Json::parse(&text)
                .map_err(|e| fail(format!("{} is not valid metrics JSON: {e}", path.display())))?;
            let mut out = report_text(&json)?;
            if let Some(svg_path) = &o.svg {
                std::fs::write(svg_path, report_svg(&json))
                    .map_err(|e| fail(format!("cannot write svg: {e}")))?;
                let _ = writeln!(out, "wrote digest plot to {}", svg_path.display());
            }
            Ok(out)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(fail(format!("unknown command {other}\n{USAGE}"))),
    }
}

/// Renders the canonical structured error response: a `kind` from a closed
/// set (`"parse"`, `"invalid_edit"`), the free-form message, and the
/// request id when one was parseable (`null` for unparseable lines).
fn error_response(kind: &str, message: &str, id: Option<u64>) -> String {
    let mut err = Json::obj();
    err.set("kind", kind).set("message", message);
    let mut j = Json::obj();
    j.set("error", err);
    match id {
        Some(id) => j.set("id", id),
        None => j.set("id", Json::Null),
    };
    j.compact()
}

/// Applies one NDJSON request line to the session and renders the response
/// line: per-batch stats on success, a structured `{"error":{...}}` object
/// for malformed requests (the connection survives), a hard [`CliError`]
/// only for internal failures or a `--check` legality violation.
fn serve_one(
    session: &mut mrl_eco::EcoSession,
    line: &str,
    check: bool,
) -> Result<String, CliError> {
    let telemetry = std::sync::Arc::clone(session.telemetry());
    let parse_t = std::time::Instant::now();
    let parsed = mrl_eco::stream::parse_batch_line(line);
    telemetry
        .phase_parse
        .observe(u64::try_from(parse_t.elapsed().as_micros()).unwrap_or(u64::MAX));
    let batch = match parsed {
        Ok(b) => b,
        Err(e) => {
            telemetry.errors_parse.inc();
            return Ok(error_response("parse", e.as_str(), None));
        }
    };
    let id = batch.id;
    match session.apply_batch(&batch) {
        Ok(stats) => {
            if check {
                verify_session_legal(session, id)?;
            }
            Ok(mrl_eco::stream::stats_to_line(&stats, true))
        }
        Err(mrl_eco::EcoError::InvalidEdit { request, message }) => {
            Ok(error_response("invalid_edit", &message, Some(request)))
        }
        Err(e) => Err(CliError {
            message: format!("request {id}: {e}"),
            code: 1,
        }),
    }
}

/// `--check` oracle: full legality after every batch, tolerating
/// tombstoned cells being unplaced.
fn verify_session_legal(session: &mrl_eco::EcoSession, request: u64) -> Result<(), CliError> {
    if let Err(report) = check_legal(session.design(), session.state(), RailCheck::Enforce) {
        let real: Vec<_> = report
            .violations
            .iter()
            .filter(|v| match v {
                mrl_metrics::Violation::Unplaced(c) => !session.is_deleted(*c),
                _ => true,
            })
            .collect();
        if !real.is_empty() {
            return Err(CliError {
                message: format!("request {request}: placement illegal after batch: {real:?}"),
                code: 1,
            });
        }
    }
    Ok(())
}

/// One-shot TCP serving: binds `addr`, accepts a single connection, answers
/// NDJSON requests line by line until the peer closes, then returns the
/// session summary. The bound address is printed to stderr so scripts can
/// use an OS-assigned port (`127.0.0.1:0`).
fn serve_tcp(
    session: &mut mrl_eco::EcoSession,
    addr: &str,
    check: bool,
    stats_every: Option<u64>,
) -> Result<String, CliError> {
    use std::io::{BufRead as _, Write as _};
    let telemetry = std::sync::Arc::clone(session.telemetry());
    let us = |t: std::time::Instant| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| fail(format!("cannot bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| fail(format!("local_addr: {e}")))?;
    eprintln!("serving on {local}");
    let (stream, peer) = listener
        .accept()
        .map_err(|e| fail(format!("accept: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| fail(format!("clone: {e}")))?;
    let mut lines = std::io::BufReader::new(stream).lines();
    let mut processed = 0u64;
    loop {
        let read_t = std::time::Instant::now();
        let Some(line) = lines.next() else { break };
        let line = line.map_err(|e| fail(format!("read from {peer}: {e}")))?;
        telemetry.phase_read.observe(us(read_t));
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            // `#poison` is the operational drain hook: health flips to 503
            // so a load balancer stops routing here, while in-flight
            // serving continues.
            if line == "#poison" {
                telemetry.poison();
            }
            continue;
        }
        let response = serve_one(session, line, check)?;
        let respond_t = std::time::Instant::now();
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| fail(format!("write to {peer}: {e}")))?;
        telemetry.phase_respond.observe(us(respond_t));
        processed += 1;
        if stats_every.is_some_and(|n| processed.is_multiple_of(n)) {
            eprintln!("{}", telemetry.stats_line("stats"));
        }
    }
    Ok(format!(
        "served {} batches over {local} ({} applied, {} rejected)\n",
        session.batches_applied() + session.batches_rejected(),
        session.batches_applied(),
        session.batches_rejected(),
    ))
}

/// Usage text.
pub const USAGE: &str = "\
mrl — multi-row height standard cell legalization (Chow, Pui & Young, DAC 2016)

commands:
  generate --bench NAME --out DIR [--scale N] [--seed S] [--fences K]
           [--tall F] [--format bookshelf|lefdef]
  legalize (--aux F | --lef F --def F) [--relaxed] [--exact] [--rx N --ry N]
           [--threads N] [--refine] [--detail N] [--no-prune] [--out DIR]
           [--svg FILE] [--format bookshelf|lefdef]
           [--trace FILE] [--metrics-json FILE]
  report   --metrics-json FILE [--svg FILE]
  gp       (--aux F | --lef F --def F) --out DIR [--iterations N] [--seed S]
  check    (--aux F | --lef F --def F) [--relaxed]
  stats    (--aux F | --lef F --def F)
  convert  (--aux F | --lef F --def F) --out DIR --format bookshelf|lefdef
  fuzz     [--seed S] [--iters N] [--cells N] [--time-budget T]
           [--regime baseline|dense|eco] [--corpus DIR] [--json FILE]
           [--inject-bug] [--no-tiers]
  serve    (--aux F | --lef F --def F) [--input FILE] [--listen ADDR]
           [--check] [--budget N] [--rx N --ry N] [--relaxed] [--seed S]
           [--metrics-addr ADDR] [--stats-every N] [--metrics-json FILE]
";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mrl_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn generate_then_stats_then_legalize() {
        let dir = tmpdir("flow");
        let out = run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let aux = dir.join("fft_2.aux");
        let stats = run(&args(&["stats", "--aux", aux.to_str().unwrap()])).unwrap();
        assert!(stats.contains("movable cells"));
        let legal = run(&args(&["legalize", "--aux", aux.to_str().unwrap()])).unwrap();
        assert!(legal.contains("legalized"));
        assert!(legal.contains("displacement"));
    }

    #[test]
    fn legalize_writes_outputs_and_svg() {
        let dir = tmpdir("outputs");
        run(&args(&[
            "generate",
            "--bench",
            "fft_a",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_a.aux");
        let svg = dir.join("plot.svg");
        let out_dir = dir.join("legalized");
        let out = run(&args(&[
            "legalize",
            "--aux",
            aux.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote legalized placement"));
        assert!(svg.exists());
        // The written placement round-trips and passes `check`.
        let legal_aux = out_dir.join("fft_a.aux");
        let check = run(&args(&["check", "--aux", legal_aux.to_str().unwrap()])).unwrap();
        assert!(check.contains("legal"));
    }

    #[test]
    fn legalize_with_refine_and_detail() {
        let dir = tmpdir("refine");
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_2.aux");
        let out = run(&args(&[
            "legalize",
            "--aux",
            aux.to_str().unwrap(),
            "--refine",
            "--detail",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("row re-packing"), "{out}");
        assert!(out.contains("detailed placement (1 passes)"), "{out}");
    }

    #[test]
    fn legalize_with_threads_matches_single_thread() {
        let dir = tmpdir("threads");
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_2.aux");
        let mut outputs = Vec::new();
        for threads in ["1", "4"] {
            let out_dir = dir.join(format!("par_{threads}"));
            let out = run(&args(&[
                "legalize",
                "--aux",
                aux.to_str().unwrap(),
                "--threads",
                threads,
                "--out",
                out_dir.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("parallel driver"), "{out}");
            assert!(out.contains("phases: extract"), "{out}");
            outputs.push(std::fs::read_to_string(out_dir.join("fft_2.pl")).unwrap());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "thread counts produced different .pl files"
        );
    }

    #[test]
    fn legalize_no_prune_matches_pruned_byte_for_byte() {
        let dir = tmpdir("prune");
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_2.aux");
        let mut outputs = Vec::new();
        for flags in [&[][..], &["--no-prune"][..]] {
            let out_dir = dir.join(if flags.is_empty() { "pruned" } else { "full" });
            let mut argv = vec![
                "legalize",
                "--aux",
                aux.to_str().unwrap(),
                "--out",
                out_dir.to_str().unwrap(),
            ];
            argv.extend_from_slice(flags);
            run(&args(&argv)).unwrap();
            outputs.push(std::fs::read_to_string(out_dir.join("fft_2.pl")).unwrap());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "--no-prune produced a different .pl file"
        );
    }

    #[test]
    fn check_flags_illegal_placement() {
        let dir = tmpdir("illegal");
        run(&args(&[
            "generate",
            "--bench",
            "fft_b",
            "--scale",
            "200",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        // The raw generated GP is overlapping/off-grid: check must fail.
        let aux = dir.join("fft_b.aux");
        let err = run(&args(&["check", "--aux", aux.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("violations"));
    }

    #[test]
    fn gp_command_writes_placement() {
        let dir = tmpdir("gp");
        run(&args(&[
            "generate",
            "--bench",
            "fft_a",
            "--scale",
            "200",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_a.aux");
        let out_dir = dir.join("gp_out");
        let out = run(&args(&[
            "gp",
            "--aux",
            aux.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--iterations",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("global placement"));
        assert!(out_dir.join("fft_a.aux").exists());
    }

    #[test]
    fn convert_between_formats() {
        let dir = tmpdir("convert");
        run(&args(&[
            "generate",
            "--bench",
            "fft_a",
            "--scale",
            "200",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_a.aux");
        let out_dir = dir.join("as_lefdef");
        run(&args(&[
            "convert",
            "--aux",
            aux.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--format",
            "lefdef",
        ]))
        .unwrap();
        assert!(out_dir.join("fft_a.lef").exists());
        assert!(out_dir.join("fft_a.def").exists());
    }

    #[test]
    fn fuzz_smoke_is_clean_and_writes_json() {
        let dir = tmpdir("fuzz");
        let json = dir.join("report.json");
        let out = run(&args(&[
            "fuzz",
            "--seed",
            "0",
            "--iters",
            "5",
            "--cells",
            "40",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("no discrepancies"), "{out}");
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"seed\""));
        assert!(text.contains("\"cases_run\""));
    }

    #[test]
    fn fuzz_dense_regime_runs_clean() {
        let out = run(&args(&[
            "fuzz", "--seed", "0", "--iters", "3", "--cells", "40", "--regime", "dense",
        ]))
        .unwrap();
        assert!(out.contains("no discrepancies"), "{out}");
    }

    /// Writes a small generated benchmark and returns its .aux path.
    fn generated_aux(tag: &str) -> PathBuf {
        let dir = tmpdir(tag);
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        dir.join("fft_2.aux")
    }

    /// First two movable cell indices of a design on disk (the generated
    /// benchmarks lead with fixed macros, so index 0 is not movable).
    fn movable_indices(aux: &Path) -> (usize, usize) {
        let o = Opts {
            aux: Some(aux.to_path_buf()),
            ..Opts::default()
        };
        let design = load_design(&o).unwrap();
        let mut it = design.movable_cells().map(|c| c.index());
        (it.next().unwrap(), it.next().unwrap())
    }

    #[test]
    fn serve_applies_scripted_stream_from_file() {
        let aux = generated_aux("serve");
        let (m0, m1) = movable_indices(&aux);
        let stream = aux.parent().unwrap().join("stream.ndjson");
        std::fs::write(
            &stream,
            format!(
                "# scripted ECO stream\n\
                 {{\"id\":1,\"edits\":[{{\"op\":\"move\",\"cell\":{m0},\"x\":5.0,\"y\":1.0}}]}}\n\
                 {{\"id\":2,\"edits\":[{{\"op\":\"insert\",\"name\":\"b0\",\"w\":2,\"h\":1,\"rail\":\"vdd\",\"x\":9.0,\"y\":2.0}}]}}\n\
                 {{\"id\":3,\"edits\":[{{\"op\":\"delete\",\"cell\":{m1}}}]}}\n"
            ),
        )
        .unwrap();
        let out = run(&args(&[
            "serve",
            "--aux",
            aux.to_str().unwrap(),
            "--input",
            stream.to_str().unwrap(),
            "--check",
        ]))
        .unwrap();
        assert!(out.contains("\"id\":1"), "{out}");
        assert!(out.contains("\"applied\":true"), "{out}");
        assert!(out.contains("\"wall_us\""), "{out}");
        assert!(
            out.contains("served 3 batches (3 applied, 0 rejected"),
            "{out}"
        );
        assert!(out.contains("1 cells now deleted"), "{out}");
    }

    #[test]
    fn serve_reports_errors_inline_and_keeps_serving() {
        let aux = generated_aux("serveerr");
        let stream = aux.parent().unwrap().join("bad.ndjson");
        std::fs::write(
            &stream,
            "{\"id\":1,\"edits\":[{\"op\":\"warp\"}]}\n\
             {\"id\":2,\"edits\":[{\"op\":\"move\",\"cell\":999999,\"x\":1.0,\"y\":1.0}]}\n\
             {\"id\":3,\"edits\":[]}\n",
        )
        .unwrap();
        let out = run(&args(&[
            "serve",
            "--aux",
            aux.to_str().unwrap(),
            "--input",
            stream.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("unknown op"), "{out}");
        assert!(out.contains("does not exist"), "{out}");
        // The empty batch still commits; only it counts toward the summary.
        assert!(out.contains("served 1 batches (1 applied"), "{out}");
    }

    #[test]
    fn serve_zero_budget_rejects_displacing_edits() {
        let aux = generated_aux("servebudget");
        let stream = aux.parent().unwrap().join("wide.ndjson");
        // A wide insert at an occupied spot must displace neighbors; with
        // --budget 0 the batch rolls back and reports the rejection.
        std::fs::write(
            &stream,
            "{\"id\":1,\"edits\":[{\"op\":\"insert\",\"name\":\"wide\",\"w\":24,\"h\":1,\"rail\":\"vdd\",\"x\":10.0,\"y\":1.0}]}\n",
        )
        .unwrap();
        let out = run(&args(&[
            "serve",
            "--aux",
            aux.to_str().unwrap(),
            "--input",
            stream.to_str().unwrap(),
            "--budget",
            "0",
            "--check",
        ]))
        .unwrap();
        // Either the insert found a true free gap (applied) or it was
        // rejected over budget; both end with a legal placement. Require
        // the response to carry the verdict either way.
        assert!(
            out.contains("\"applied\":true") || out.contains("exceeds budget"),
            "{out}"
        );
    }

    #[test]
    fn serve_answers_over_tcp() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let aux = generated_aux("servetcp");
        let (m0, _) = movable_indices(&aux);
        let port = 21000 + (std::process::id() % 20000) as u16;
        let addr = format!("127.0.0.1:{port}");
        let aux_s = aux.to_str().unwrap().to_string();
        let addr_clone = addr.clone();
        let server = std::thread::spawn(move || {
            run(&args(&[
                "serve",
                "--aux",
                &aux_s,
                "--listen",
                &addr_clone,
                "--check",
            ]))
        });
        // The server legalizes before binding; retry until it listens.
        let mut stream = None;
        for _ in 0..300 {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
            }
        }
        let stream = stream.expect("server never bound");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(
                format!(
                    "{{\"id\":9,\"edits\":[{{\"op\":\"move\",\"cell\":{m0},\"x\":7.0,\"y\":1.0}}]}}\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"id\":9"), "{response}");
        assert!(response.contains("\"applied\":true"), "{response}");
        drop(writer);
        drop(reader);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("served 1 batches"), "{summary}");
    }

    #[test]
    fn serve_exposes_metrics_and_health_over_http() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let aux = generated_aux("servemetrics");
        let (m0, _) = movable_indices(&aux);
        let pid = std::process::id();
        let addr = format!("127.0.0.1:{}", 41000 + (pid % 10000) as u16);
        let maddr = format!("127.0.0.1:{}", 51000 + (pid % 10000) as u16);
        let metrics_json = aux.parent().unwrap().join("serve_metrics.json");
        let (aux_s, addr_s, maddr_s) = (
            aux.to_str().unwrap().to_string(),
            addr.clone(),
            maddr.clone(),
        );
        let json_s = metrics_json.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run(&args(&[
                "serve",
                "--aux",
                &aux_s,
                "--listen",
                &addr_s,
                "--metrics-addr",
                &maddr_s,
                "--metrics-json",
                &json_s,
            ]))
        });
        let mut stream = None;
        for _ in 0..300 {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
            }
        }
        let stream = stream.expect("server never bound");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut ask = |line: String| {
            writer.write_all(line.as_bytes()).unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };

        let ok = ask(format!(
            "{{\"id\":1,\"edits\":[{{\"op\":\"move\",\"cell\":{m0},\"x\":6.0,\"y\":1.0}}]}}\n"
        ));
        assert!(ok.contains("\"applied\":true"), "{ok}");
        // A garbage line gets the canonical parse error and a null id; the
        // connection survives.
        let garbage = ask("this is not json\n".to_string());
        assert!(
            garbage.contains("\"error\":{\"kind\":\"parse\""),
            "{garbage}"
        );
        assert!(garbage.contains("\"id\":null"), "{garbage}");
        // A well-formed batch naming a nonexistent cell is an invalid_edit
        // error that echoes the request id.
        let invalid = ask(
            "{\"id\":2,\"edits\":[{\"op\":\"move\",\"cell\":999999,\"x\":1.0,\"y\":1.0}]}\n"
                .to_string(),
        );
        assert!(invalid.contains("\"kind\":\"invalid_edit\""), "{invalid}");
        assert!(invalid.contains("\"id\":2"), "{invalid}");

        let maddr_sock: std::net::SocketAddr = maddr.parse().unwrap();
        let (status, body) = mrl_telemetry::http_get(maddr_sock, "/healthz").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        let (status, text) = mrl_telemetry::http_get(maddr_sock, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(
            text.contains("mrl_serve_batches_total{outcome=\"applied\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mrl_serve_errors_total{reason=\"parse\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mrl_serve_errors_total{reason=\"invalid_edit\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mrl_serve_batch_latency_us_bucket{le=\"+Inf\"}"),
            "{text}"
        );
        assert!(text.contains("mrl_session_live_cells"), "{text}");

        // The poison directive flips /healthz to 503; a follow-up request
        // round-trip is the synchronization barrier.
        let synced = ask(format!(
            "#poison\n{{\"id\":3,\"edits\":[{{\"op\":\"move\",\"cell\":{m0},\"x\":8.0,\"y\":1.0}}]}}\n"
        ));
        assert!(synced.contains("\"id\":3"), "{synced}");
        let (status, body) = mrl_telemetry::http_get(maddr_sock, "/healthz").unwrap();
        assert!(status.contains("503"), "{status}");
        assert_eq!(body, "unhealthy\n");
        assert!(mrl_telemetry::http_get(maddr_sock, "/metrics")
            .unwrap()
            .1
            .contains("mrl_serve_healthy 0"),);

        drop(writer);
        drop(reader);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("served 2 batches"), "{summary}");
        // The final summary merged the live histograms into metrics-v1.
        let written = std::fs::read_to_string(&metrics_json).unwrap();
        assert!(
            written.contains("\"schema\": \"mrl-metrics-v1\""),
            "{written}"
        );
        assert!(written.contains("\"serve_batch_latency_us\""), "{written}");
        assert!(written.contains("\"serve_phase_read_us\""), "{written}");
    }

    #[test]
    fn fuzz_rejects_unknown_regime_and_conflicting_flags() {
        let err = run(&args(&["fuzz", "--regime", "bogus"])).unwrap_err();
        assert!(err.message.contains("unknown regime"), "{}", err.message);
        let err = run(&args(&["fuzz", "--inject-bug", "--no-tiers"])).unwrap_err();
        assert!(
            err.message.contains("mutually exclusive"),
            "{}",
            err.message
        );
    }

    #[test]
    fn fuzz_inject_bug_exits_nonzero_and_writes_reproducer() {
        let dir = tmpdir("fuzzbug");
        let corpus = dir.join("corpus");
        let err = run(&args(&[
            "fuzz",
            "--seed",
            "1",
            "--iters",
            "1",
            "--cells",
            "40",
            "--inject-bug",
            "--corpus",
            corpus.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("PruneMismatch"), "{}", err.message);
        let wrote_repro = std::fs::read_dir(&corpus)
            .unwrap()
            .any(|e| e.unwrap().path().join("repro.aux").exists());
        assert!(wrote_repro, "no reproducer directory under corpus");
    }

    #[test]
    fn fuzz_time_budget_parses_units() {
        assert!(parse_duration("60").is_some());
        assert_eq!(
            parse_duration("60s").unwrap(),
            std::time::Duration::from_secs(60)
        );
        assert_eq!(
            parse_duration("2m").unwrap(),
            std::time::Duration::from_secs(120)
        );
        assert!(parse_duration("x").is_none());
        let out = run(&args(&[
            "fuzz",
            "--iters",
            "2",
            "--cells",
            "30",
            "--time-budget",
            "60s",
        ]))
        .unwrap();
        assert!(out.contains("fuzz:"), "{out}");
    }

    #[test]
    fn legalize_trace_is_valid_chrome_trace_json() {
        let dir = tmpdir("trace");
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_2.aux");
        let trace = dir.join("trace.json");
        let out = run(&args(&[
            "legalize",
            "--aux",
            aux.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote trace to"), "{out}");
        assert!(out.contains("failed attempts:"), "{out}");
        let text = std::fs::read_to_string(&trace).unwrap();
        let Json::Arr(events) = Json::parse(&text).unwrap() else {
            panic!("trace is not a JSON array");
        };
        assert!(!events.is_empty());
        let mut saw_complete = false;
        for ev in &events {
            let ph = match ev.get("ph") {
                Some(Json::Str(s)) => s.as_str(),
                other => panic!("event without ph: {other:?}"),
            };
            assert!(matches!(ph, "X" | "B" | "E"), "unexpected phase {ph}");
            for key in ["pid", "tid", "ts", "name"] {
                assert!(ev.get(key).is_some(), "event missing {key}");
            }
            if ph == "X" {
                assert!(ev.get("dur").is_some(), "X event missing dur");
                saw_complete = true;
            }
        }
        assert!(saw_complete, "no complete events in trace");
    }

    #[test]
    fn metrics_agree_across_thread_counts() {
        let dir = tmpdir("metrics_threads");
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_2.aux");
        let mut sections = Vec::new();
        for threads in ["1", "4"] {
            let path = dir.join(format!("metrics_{threads}.json"));
            run(&args(&[
                "legalize",
                "--aux",
                aux.to_str().unwrap(),
                "--threads",
                threads,
                "--metrics-json",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            let json = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(
                json.get("schema"),
                Some(&Json::Str(MetricsSummary::SCHEMA.into()))
            );
            // Only the counters/fail_reasons/histograms sections are
            // thread-count invariant; the run section carries timing.
            sections.push((
                json.get("counters").cloned(),
                json.get("fail_reasons").cloned(),
                json.get("histograms").cloned(),
            ));
        }
        assert!(sections[0].0.is_some());
        assert_eq!(sections[0], sections[1], "metrics diverged across threads");
    }

    #[test]
    fn report_renders_metrics_digest() {
        let dir = tmpdir("report");
        run(&args(&[
            "generate",
            "--bench",
            "fft_2",
            "--scale",
            "100",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let aux = dir.join("fft_2.aux");
        let metrics = dir.join("metrics.json");
        run(&args(&[
            "legalize",
            "--aux",
            aux.to_str().unwrap(),
            "--metrics-json",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let svg = dir.join("digest.svg");
        let out = run(&args(&[
            "report",
            "--metrics-json",
            metrics.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("metrics digest for fft_2"), "{out}");
        assert!(out.contains("placement:"), "{out}");
        assert!(out.contains("displacement (sites)"), "{out}");
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        // Garbage input is rejected with a parse error.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "not json").unwrap();
        let err = run(&args(&["report", "--metrics-json", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.message.contains("not valid metrics JSON"));
    }

    #[test]
    fn bad_usage_reports_errors() {
        assert!(run(&args(&[])).is_err());
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["legalize"])).is_err());
        assert!(run(&args(&["generate", "--bench", "nope", "--out", "/tmp"])).is_err());
        let help = run(&args(&["help"])).unwrap();
        assert!(help.contains("legalize"));
    }
}
