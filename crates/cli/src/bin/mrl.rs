//! Thin binary wrapper around [`mrl_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mrl_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
