//! Bookshelf (`.aux`, `.nodes`, `.nets`, `.pl`, `.scl`) reader and writer.
//!
//! Conventions implemented (the common GSRC/ISPD dialect):
//!
//! * `.nodes` — `name width height [terminal]`; terminals are fixed
//!   macros whose footprints block placement sites,
//! * `.nets` — `NetDegree : k name` headers followed by
//!   `cell I/O/B : dx dy` pin lines with offsets **from the cell center**,
//! * `.pl` — `name x y : ORIENT [/FIXED]`; movable cells carry their
//!   (possibly fractional, off-grid) global-placement positions,
//! * `.scl` — `CoreRow` records; `Height` and `Sitewidth` are normalized
//!   away so the in-memory design is in site units.
//!
//! Plain Bookshelf cannot express power-rail polarity. The writer encodes
//! a non-default (VSS-bottom) rail as a `# rail=VSS` trailing comment on
//! the cell's `.nodes` line; the reader understands the annotation and
//! otherwise falls back to the default (VDD-bottom) rail, so files from
//! other tools still load and annotated files round-trip **byte
//! identically** (`write → read → write` is the identity on bytes; see
//! the round-trip property test). Everything else round-trips exactly;
//! see the crate-level example.

use crate::ParseError;
use mrl_db::{CellId, Design, DesignBuilder};
use mrl_geom::SiteRect;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Writes `design` as `<base>.aux` plus the four data files into `dir`.
///
/// # Errors
///
/// Any I/O failure while creating or writing the files.
pub fn write(design: &Design, dir: &Path, base: &str) -> Result<(), ParseError> {
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join(format!("{base}.aux")),
        format!("RowBasedPlacement : {base}.nodes {base}.nets {base}.pl {base}.scl\n"),
    )?;
    fs::write(dir.join(format!("{base}.nodes")), nodes_text(design))?;
    fs::write(dir.join(format!("{base}.nets")), nets_text(design))?;
    fs::write(dir.join(format!("{base}.pl")), pl_text(design))?;
    fs::write(dir.join(format!("{base}.scl")), scl_text(design))?;
    Ok(())
}

fn nodes_text(design: &Design) -> String {
    let mut out = String::from("UCLA nodes 1.0\n\n");
    let terminals = design.cells().iter().filter(|c| !c.is_movable()).count();
    let _ = writeln!(out, "NumNodes : {}", design.num_cells());
    let _ = writeln!(out, "NumTerminals : {terminals}");
    for cell in design.cells() {
        if cell.is_movable() {
            let rail = match cell.rail() {
                mrl_geom::PowerRail::Vdd => "",
                mrl_geom::PowerRail::Vss => " # rail=VSS",
            };
            let _ = writeln!(
                out,
                "  {} {} {}{rail}",
                cell.name(),
                cell.width(),
                cell.height()
            );
        } else {
            let _ = writeln!(
                out,
                "  {} {} {} terminal",
                cell.name(),
                cell.width(),
                cell.height()
            );
        }
    }
    out
}

fn nets_text(design: &Design) -> String {
    let netlist = design.netlist();
    let mut out = String::from("UCLA nets 1.0\n\n");
    let _ = writeln!(out, "NumNets : {}", netlist.num_nets());
    let _ = writeln!(out, "NumPins : {}", netlist.pins().len());
    for net in netlist.nets() {
        let _ = writeln!(out, "NetDegree : {} {}", net.degree(), net.name());
        for &pin in net.pins() {
            match netlist.pin(pin).location {
                mrl_db::PinLocation::OnCell { cell, dx, dy } => {
                    let c = design.cell(cell);
                    // Bookshelf offsets are from the cell center.
                    let cdx = dx - f64::from(c.width()) / 2.0;
                    let cdy = dy - f64::from(c.height()) / 2.0;
                    let _ = writeln!(out, "  {} B : {cdx:.6} {cdy:.6}", c.name());
                }
                mrl_db::PinLocation::Fixed { x, y } => {
                    // Fixed pins are modelled as zero-size pseudo
                    // terminals; rare in our flows, encoded via a
                    // reserved name.
                    let _ = writeln!(out, "  __fixed__ B : {x:.6} {y:.6}");
                }
            }
        }
    }
    out
}

fn pl_text(design: &Design) -> String {
    let mut out = String::from("UCLA pl 1.0\n\n");
    for (i, cell) in design.cells().iter().enumerate() {
        let id = CellId::from_usize(i);
        let (x, y) = design.input_position(id);
        if cell.is_movable() {
            let _ = writeln!(out, "{} {x:.6} {y:.6} : N", cell.name());
        } else {
            let _ = writeln!(out, "{} {x:.6} {y:.6} : N /FIXED", cell.name());
        }
    }
    out
}

fn scl_text(design: &Design) -> String {
    let fp = design.floorplan();
    let mut out = String::from("UCLA scl 1.0\n\n");
    let _ = writeln!(out, "NumRows : {}", fp.num_rows());
    for (i, row) in fp.rows().iter().enumerate() {
        let _ = writeln!(out, "CoreRow Horizontal");
        let _ = writeln!(out, "  Coordinate : {i}");
        let _ = writeln!(out, "  Height : 1");
        let _ = writeln!(out, "  Sitewidth : 1");
        let _ = writeln!(out, "  Sitespacing : 1");
        let _ = writeln!(out, "  Siteorient : 1");
        let _ = writeln!(out, "  Sitesymmetry : 1");
        let _ = writeln!(out, "  SubrowOrigin : {}  NumSites : {}", row.x, row.width);
        let _ = writeln!(out, "End");
    }
    out
}

/// Reads a design from a `.aux` file.
///
/// # Errors
///
/// [`ParseError::Io`] on missing files, [`ParseError::Syntax`] on
/// malformed content, [`ParseError::Semantic`] when the files are
/// mutually inconsistent or fail design validation.
pub fn read(aux_path: &Path) -> Result<Design, ParseError> {
    let aux = fs::read_to_string(aux_path)?;
    let dir = aux_path.parent().unwrap_or(Path::new("."));
    let mut nodes_file = None;
    let mut nets_file = None;
    let mut pl_file = None;
    let mut scl_file = None;
    for token in aux.split_whitespace() {
        if token.ends_with(".nodes") {
            nodes_file = Some(dir.join(token));
        } else if token.ends_with(".nets") {
            nets_file = Some(dir.join(token));
        } else if token.ends_with(".pl") {
            pl_file = Some(dir.join(token));
        } else if token.ends_with(".scl") {
            scl_file = Some(dir.join(token));
        }
    }
    let missing = |what: &str| ParseError::syntax(aux_path, 1, format!("no {what} file listed"));
    let nodes_file = nodes_file.ok_or_else(|| missing(".nodes"))?;
    let nets_file = nets_file.ok_or_else(|| missing(".nets"))?;
    let pl_file = pl_file.ok_or_else(|| missing(".pl"))?;
    let scl_file = scl_file.ok_or_else(|| missing(".scl"))?;

    // --- .scl -----------------------------------------------------------
    let scl = fs::read_to_string(&scl_file)?;
    #[derive(Default, Clone)]
    struct RawRow {
        coordinate: f64,
        height: f64,
        site_width: f64,
        origin: f64,
        num_sites: f64,
    }
    let mut rows: Vec<RawRow> = Vec::new();
    let mut cur: Option<RawRow> = None;
    for (lno, line) in scl.lines().enumerate() {
        let lno = lno + 1;
        let line = strip_comment(line);
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("CoreRow") => {
                cur = Some(RawRow {
                    site_width: 1.0,
                    height: 1.0,
                    ..RawRow::default()
                })
            }
            Some("End") => {
                if let Some(r) = cur.take() {
                    rows.push(r);
                }
            }
            Some(key) => {
                if let Some(r) = cur.as_mut() {
                    let rest: Vec<&str> = line.split(':').collect();
                    let val = |idx: usize| -> Result<f64, ParseError> {
                        rest.get(idx)
                            .and_then(|s| s.split_whitespace().next())
                            .and_then(|s| s.parse::<f64>().ok())
                            .ok_or_else(|| {
                                ParseError::syntax(&scl_file, lno, "expected numeric value")
                            })
                    };
                    match key {
                        "Coordinate" => r.coordinate = val(1)?,
                        "Height" => r.height = val(1)?,
                        "Sitewidth" => r.site_width = val(1)?,
                        "SubrowOrigin" => {
                            r.origin = val(1)?;
                            // `SubrowOrigin : x NumSites : n`
                            r.num_sites = val(2)?;
                        }
                        _ => {}
                    }
                }
            }
            None => {}
        }
    }
    if rows.is_empty() {
        return Err(ParseError::syntax(&scl_file, 0, "no CoreRow records"));
    }
    rows.sort_by(|a, b| a.coordinate.total_cmp(&b.coordinate));
    let row_h = rows[0].height;
    let site_w = rows[0].site_width;
    if row_h <= 0.0 || site_w <= 0.0 {
        return Err(ParseError::syntax(
            &scl_file,
            0,
            "non-positive row geometry",
        ));
    }
    let to_rows = |v: f64| -> Result<i32, ParseError> {
        let r = v / row_h;
        if (r - r.round()).abs() > 1e-6 {
            return Err(ParseError::Semantic(format!(
                "vertical value {v} is not a multiple of the row height {row_h}"
            )));
        }
        Ok(r.round() as i32)
    };
    let to_sites = |v: f64| -> Result<i32, ParseError> {
        let s = v / site_w;
        if (s - s.round()).abs() > 1e-6 {
            return Err(ParseError::Semantic(format!(
                "horizontal value {v} is not a multiple of the site width {site_w}"
            )));
        }
        Ok(s.round() as i32)
    };
    let base_row = to_rows(rows[0].coordinate)?;
    let mut design_rows = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        if (r.height - row_h).abs() > 1e-9 || (r.site_width - site_w).abs() > 1e-9 {
            return Err(ParseError::Semantic(
                "rows with mixed heights or site widths are not supported".into(),
            ));
        }
        if to_rows(r.coordinate)? - base_row != i as i32 {
            return Err(ParseError::Semantic(
                "rows must be vertically contiguous".into(),
            ));
        }
        design_rows.push(mrl_db::Row::new(to_sites(r.origin)?, r.num_sites as i32));
    }
    let mut builder = DesignBuilder::with_rows(design_rows);
    builder.set_name(
        aux_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "bookshelf".into()),
    );

    // --- .nodes ----------------------------------------------------------
    let nodes = fs::read_to_string(&nodes_file)?;
    struct RawNode {
        w: i32,
        h: i32,
        terminal: bool,
        rail: mrl_geom::PowerRail,
    }
    let mut raw_nodes: Vec<(String, RawNode)> = Vec::new();
    for (lno, line) in nodes.lines().enumerate() {
        let lno = lno + 1;
        // Our rail-polarity extension rides in the comment; read it before
        // the comment is stripped.
        let rail = if line
            .split('#')
            .nth(1)
            .is_some_and(|c| c.contains("rail=VSS"))
        {
            mrl_geom::PowerRail::Vss
        } else {
            mrl_geom::PowerRail::Vdd
        };
        let line = strip_comment(line);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty()
            || tokens[0] == "UCLA"
            || tokens[0] == "NumNodes"
            || tokens[0] == "NumTerminals"
        {
            continue;
        }
        if tokens.len() < 3 {
            return Err(ParseError::syntax(&nodes_file, lno, "expected: name w h"));
        }
        let w: f64 = tokens[1]
            .parse()
            .map_err(|_| ParseError::syntax(&nodes_file, lno, "bad width"))?;
        let h: f64 = tokens[2]
            .parse()
            .map_err(|_| ParseError::syntax(&nodes_file, lno, "bad height"))?;
        raw_nodes.push((
            tokens[0].to_string(),
            RawNode {
                w: to_sites(w)?,
                h: to_rows(h)?,
                terminal: tokens
                    .get(3)
                    .is_some_and(|t| t.eq_ignore_ascii_case("terminal")),
                rail,
            },
        ));
    }

    // --- .pl -------------------------------------------------------------
    let pl = fs::read_to_string(&pl_file)?;
    let mut positions: HashMap<String, (f64, f64)> = HashMap::new();
    for (lno, line) in pl.lines().enumerate() {
        let lno = lno + 1;
        let line = strip_comment(line);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() || tokens[0] == "UCLA" {
            continue;
        }
        if tokens.len() < 3 {
            return Err(ParseError::syntax(&pl_file, lno, "expected: name x y"));
        }
        let x: f64 = tokens[1]
            .parse()
            .map_err(|_| ParseError::syntax(&pl_file, lno, "bad x"))?;
        let y: f64 = tokens[2]
            .parse()
            .map_err(|_| ParseError::syntax(&pl_file, lno, "bad y"))?;
        positions.insert(
            tokens[0].to_string(),
            (x / site_w, y / row_h - f64::from(base_row)),
        );
    }

    // Create cells.
    let mut ids: HashMap<String, CellId> = HashMap::new();
    for (name, node) in &raw_nodes {
        if node.terminal {
            let &(x, y) = positions.get(name).ok_or_else(|| {
                ParseError::Semantic(format!("terminal {name} has no .pl position"))
            })?;
            let id = builder.add_fixed(
                name.clone(),
                SiteRect::new(x.round() as i32, y.round() as i32, node.w, node.h.max(1)),
            );
            ids.insert(name.clone(), id);
        } else {
            let id = builder.add_cell_with_rail(name.clone(), node.w, node.h, node.rail);
            if let Some(&(x, y)) = positions.get(name) {
                builder.set_input_position(id, x, y);
            }
            ids.insert(name.clone(), id);
        }
    }

    // --- .nets -----------------------------------------------------------
    let nets = fs::read_to_string(&nets_file)?;
    let mut current_net = None;
    for (lno, line) in nets.lines().enumerate() {
        let lno = lno + 1;
        let line = strip_comment(line);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty()
            || tokens[0] == "UCLA"
            || tokens[0] == "NumNets"
            || tokens[0] == "NumPins"
        {
            continue;
        }
        if tokens[0] == "NetDegree" {
            let name = tokens
                .last()
                .filter(|t| !t.chars().next().unwrap_or('0').is_ascii_digit())
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("net_{lno}"));
            current_net = Some(builder.add_net(name));
            continue;
        }
        let Some(net) = current_net else {
            return Err(ParseError::syntax(&nets_file, lno, "pin before NetDegree"));
        };
        // `name dir : dx dy` (offsets optional).
        let name = tokens[0];
        let after_colon: Vec<&str> = line
            .split(':')
            .nth(1)
            .map(|s| s.split_whitespace().collect())
            .unwrap_or_default();
        let dx: f64 = after_colon
            .first()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.0);
        let dy: f64 = after_colon
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.0);
        if name == "__fixed__" {
            builder.add_fixed_pin(net, dx, dy);
            continue;
        }
        let &id = ids
            .get(name)
            .ok_or_else(|| ParseError::Semantic(format!("pin references unknown cell {name}")))?;
        let (idx, _) = (id, ());
        let cell_w;
        let cell_h;
        {
            let node = &raw_nodes[idx.index()].1;
            cell_w = node.w;
            cell_h = node.h.max(1);
        }
        // Center offsets back to corner offsets, in site units.
        builder.add_cell_pin(
            net,
            id,
            dx / site_w + f64::from(cell_w) / 2.0,
            dy / row_h + f64::from(cell_h) / 2.0,
        );
    }

    Ok(builder.finish()?)
}

fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_synth::{generate, BenchmarkSpec, GeneratorConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mrl_bookshelf_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_design() -> Design {
        let spec = BenchmarkSpec::new("bk_test", 60, 6, 0.4, 0.0);
        generate(&spec, &GeneratorConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let design = sample_design();
        let dir = tmpdir("rt");
        write(&design, &dir, "bk_test").unwrap();
        let back = read(&dir.join("bk_test.aux")).unwrap();
        assert_eq!(back.num_cells(), design.num_cells());
        assert_eq!(back.num_movable(), design.num_movable());
        assert_eq!(back.netlist().num_nets(), design.netlist().num_nets());
        assert_eq!(back.floorplan().num_rows(), design.floorplan().num_rows());
        // Cell geometry round-trips exactly.
        for (a, b) in design.cells().iter().zip(back.cells()) {
            assert_eq!(
                (a.name(), a.width(), a.height()),
                (b.name(), b.width(), b.height())
            );
            assert_eq!(a.is_movable(), b.is_movable());
        }
        // Input positions round-trip to printed precision.
        for c in design.movable_cells() {
            let (x0, y0) = design.input_position(c);
            let (x1, y1) = back.input_position(c);
            assert!((x0 - x1).abs() < 1e-5 && (y0 - y1).abs() < 1e-5);
        }
    }

    #[test]
    fn round_trip_preserves_hpwl() {
        let design = sample_design();
        let dir = tmpdir("hpwl");
        write(&design, &dir, "bk_test").unwrap();
        let back = read(&dir.join("bk_test.aux")).unwrap();
        let a = design.hpwl_um(|c| design.input_position(c));
        let b = back.hpwl_um(|c| back.input_position(c));
        assert!((a - b).abs() / a.max(1.0) < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn scaled_units_are_normalized() {
        // Hand-written bookshelf with Height 9, Sitewidth 2.
        let dir = tmpdir("units");
        std::fs::write(
            dir.join("u.aux"),
            "RowBasedPlacement : u.nodes u.nets u.pl u.scl\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("u.nodes"),
            "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n a 4 9\n b 6 18\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("u.nets"),
            "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("u.pl"),
            "UCLA pl 1.0\na 8.0 9.0 : N\nb 0.0 0.0 : N\n",
        )
        .unwrap();
        let mut scl = String::from("UCLA scl 1.0\nNumRows : 3\n");
        for i in 0..3 {
            scl.push_str(&format!(
                "CoreRow Horizontal\n  Coordinate : {}\n  Height : 9\n  Sitewidth : 2\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
                i * 9
            ));
        }
        std::fs::write(dir.join("u.scl"), scl).unwrap();
        let d = read(&dir.join("u.aux")).unwrap();
        assert_eq!(d.floorplan().num_rows(), 3);
        let a = d.cells().iter().find(|c| c.name() == "a").unwrap();
        assert_eq!((a.width(), a.height()), (2, 1));
        let b = d.cells().iter().find(|c| c.name() == "b").unwrap();
        assert_eq!((b.width(), b.height()), (3, 2));
        let a_id = mrl_db::CellId::new(0);
        assert_eq!(d.input_position(a_id), (4.0, 1.0));
    }

    #[test]
    fn terminal_without_position_is_semantic_error() {
        let dir = tmpdir("badterm");
        std::fs::write(
            dir.join("t.aux"),
            "RowBasedPlacement : t.nodes t.nets t.pl t.scl\n",
        )
        .unwrap();
        std::fs::write(dir.join("t.nodes"), "UCLA nodes 1.0\n m 4 1 terminal\n").unwrap();
        std::fs::write(dir.join("t.nets"), "UCLA nets 1.0\n").unwrap();
        std::fs::write(dir.join("t.pl"), "UCLA pl 1.0\n").unwrap();
        std::fs::write(
            dir.join("t.scl"),
            "UCLA scl 1.0\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 1\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 10\nEnd\n",
        )
        .unwrap();
        let err = read(&dir.join("t.aux")).unwrap_err();
        assert!(matches!(err, ParseError::Semantic(_)));
    }

    #[test]
    fn missing_file_reference_is_syntax_error() {
        let dir = tmpdir("noref");
        std::fs::write(dir.join("x.aux"), "RowBasedPlacement : x.nodes\n").unwrap();
        let err = read(&dir.join("x.aux")).unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
    }

    #[test]
    fn rails_round_trip_via_annotation() {
        use mrl_geom::PowerRail;
        let mut b = mrl_db::DesignBuilder::new(4, 20);
        let v = b.add_cell_with_rail("vdd_cell", 2, 2, PowerRail::Vdd);
        let s = b.add_cell_with_rail("vss_cell", 2, 2, PowerRail::Vss);
        b.set_input_position(v, 0.0, 0.0);
        b.set_input_position(s, 4.0, 1.0);
        let design = b.finish().unwrap();
        let dir = tmpdir("rails");
        write(&design, &dir, "rails").unwrap();
        let nodes = std::fs::read_to_string(dir.join("rails.nodes")).unwrap();
        assert!(nodes.contains("vss_cell 2 2 # rail=VSS"), "{nodes}");
        let back = read(&dir.join("rails.aux")).unwrap();
        assert_eq!(back.cell(v).rail(), PowerRail::Vdd);
        assert_eq!(back.cell(s).rail(), PowerRail::Vss);
    }

    // The writer and reader must be exact inverses on our own output:
    // write → read → write is the identity on all five files, byte for
    // byte. Without this, corpus reproducers and the CLI's .pl
    // byte-compare tests would drift through every save/load cycle.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn write_read_write_is_byte_identical(seed in 0u32..1_000_000u32) {
            let files = ["aux", "nodes", "nets", "pl", "scl"];
            // Witness designs carry VSS rails; suite designs carry nets,
            // macros, and off-grid fractional positions.
            let witness = mrl_synth::generate_witness(
                &mrl_synth::WitnessConfig::new(u64::from(seed)).with_cells(40),
            )
            .unwrap()
            .design;
            let spec = BenchmarkSpec::new(format!("rt_{seed}"), 30, 4, 0.4, 0.0);
            let suite =
                generate(&spec, &GeneratorConfig::default().with_seed(u64::from(seed))).unwrap();
            for (tag, design) in [("w", witness), ("s", suite)] {
                let d1 = tmpdir(&format!("bytes_{tag}_{seed}_1"));
                let d2 = tmpdir(&format!("bytes_{tag}_{seed}_2"));
                write(&design, &d1, "rt").unwrap();
                let back = read(&d1.join("rt.aux")).unwrap();
                write(&back, &d2, "rt").unwrap();
                for f in files {
                    let a = std::fs::read(d1.join(format!("rt.{f}"))).unwrap();
                    let b = std::fs::read(d2.join(format!("rt.{f}"))).unwrap();
                    proptest::prop_assert!(
                        a == b,
                        "{tag} seed {seed}: rt.{f} not byte-identical after round trip"
                    );
                }
            }
        }
    }

    #[test]
    fn comments_are_ignored() {
        let dir = tmpdir("comments");
        std::fs::write(
            dir.join("c.aux"),
            "RowBasedPlacement : c.nodes c.nets c.pl c.scl\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("c.nodes"),
            "UCLA nodes 1.0\n# a comment line\n a 2 1 # trailing\n",
        )
        .unwrap();
        std::fs::write(dir.join("c.nets"), "UCLA nets 1.0\n").unwrap();
        std::fs::write(dir.join("c.pl"), "UCLA pl 1.0\na 0 0 : N\n").unwrap();
        std::fs::write(
            dir.join("c.scl"),
            "UCLA scl 1.0\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 1\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 10\nEnd\n",
        )
        .unwrap();
        let d = read(&dir.join("c.aux")).unwrap();
        assert_eq!(d.num_movable(), 1);
    }
}
