//! Parse errors with file/line context.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Error while reading a benchmark file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content at a specific location.
    Syntax {
        /// The offending file.
        file: PathBuf,
        /// 1-based line number (0 when not line-specific).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed data is inconsistent (e.g. a pin references an unknown
    /// cell) or fails design validation.
    Semantic(String),
}

impl ParseError {
    pub(crate) fn syntax(
        file: impl Into<PathBuf>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        ParseError::Syntax {
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax {
                file,
                line,
                message,
            } => {
                write!(f, "{}:{line}: {message}", file.display())
            }
            ParseError::Semantic(message) => write!(f, "inconsistent benchmark: {message}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<mrl_db::DbError> for ParseError {
    fn from(e: mrl_db::DbError) -> Self {
        ParseError::Semantic(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::syntax("x.nodes", 12, "bad token");
        assert_eq!(e.to_string(), "x.nodes:12: bad token");
    }

    #[test]
    fn io_errors_convert() {
        let e: ParseError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
