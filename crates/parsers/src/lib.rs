//! Benchmark file I/O for multi-row legalization.
//!
//! The ISPD2015 contest the paper evaluates on distributes designs as
//! LEF/DEF; academic placers also commonly exchange the older Bookshelf
//! format. This crate implements readers and writers for both — a
//! practical subset sufficient to round-trip every design this workspace
//! generates:
//!
//! * [`bookshelf`] — `.aux` / `.nodes` / `.nets` / `.pl` / `.scl`,
//! * [`lefdef`] — technology + macros (LEF) and floorplan + components +
//!   nets (DEF).
//!
//! Both formats carry positions for fixed macros and the (possibly
//! off-grid) global-placement positions of movable cells; reading returns
//! an [`mrl_db::Design`] ready for legalization.
//!
//! # Examples
//!
//! ```
//! use mrl_synth::{BenchmarkSpec, GeneratorConfig, generate};
//! use mrl_parsers::bookshelf;
//!
//! let spec = BenchmarkSpec::new("tiny", 50, 5, 0.4, 0.0);
//! let design = generate(&spec, &GeneratorConfig::default())?;
//! let dir = std::env::temp_dir().join("mrl_doc_bookshelf");
//! std::fs::create_dir_all(&dir)?;
//! bookshelf::write(&design, &dir, "tiny")?;
//! let back = bookshelf::read(&dir.join("tiny.aux"))?;
//! assert_eq!(back.num_movable(), design.num_movable());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bookshelf;
pub mod lefdef;

mod error;

pub use error::ParseError;
