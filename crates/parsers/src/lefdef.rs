//! Simplified LEF/DEF writer and reader.
//!
//! Implements the subset of LEF/DEF the ISPD2015 contest flow needs for
//! legalization experiments:
//!
//! * **LEF** — `UNITS`, one `SITE` (the placement site), and `MACRO`
//!   blocks with `CLASS CORE`/`BLOCK` and `SIZE w BY h` in microns,
//!   including nested `PIN`/`PORT`/`RECT` blocks whose rectangle centers
//!   become pin offsets (so contest-style DEF net pins resolve to real
//!   locations). The writer emits one macro per distinct cell footprint
//!   and encodes pin offsets in pin names (`PIN_<dx>_<dy>`); the reader
//!   accepts both dialects.
//! * **DEF** — `UNITS DISTANCE MICRONS`, `DIEAREA`, `ROW` statements,
//!   `COMPONENTS` with `PLACED`/`FIXED`/`UNPLACED` state, and `NETS` with
//!   component pins. Global-placement coordinates are written through
//!   `PLACED`, so off-grid positions survive the round trip at DEF
//!   database-unit resolution.
//!
//! Like Bookshelf, these files do not model power-rail polarity; cells
//! read back get the default rail.

use crate::ParseError;
use mrl_db::{CellId, Design, DesignBuilder, Row};
use mrl_geom::{SiteGrid, SiteRect};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

const DBU: f64 = 1000.0; // database units per micron

/// Writes `design` as `<base>.lef` and `<base>.def` into `dir`.
///
/// # Errors
///
/// Any I/O failure while creating or writing the files.
pub fn write(design: &Design, dir: &Path, base: &str) -> Result<(), ParseError> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{base}.lef")), lef_text(design))?;
    fs::write(dir.join(format!("{base}.def")), def_text(design))?;
    Ok(())
}

/// The macro name used for a cell footprint.
fn macro_name(w: i32, h: i32, movable: bool) -> String {
    if movable {
        format!("CORE_W{w}H{h}")
    } else {
        format!("BLOCK_W{w}H{h}")
    }
}

fn lef_text(design: &Design) -> String {
    let grid = design.grid();
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "UNITS\n  DATABASE MICRONS {DBU} ;\nEND UNITS\n");
    let _ = writeln!(
        out,
        "SITE core\n  SIZE {:.4} BY {:.4} ;\n  CLASS CORE ;\nEND core\n",
        grid.site_width_um(),
        grid.row_height_um()
    );
    let mut seen: HashMap<(i32, i32, bool), ()> = HashMap::new();
    for cell in design.cells() {
        let key = (cell.width(), cell.height(), cell.is_movable());
        if seen.insert(key, ()).is_some() {
            continue;
        }
        let name = macro_name(cell.width(), cell.height(), cell.is_movable());
        let class = if cell.is_movable() { "CORE" } else { "BLOCK" };
        let _ = writeln!(
            out,
            "MACRO {name}\n  CLASS {class} ;\n  SIZE {:.4} BY {:.4} ;\nEND {name}\n",
            grid.x_um(cell.width()),
            grid.y_um(cell.height())
        );
    }
    out.push_str("END LIBRARY\n");
    out
}

fn def_text(design: &Design) -> String {
    let grid = design.grid();
    let fp = design.floorplan();
    let sx = |sites: f64| (sites * grid.site_width_um() * DBU).round() as i64;
    let sy = |rows: f64| (rows * grid.row_height_um() * DBU).round() as i64;
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", design.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {DBU} ;");
    let bounds = fp.bounds();
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        sx(f64::from(bounds.x)),
        sy(f64::from(bounds.y)),
        sx(f64::from(bounds.right())),
        sy(f64::from(bounds.top()))
    );
    for (i, row) in fp.rows().iter().enumerate() {
        let _ = writeln!(
            out,
            "ROW row_{i} core {} {} N DO {} BY 1 STEP {} 0 ;",
            sx(f64::from(row.x)),
            sy(i as f64),
            row.width,
            sx(1.0)
        );
    }
    if !design.regions().is_empty() {
        let _ = writeln!(out, "REGIONS {} ;", design.regions().len());
        for region in design.regions() {
            let _ = write!(out, "- {}", region.name());
            for r in region.rects() {
                let _ = write!(
                    out,
                    " ( {} {} ) ( {} {} )",
                    sx(f64::from(r.x)),
                    sy(f64::from(r.y)),
                    sx(f64::from(r.right())),
                    sy(f64::from(r.top()))
                );
            }
            let _ = writeln!(out, " + TYPE FENCE ;");
        }
        let _ = writeln!(out, "END REGIONS");
    }
    let _ = writeln!(out, "COMPONENTS {} ;", design.num_cells());
    for (i, cell) in design.cells().iter().enumerate() {
        let id = CellId::from_usize(i);
        let (x, y) = design.input_position(id);
        let mname = macro_name(cell.width(), cell.height(), cell.is_movable());
        if cell.is_movable() {
            let _ = writeln!(
                out,
                "- {} {} + PLACED ( {} {} ) N ;",
                cell.name(),
                mname,
                sx(x),
                sy(y)
            );
        } else {
            let _ = writeln!(
                out,
                "- {} {} + FIXED ( {} {} ) N ;",
                cell.name(),
                mname,
                sx(x),
                sy(y)
            );
        }
    }
    let _ = writeln!(out, "END COMPONENTS");
    let netlist = design.netlist();
    let _ = writeln!(out, "NETS {} ;", netlist.num_nets());
    for net in netlist.nets() {
        let _ = write!(out, "- {}", net.name());
        for &pin in net.pins() {
            match netlist.pin(pin).location {
                mrl_db::PinLocation::OnCell { cell, dx, dy } => {
                    // Pin offsets encoded in the pin name (our simplified
                    // dialect): PIN_<dx_dbu>_<dy_dbu>.
                    let _ = write!(
                        out,
                        " ( {} PIN_{}_{} )",
                        design.cell(cell).name(),
                        sx(dx),
                        sy(dy)
                    );
                }
                mrl_db::PinLocation::Fixed { x, y } => {
                    let _ = write!(out, " ( PIN FIXED_{}_{} )", sx(x), sy(y));
                }
            }
        }
        let _ = writeln!(out, " ;");
    }
    let _ = writeln!(out, "END NETS");
    if !design.regions().is_empty() {
        let _ = writeln!(out, "GROUPS {} ;", design.regions().len());
        for (ri, region) in design.regions().iter().enumerate() {
            let _ = write!(out, "- grp_{}", region.name());
            for (i, cell) in design.cells().iter().enumerate() {
                if design.region_of(CellId::from_usize(i)) == Some(mrl_db::RegionId::from_usize(ri))
                {
                    let _ = write!(out, " {}", cell.name());
                }
            }
            let _ = writeln!(out, " + REGION {} ;", region.name());
        }
        let _ = writeln!(out, "END GROUPS");
    }
    let _ = writeln!(out, "END DESIGN");
    out
}

/// Reads a design from a LEF + DEF pair.
///
/// # Errors
///
/// [`ParseError::Io`] on missing files, [`ParseError::Syntax`] on
/// malformed content, [`ParseError::Semantic`] on inconsistencies.
pub fn read(lef_path: &Path, def_path: &Path) -> Result<Design, ParseError> {
    // --- LEF: site size + macro footprints in microns --------------------
    let lef = fs::read_to_string(lef_path)?;
    let mut site: Option<(f64, f64)> = None;
    let mut macros: HashMap<String, (f64, f64, bool)> = HashMap::new();
    // Per-macro pin centers in microns (from PIN ... PORT RECT blocks).
    let mut macro_pins: HashMap<String, HashMap<String, (f64, f64)>> = HashMap::new();
    let mut cur: Option<(String, bool)> = None; // name, is_site
    let mut cur_class_block = false;
    let mut cur_size: Option<(f64, f64)> = None;
    let mut cur_pin: Option<(String, Option<(f64, f64)>)> = None;
    for (lno, line) in lef.lines().enumerate() {
        let lno = lno + 1;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["SITE", name, ..] => cur = Some((name.to_string(), true)),
            ["MACRO", name, ..] => {
                cur = Some((name.to_string(), false));
                cur_class_block = false;
                cur_size = None;
                cur_pin = None;
            }
            ["PIN", name, ..] if cur.is_some() => {
                cur_pin = Some((name.to_string(), None));
            }
            ["CLASS", class, ..] => {
                cur_class_block = class.eq_ignore_ascii_case("BLOCK");
            }
            ["RECT", x0, y0, x1, y1, ..] if cur_pin.is_some() => {
                let parse = |v: &str| {
                    v.parse::<f64>()
                        .map_err(|_| ParseError::syntax(lef_path, lno, "bad RECT coord"))
                };
                let (x0, y0, x1, y1) = (parse(x0)?, parse(y0)?, parse(x1)?, parse(y1)?);
                if let Some((_, center)) = cur_pin.as_mut() {
                    // First port rect wins; pins are tiny, the center is
                    // a fine abstraction for placement.
                    center.get_or_insert(((x0 + x1) / 2.0, (y0 + y1) / 2.0));
                }
            }
            ["SIZE", w, "BY", h, ..] => {
                let w: f64 = w
                    .parse()
                    .map_err(|_| ParseError::syntax(lef_path, lno, "bad SIZE width"))?;
                let h: f64 = h
                    .parse()
                    .map_err(|_| ParseError::syntax(lef_path, lno, "bad SIZE height"))?;
                cur_size = Some((w, h));
            }
            ["END", name, ..] => {
                // Innermost block first: a PIN closes before its MACRO.
                if let Some((pname, center)) = cur_pin.take() {
                    if &pname == name {
                        if let (Some((mname, _)), Some(center)) = (cur.as_ref(), center) {
                            macro_pins
                                .entry(mname.clone())
                                .or_default()
                                .insert(pname, center);
                        }
                        continue;
                    }
                    // Not the pin's end (e.g. END PORT): keep the pin open.
                    if *name != "PORT" {
                        cur_pin = Some((pname, center));
                    } else {
                        cur_pin = Some((pname, center));
                        continue;
                    }
                }
                if let Some((cname, is_site)) = cur.take() {
                    if &cname == name {
                        if let Some(size) = cur_size.take() {
                            if is_site {
                                site = Some(size);
                            } else {
                                macros.insert(cname, (size.0, size.1, cur_class_block));
                            }
                        } else if is_site {
                            return Err(ParseError::syntax(lef_path, lno, "SITE without SIZE"));
                        }
                    } else {
                        // Unrelated END (LIBRARY, UNITS, ...): keep the
                        // enclosing block open.
                        cur = Some((cname, is_site));
                    }
                }
            }
            _ => {}
        }
    }
    let (site_w_um, row_h_um) =
        site.ok_or_else(|| ParseError::Semantic("LEF defines no SITE".into()))?;
    let grid = SiteGrid::new(site_w_um, row_h_um);

    // --- DEF --------------------------------------------------------------
    let def = fs::read_to_string(def_path)?;
    let mut dbu = DBU;
    let mut rows: Vec<(i64, i64, i32)> = Vec::new(); // (x_dbu, y_dbu, num_sites)
    let mut builder: Option<DesignBuilder> = None;
    let mut ids: HashMap<String, CellId> = HashMap::new();
    let mut comp_macro: HashMap<String, String> = HashMap::new();
    let mut design_name = String::from("lefdef");
    // Collect statements first; DEF statements end with ';' but may span
    // lines — normalize by splitting on ';'.
    let mut in_components = false;
    let mut in_nets = false;
    let mut in_regions = false;
    let mut in_groups = false;
    /// A raw region rect in database units: (x0, y0, x1, y1).
    type RawRect = (i64, i64, i64, i64);
    // Region statements seen before the floorplan/builder exist.
    let mut pending_regions: Vec<(String, Vec<RawRect>)> = Vec::new();
    let mut region_ids: HashMap<String, mrl_db::RegionId> = HashMap::new();
    for raw_stmt in def.split(';') {
        let stmt = raw_stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let mut tokens: Vec<&str> = stmt.split_whitespace().collect();
        // Section terminators carry no ';' in DEF, so they prefix the next
        // statement after splitting; peel them off.
        loop {
            match tokens.as_slice() {
                ["END", "COMPONENTS", ..] => {
                    in_components = false;
                    tokens.drain(..2);
                }
                ["END", "NETS", ..] => {
                    in_nets = false;
                    tokens.drain(..2);
                }
                ["END", "REGIONS", ..] => {
                    in_regions = false;
                    tokens.drain(..2);
                }
                ["END", "GROUPS", ..] => {
                    in_groups = false;
                    tokens.drain(..2);
                }
                ["END", "DESIGN", ..] => {
                    tokens.drain(..2);
                }
                _ => break,
            }
        }
        if tokens.is_empty() {
            continue;
        }
        match tokens.as_slice() {
            ["DESIGN", name, ..] => design_name = name.to_string(),
            ["UNITS", "DISTANCE", "MICRONS", v, ..] => {
                dbu = v
                    .parse()
                    .map_err(|_| ParseError::Semantic("bad DEF units".into()))?;
            }
            ["ROW", _name, _site, x, y, _orient, "DO", n, "BY", "1", ..] => {
                let x: i64 = x
                    .parse()
                    .map_err(|_| ParseError::Semantic("bad ROW x".into()))?;
                let y: i64 = y
                    .parse()
                    .map_err(|_| ParseError::Semantic("bad ROW y".into()))?;
                let n: i32 = n
                    .parse()
                    .map_err(|_| ParseError::Semantic("bad ROW site count".into()))?;
                rows.push((x, y, n));
            }
            ["COMPONENTS", ..] => {
                // Build the floorplan now: rows are known.
                rows.sort_by_key(|&(_, y, _)| y);
                let to_sites = |v: i64| ((v as f64 / dbu) / site_w_um).round() as i32;
                let to_rows = |v: i64| ((v as f64 / dbu) / row_h_um).round() as i32;
                let base = rows.first().map(|&(_, y, _)| to_rows(y)).unwrap_or(0);
                let mut design_rows = Vec::with_capacity(rows.len());
                for (i, &(x, y, n)) in rows.iter().enumerate() {
                    if to_rows(y) - base != i as i32 {
                        return Err(ParseError::Semantic(
                            "DEF rows must be vertically contiguous".into(),
                        ));
                    }
                    design_rows.push(Row::new(to_sites(x), n));
                }
                let mut b = DesignBuilder::with_rows(design_rows);
                b.set_grid(grid);
                b.set_name(design_name.clone());
                for (name, rects) in pending_regions.drain(..) {
                    let to_sites = |v: i64| ((v as f64 / dbu) / site_w_um).round() as i32;
                    let to_rows = |v: i64| ((v as f64 / dbu) / row_h_um).round() as i32;
                    let rects: Vec<mrl_geom::SiteRect> = rects
                        .into_iter()
                        .map(|(x0, y0, x1, y1)| {
                            mrl_geom::SiteRect::new(
                                to_sites(x0),
                                to_rows(y0),
                                (to_sites(x1) - to_sites(x0)).max(0),
                                (to_rows(y1) - to_rows(y0)).max(0),
                            )
                        })
                        .collect();
                    let rid = b.add_region(name.clone(), rects);
                    region_ids.insert(name, rid);
                }
                builder = Some(b);
                in_components = true;
            }
            ["END", "COMPONENTS"] => in_components = false,
            ["REGIONS", ..] => in_regions = true,
            ["END", "REGIONS"] => in_regions = false,
            ["GROUPS", ..] => in_groups = true,
            ["END", "GROUPS"] => in_groups = false,
            ["NETS", ..] if builder.is_some() => in_nets = true,
            ["END", "NETS"] => in_nets = false,
            ["-", rest @ ..] if in_regions => {
                // `- name ( x y ) ( x y ) ... + TYPE FENCE`
                let [name, coords @ ..] = rest else {
                    return Err(ParseError::syntax(def_path, 0, "region needs a name"));
                };
                let nums: Vec<i64> = coords
                    .iter()
                    .take_while(|t| **t != "+")
                    .filter(|t| **t != "(" && **t != ")")
                    .map(|t| {
                        t.parse::<i64>()
                            .map_err(|_| ParseError::syntax(def_path, 0, "bad region coord"))
                    })
                    .collect::<Result<_, _>>()?;
                if !nums.len().is_multiple_of(4) || nums.is_empty() {
                    return Err(ParseError::syntax(
                        def_path,
                        0,
                        "region needs (x y)(x y) pairs",
                    ));
                }
                let rects = nums.chunks(4).map(|c| (c[0], c[1], c[2], c[3])).collect();
                pending_regions.push((name.to_string(), rects));
            }
            ["-", rest @ ..] if in_groups => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::Semantic("GROUPS before COMPONENTS".into()))?;
                // `- grp_name comp... + REGION region_name`
                let [_grp, rest @ ..] = rest else {
                    return Err(ParseError::syntax(def_path, 0, "group needs a name"));
                };
                let mut comps = Vec::new();
                let mut region_name = None;
                let mut it = rest.iter();
                while let Some(&tok) = it.next() {
                    if tok == "+" {
                        if it.next() == Some(&"REGION") {
                            region_name = it.next().map(|s| s.to_string());
                        }
                        break;
                    }
                    comps.push(tok.to_string());
                }
                let region_name = region_name
                    .ok_or_else(|| ParseError::Semantic("group without + REGION".into()))?;
                let &rid = region_ids.get(&region_name).ok_or_else(|| {
                    ParseError::Semantic(format!("group references unknown region {region_name}"))
                })?;
                for comp in comps {
                    let &cell = ids.get(&comp).ok_or_else(|| {
                        ParseError::Semantic(format!("group references unknown component {comp}"))
                    })?;
                    b.assign_region(cell, rid);
                }
            }
            ["-", rest @ ..] if in_components => {
                let b = builder.as_mut().expect("components after floorplan");
                parse_component(def_path, rest, &macros, grid, dbu, b, &mut ids)?;
                if let [name, mname, ..] = rest {
                    comp_macro.insert(name.to_string(), mname.to_string());
                }
            }
            ["-", rest @ ..] if in_nets => {
                let b = builder.as_mut().expect("nets after floorplan");
                parse_net(def_path, rest, b, &ids, grid, dbu, &comp_macro, &macro_pins)?;
            }
            _ => {}
        }
    }
    let builder =
        builder.ok_or_else(|| ParseError::Semantic("DEF contains no COMPONENTS section".into()))?;
    Ok(builder.finish()?)
}

fn parse_component(
    def_path: &Path,
    tokens: &[&str],
    macros: &HashMap<String, (f64, f64, bool)>,
    grid: SiteGrid,
    dbu: f64,
    b: &mut DesignBuilder,
    ids: &mut HashMap<String, CellId>,
) -> Result<(), ParseError> {
    let [name, mname, rest @ ..] = tokens else {
        return Err(ParseError::syntax(
            def_path,
            0,
            "component needs name and macro",
        ));
    };
    let &(w_um, h_um, is_block) = macros
        .get(*mname)
        .ok_or_else(|| ParseError::Semantic(format!("unknown macro {mname}")))?;
    let w = (w_um / grid.site_width_um()).round() as i32;
    let h = (h_um / grid.row_height_um()).round() as i32;
    // Find `+ PLACED|FIXED ( x y )`.
    let mut status = "UNPLACED";
    let mut pos: Option<(f64, f64)> = None;
    let mut iter = rest.iter().peekable();
    while let Some(&tok) = iter.next() {
        match tok {
            "PLACED" | "FIXED" => {
                status = if tok == "FIXED" { "FIXED" } else { "PLACED" };
                // Expect: ( x y ) ORIENT
                let open = iter.next();
                let x = iter.next();
                let y = iter.next();
                if open != Some(&"(") {
                    return Err(ParseError::syntax(def_path, 0, "expected ( after PLACED"));
                }
                let x: f64 = x
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::syntax(def_path, 0, "bad component x"))?;
                let y: f64 = y
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::syntax(def_path, 0, "bad component y"))?;
                pos = Some((
                    (x / dbu) / grid.site_width_um(),
                    (y / dbu) / grid.row_height_um(),
                ));
            }
            _ => {}
        }
    }
    let movable = !is_block && status != "FIXED";
    if movable {
        let id = b.add_cell(name.to_string(), w, h);
        if let Some((x, y)) = pos {
            b.set_input_position(id, x, y);
        }
        ids.insert(name.to_string(), id);
    } else {
        let (x, y) = pos.ok_or_else(|| {
            ParseError::Semantic(format!("fixed component {name} has no position"))
        })?;
        let id = b.add_fixed(
            name.to_string(),
            SiteRect::new(x.round() as i32, y.round() as i32, w, h),
        );
        ids.insert(name.to_string(), id);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn parse_net(
    def_path: &Path,
    tokens: &[&str],
    b: &mut DesignBuilder,
    ids: &HashMap<String, CellId>,
    grid: SiteGrid,
    dbu: f64,
    comp_macro: &HashMap<String, String>,
    macro_pins: &HashMap<String, HashMap<String, (f64, f64)>>,
) -> Result<(), ParseError> {
    let [name, rest @ ..] = tokens else {
        return Err(ParseError::syntax(def_path, 0, "net needs a name"));
    };
    let net = b.add_net(name.to_string());
    let mut iter = rest.iter();
    while let Some(&tok) = iter.next() {
        if tok != "(" {
            continue;
        }
        let comp = iter
            .next()
            .ok_or_else(|| ParseError::syntax(def_path, 0, "unterminated net pin"))?;
        let pin = iter
            .next()
            .ok_or_else(|| ParseError::syntax(def_path, 0, "net pin needs a pin name"))?;
        let close = iter.next();
        if close != Some(&")") {
            return Err(ParseError::syntax(def_path, 0, "expected ) after pin"));
        }
        let decode = |tag: &str, s: &str| -> Option<(f64, f64)> {
            let rest = s.strip_prefix(tag)?;
            let mut parts = rest.splitn(2, '_');
            let dx: i64 = parts.next()?.parse().ok()?;
            let dy: i64 = parts.next()?.parse().ok()?;
            Some((
                (dx as f64 / dbu) / grid.site_width_um(),
                (dy as f64 / dbu) / grid.row_height_um(),
            ))
        };
        if *comp == "PIN" {
            let (x, y) = decode("FIXED_", pin)
                .ok_or_else(|| ParseError::syntax(def_path, 0, "bad fixed pin encoding"))?;
            b.add_fixed_pin(net, x, y);
            continue;
        }
        let &cell = ids
            .get(*comp)
            .ok_or_else(|| ParseError::Semantic(format!("net pin on unknown component {comp}")))?;
        // Offset resolution: our compact dialect first, then real LEF pin
        // geometry (micron centers -> site units), else the cell origin.
        let (dx, dy) = decode("PIN_", pin)
            .or_else(|| {
                comp_macro
                    .get(*comp)
                    .and_then(|m| macro_pins.get(m))
                    .and_then(|pins| pins.get(*pin))
                    .map(|&(px, py)| (px / grid.site_width_um(), py / grid.row_height_um()))
            })
            .unwrap_or((0.0, 0.0));
        b.add_cell_pin(net, cell, dx, dy);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_synth::{generate, BenchmarkSpec, GeneratorConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mrl_lefdef_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_design() -> Design {
        let spec = BenchmarkSpec::new("ld_test", 60, 6, 0.4, 0.0);
        generate(&spec, &GeneratorConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let design = sample_design();
        let dir = tmpdir("rt");
        write(&design, &dir, "ld_test").unwrap();
        let back = read(&dir.join("ld_test.lef"), &dir.join("ld_test.def")).unwrap();
        assert_eq!(back.num_cells(), design.num_cells());
        assert_eq!(back.num_movable(), design.num_movable());
        assert_eq!(back.netlist().num_nets(), design.netlist().num_nets());
        assert_eq!(back.floorplan().num_rows(), design.floorplan().num_rows());
        assert_eq!(back.name(), design.name());
        for (a, b) in design.cells().iter().zip(back.cells()) {
            assert_eq!((a.width(), a.height()), (b.width(), b.height()));
            assert_eq!(a.is_movable(), b.is_movable());
        }
    }

    #[test]
    fn round_trip_preserves_positions_to_dbu_precision() {
        let design = sample_design();
        let dir = tmpdir("pos");
        write(&design, &dir, "ld_test").unwrap();
        let back = read(&dir.join("ld_test.lef"), &dir.join("ld_test.def")).unwrap();
        for c in design.movable_cells() {
            let (x0, y0) = design.input_position(c);
            let (x1, y1) = back.input_position(c);
            assert!((x0 - x1).abs() < 1e-2, "{x0} vs {x1}");
            assert!((y0 - y1).abs() < 1e-2, "{y0} vs {y1}");
        }
    }

    #[test]
    fn grid_recovered_from_lef_site() {
        let design = sample_design();
        let dir = tmpdir("grid");
        write(&design, &dir, "ld_test").unwrap();
        let back = read(&dir.join("ld_test.lef"), &dir.join("ld_test.def")).unwrap();
        assert!((back.grid().site_width_um() - design.grid().site_width_um()).abs() < 1e-9);
        assert!((back.grid().row_height_um() - design.grid().row_height_um()).abs() < 1e-9);
    }

    #[test]
    fn real_style_lef_with_pins_parses() {
        // A LEF in the contest style: nested PIN/PORT blocks inside MACRO,
        // and a DEF whose net pins use the LEF pin names.
        let dir = tmpdir("realpins");
        std::fs::write(
            dir.join("x.lef"),
            "VERSION 5.8 ;\nUNITS\n DATABASE MICRONS 1000 ;\nEND UNITS\n\
             SITE core\n SIZE 0.2 BY 1.6 ;\nEND core\n\
             MACRO INVX1\n CLASS CORE ;\n SIZE 0.4 BY 1.6 ;\n\
              PIN A\n  DIRECTION INPUT ;\n  PORT\n   LAYER M1 ;\n   RECT 0.05 0.2 0.15 0.4 ;\n  END\n END A\n\
              PIN Y\n  PORT\n   RECT 0.25 1.0 0.35 1.2 ;\n  END\n END Y\n\
             END INVX1\nEND LIBRARY\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("x.def"),
            "VERSION 5.8 ;\nDESIGN t ;\nUNITS DISTANCE MICRONS 1000 ;\n\
             ROW r0 core 0 0 N DO 50 BY 1 STEP 200 0 ;\nROW r1 core 0 1600 N DO 50 BY 1 STEP 200 0 ;\n\
             COMPONENTS 2 ;\n- u1 INVX1 + PLACED ( 0 0 ) N ;\n- u2 INVX1 + PLACED ( 2000 1600 ) N ;\nEND COMPONENTS\n\
             NETS 1 ;\n- n1 ( u1 Y ) ( u2 A ) ;\nEND NETS\nEND DESIGN\n",
        )
        .unwrap();
        let d = read(&dir.join("x.lef"), &dir.join("x.def")).unwrap();
        assert_eq!(d.num_movable(), 2);
        assert_eq!(d.netlist().num_nets(), 1);
        // Pin offsets resolved from the LEF geometry: Y center = (0.30,
        // 1.1) um = (1.5 sites, 0.6875 rows).
        let pin = d.netlist().pin(mrl_db::PinId::new(0));
        match pin.location {
            mrl_db::PinLocation::OnCell { dx, dy, .. } => {
                assert!((dx - 1.5).abs() < 1e-9, "dx {dx}");
                assert!((dy - 1.1 / 1.6).abs() < 1e-9, "dy {dy}");
            }
            other => panic!("unexpected pin {other:?}"),
        }
        // Input HPWL is finite and positive: both endpoints resolved.
        assert!(d.hpwl_um(|c| d.input_position(c)) > 0.0);
    }

    #[test]
    fn fence_regions_round_trip() {
        let spec = BenchmarkSpec::new("ld_fence", 120, 12, 0.4, 0.0);
        let cfg = GeneratorConfig::default().with_fence_regions(1);
        let design = generate(&spec, &cfg).unwrap();
        assert!(!design.regions().is_empty());
        let members: Vec<String> = design
            .movable_cells()
            .filter(|&c| design.region_of(c).is_some())
            .map(|c| design.cell(c).name().to_string())
            .collect();
        assert!(!members.is_empty());
        let dir = tmpdir("fence");
        write(&design, &dir, "ld_fence").unwrap();
        let back = read(&dir.join("ld_fence.lef"), &dir.join("ld_fence.def")).unwrap();
        assert_eq!(back.regions().len(), design.regions().len());
        for (a, b) in design.regions().iter().zip(back.regions()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.rects(), b.rects());
        }
        let back_members: Vec<String> = back
            .movable_cells()
            .filter(|&c| back.region_of(c).is_some())
            .map(|c| back.cell(c).name().to_string())
            .collect();
        assert_eq!(members, back_members);
    }

    #[test]
    fn missing_site_is_semantic_error() {
        let dir = tmpdir("nosite");
        std::fs::write(dir.join("x.lef"), "VERSION 5.8 ;\nEND LIBRARY\n").unwrap();
        std::fs::write(dir.join("x.def"), "VERSION 5.8 ;\n").unwrap();
        let err = read(&dir.join("x.lef"), &dir.join("x.def")).unwrap_err();
        assert!(matches!(err, ParseError::Semantic(_)));
    }

    #[test]
    fn unknown_macro_is_semantic_error() {
        let dir = tmpdir("nomacro");
        std::fs::write(
            dir.join("x.lef"),
            "SITE core\n SIZE 0.2 BY 1.6 ;\nEND core\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("x.def"),
            "DESIGN t ;\nUNITS DISTANCE MICRONS 1000 ;\nROW r core 0 0 N DO 10 BY 1 STEP 200 0 ;\nCOMPONENTS 1 ;\n- c1 GHOST + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n",
        )
        .unwrap();
        let err = read(&dir.join("x.lef"), &dir.join("x.def")).unwrap_err();
        assert!(matches!(err, ParseError::Semantic(_)));
    }
}
