//! The 20-entry benchmark suite mirroring Table 1 of the paper.

/// Observable statistics of one benchmark, matching a row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as printed in the paper.
    pub name: String,
    /// Number of single-row height movable cells (`#S. Cell`).
    pub single_cells: usize,
    /// Number of double-row height movable cells (`#D. Cell`).
    pub double_cells: usize,
    /// Design density (movable area / free placement area).
    pub density: f64,
    /// The paper's global-placement HPWL in meters (reference only; the
    /// synthetic clone reports its own input HPWL).
    pub paper_gp_hpwl_m: f64,
}

impl BenchmarkSpec {
    /// Creates a custom spec.
    pub fn new(
        name: impl Into<String>,
        single_cells: usize,
        double_cells: usize,
        density: f64,
        paper_gp_hpwl_m: f64,
    ) -> Self {
        Self {
            name: name.into(),
            single_cells,
            double_cells,
            density,
            paper_gp_hpwl_m,
        }
    }

    /// Total movable cells.
    pub fn total_cells(&self) -> usize {
        self.single_cells + self.double_cells
    }
}

/// The 20 benchmarks of Table 1 with the paper's cell counts, densities,
/// and GP HPWL.
pub fn ispd2015_suite() -> Vec<BenchmarkSpec> {
    let rows: [(&str, usize, usize, f64, f64); 20] = [
        ("des_perf_1", 103_842, 8_802, 0.91, 1.43),
        ("des_perf_a", 99_775, 8_513, 0.43, 2.57),
        ("des_perf_b", 103_842, 8_802, 0.50, 2.13),
        ("edit_dist_a", 121_913, 5_500, 0.46, 5.25),
        ("fft_1", 30_297, 1_984, 0.84, 0.46),
        ("fft_2", 30_297, 1_984, 0.50, 0.46),
        ("fft_a", 28_718, 1_907, 0.25, 0.75),
        ("fft_b", 28_718, 1_907, 0.28, 0.95),
        ("matrix_mult_1", 152_427, 2_898, 0.80, 2.39),
        ("matrix_mult_2", 152_427, 2_898, 0.79, 2.59),
        ("matrix_mult_a", 146_837, 2_813, 0.42, 3.77),
        ("matrix_mult_b", 143_695, 2_740, 0.31, 3.43),
        ("matrix_mult_c", 143_695, 2_740, 0.31, 3.29),
        ("pci_bridge32_a", 26_268, 3_249, 0.38, 0.46),
        ("pci_bridge32_b", 25_734, 3_180, 0.14, 0.98),
        ("superblue11_a", 861_314, 64_302, 0.43, 42.94),
        ("superblue12", 1_172_586, 114_362, 0.45, 39.23),
        ("superblue14", 564_769, 47_474, 0.56, 27.98),
        ("superblue16_a", 625_419, 55_031, 0.48, 31.35),
        ("superblue19", 478_109, 27_988, 0.52, 20.76),
    ];
    rows.iter()
        .map(|&(name, s, d, density, hpwl)| BenchmarkSpec::new(name, s, d, density, hpwl))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_entries() {
        let suite = ispd2015_suite();
        assert_eq!(suite.len(), 20);
        assert_eq!(suite[0].name, "des_perf_1");
        assert_eq!(suite[16].name, "superblue12");
    }

    #[test]
    fn counts_match_table1() {
        let suite = ispd2015_suite();
        let sb12 = suite.iter().find(|s| s.name == "superblue12").unwrap();
        assert_eq!(sb12.single_cells, 1_172_586);
        assert_eq!(sb12.double_cells, 114_362);
        assert_eq!(sb12.total_cells(), 1_286_948);
        assert!((sb12.density - 0.45).abs() < 1e-12);
    }

    #[test]
    fn double_cell_ratio_is_about_ten_percent() {
        // The paper converts ~10% of cells (sequential ones) to double
        // height; sanity-check the encoded table respects that order of
        // magnitude.
        for spec in ispd2015_suite() {
            let ratio = spec.double_cells as f64 / spec.total_cells() as f64;
            assert!(
                (0.01..0.15).contains(&ratio),
                "{}: ratio {ratio}",
                spec.name
            );
        }
    }

    #[test]
    fn densities_are_fractions() {
        for spec in ispd2015_suite() {
            assert!((0.0..1.0).contains(&spec.density), "{}", spec.name);
        }
    }
}
