//! Witness-mode generation: designs that are *known* to be legalizable.
//!
//! Cong et al. ("Locality and Utilization in Placement Suboptimality")
//! construct benchmark instances from a known optimal solution so that an
//! algorithm's output can be judged against ground truth instead of
//! anecdotes. This module applies the same trick to legalization: a design
//! is built by first *packing a fully legal placement* — integer sites,
//! overlap-free, rail-parity-respecting, macro-avoiding — and then
//! perturbing every cell's input position by a bounded random
//! displacement. The packed placement is kept as a **witness**: whatever a
//! legalizer does with the perturbed input, a legal placement within the
//! perturbation bound provably exists, so a legalization *failure* is
//! always a bug (or an explicit capacity lie), never an infeasible
//! instance.
//!
//! Everything is deterministic in the (mandatory, explicit) seed.

use mrl_db::{CellId, DbError, Design, DesignBuilder, PlacementState};
use mrl_geom::{PowerRail, SitePoint, SiteRect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs of the witness generator. There is **no `Default`**: every caller
/// must pass an explicit seed so runs are replayable by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct WitnessConfig {
    /// RNG seed; the design, the witness placement, and the perturbation
    /// are all deterministic in it.
    pub seed: u64,
    /// Number of movable cells.
    pub cells: usize,
    /// Fraction of cells that are double-row height.
    pub double_fraction: f64,
    /// Fraction of cells that are 3–4 row tall.
    pub tall_fraction: f64,
    /// Target row utilization of the packed placement (0 < u <= 1). Higher
    /// utilization leaves less slack for the legalizer.
    pub utilization: f64,
    /// Maximum |dx| of the input-position perturbation, in sites.
    pub max_shift_x: f64,
    /// Maximum |dy| of the input-position perturbation, in rows.
    pub max_shift_y: f64,
    /// Number of fixed macro blockages to carve out of the floorplan.
    pub macros: usize,
}

impl WitnessConfig {
    /// A small default-shaped configuration around an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            cells: 200,
            double_fraction: 0.15,
            tall_fraction: 0.0,
            utilization: 0.7,
            max_shift_x: 4.0,
            max_shift_y: 1.5,
            macros: 0,
        }
    }

    /// Returns `self` with the cell count replaced.
    pub fn with_cells(mut self, cells: usize) -> Self {
        self.cells = cells;
        self
    }

    /// Returns `self` with the packed utilization replaced.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < utilization <= 1.0`.
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization in (0, 1]"
        );
        self.utilization = utilization;
        self
    }

    /// Returns `self` with the perturbation bounds replaced.
    pub fn with_shift(mut self, max_shift_x: f64, max_shift_y: f64) -> Self {
        self.max_shift_x = max_shift_x;
        self.max_shift_y = max_shift_y;
        self
    }

    /// Returns `self` with the macro count replaced.
    pub fn with_macros(mut self, macros: usize) -> Self {
        self.macros = macros;
        self
    }
}

/// A design bundled with the legal placement it was grown from.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The design; its *input* positions are the perturbed ones.
    pub design: Design,
    /// The packed legal placement, one position per movable cell, indexed
    /// like `design.movable_cells()`.
    pub legal: Vec<(CellId, SitePoint)>,
    /// Max L∞ distance between any cell's input position and its witness
    /// position (after clamping); an optimal legalizer can achieve max
    /// displacement ≤ this bound.
    pub bound: f64,
}

impl Witness {
    /// Re-validates the witness placement against the design; a failure
    /// means the generator itself is broken.
    ///
    /// # Errors
    ///
    /// The underlying [`DbError`] of the first rejected placement.
    pub fn validate(&self) -> Result<(), DbError> {
        let mut state = PlacementState::new(&self.design);
        for &(cell, at) in &self.legal {
            state.place(&self.design, cell, at)?;
        }
        Ok(())
    }
}

/// Samples a cell width in sites (small cells dominate, as in standard
/// cell libraries).
fn sample_width<R: Rng>(rng: &mut R) -> i32 {
    match rng.gen_range(0..100) {
        0..=39 => 2,
        40..=69 => 3,
        70..=89 => 4,
        90..=96 => 6,
        _ => 8,
    }
}

/// Generates a design from a packed legal witness. See the module docs.
///
/// # Errors
///
/// Propagates [`DbError`] from design validation; cannot occur for sane
/// configurations because the floorplan is sized from the packing itself.
pub fn generate_witness(cfg: &WitnessConfig) -> Result<Witness, DbError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.cells.max(1);

    // Cell mix. Heights: 1 (default), 2 (double_fraction), 3-4
    // (tall_fraction). Rails are random; even-height cells only fit
    // every other row under the default VDD-base parity.
    let mut cells: Vec<(i32, i32, PowerRail)> = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let h = if u < cfg.double_fraction {
            2
        } else if u < cfg.double_fraction + cfg.tall_fraction {
            rng.gen_range(3..=4)
        } else {
            1
        };
        let w = sample_width(&mut rng);
        let rail = if rng.gen_bool(0.5) {
            PowerRail::Vdd
        } else {
            PowerRail::Vss
        };
        cells.push((w, h, rail));
    }

    // Floorplan sizing: a wide core (width ≈ 4× the row count, so rows are
    // long relative to the widest cells) with enough capacity for the
    // packing at the requested utilization. A square-in-sites core would be
    // only ~2 cells wide for small instances, which fragments free space so
    // badly that even provably feasible cases defeat local search.
    let area: i64 = cells
        .iter()
        .map(|&(w, h, _)| i64::from(w) * i64::from(h))
        .sum();
    let capacity = area as f64 / cfg.utilization.clamp(0.05, 1.0);
    // Tall cells need vertical headroom: with fewer than ~2·h rows the
    // rail parity constraint leaves a tall cell only one or two candidate
    // rows and local search degenerates into luck.
    let max_h = cells.iter().map(|&(_, h, _)| h).max().unwrap_or(1);
    let mut num_rows = ((capacity / 4.0).sqrt().ceil() as i32)
        .max(4)
        .max(2 * max_h + 2);
    if num_rows % 2 == 1 {
        num_rows += 1; // even row count keeps both parities available
    }
    let est_width = ((capacity / f64::from(num_rows)).ceil() as i32).max(8);

    // Macros first: non-overlapping rectangles whose spans the packer must
    // route around (they become blocked intervals per row).
    let mut macros: Vec<SiteRect> = Vec::new();
    let mut attempts = 0;
    while macros.len() < cfg.macros && attempts < 1_000 {
        attempts += 1;
        let w = rng.gen_range(2..=(est_width / 4).max(3));
        let h = rng.gen_range(1..=(num_rows / 4).max(2));
        let x = rng.gen_range(0..=(est_width - w).max(0));
        let y = rng.gen_range(0..=(num_rows - h).max(0));
        let rect = SiteRect::new(x, y, w, h);
        if macros.iter().any(|m| m.overlaps(&rect)) {
            continue;
        }
        macros.push(rect);
    }
    let mut blocked: Vec<Vec<(i32, i32)>> = vec![Vec::new(); num_rows as usize];
    for m in &macros {
        for r in m.y.max(0)..m.top().min(num_rows) {
            blocked[r as usize].push((m.x, m.right()));
        }
    }
    for spans in &mut blocked {
        spans.sort_unstable();
    }

    // Pack: tallest cells first (they are the most constrained), each onto
    // the rail-compatible row window with the lowest frontier; random gaps
    // spread the utilization slack through the rows instead of leaving one
    // empty right margin.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((cells[i].1, cells[i].0)));
    let parity = mrl_geom::RailParity::new(PowerRail::Vdd);
    let mut frontier: Vec<i32> = vec![0; num_rows as usize];
    let mut packed: Vec<SitePoint> = vec![SitePoint::new(0, 0); cells.len()];
    let slack = (1.0 / cfg.utilization.clamp(0.05, 1.0) - 1.0).max(0.0);
    for &i in &order {
        let (w, h, rail) = cells[i];
        let max_bottom = (num_rows - h).max(0);
        let mut best: Option<(i32, i32)> = None; // (x, row)
        for r in 0..=max_bottom {
            if !parity.cell_fits_row(rail, h, r) {
                continue;
            }
            let mut x = (r..r + h)
                .map(|rr| frontier[rr as usize])
                .max()
                .unwrap_or(0);
            // Skip macro spans intersecting [x, x+w) on any covered row.
            loop {
                let mut bumped = false;
                for rr in r..r + h {
                    for &(b0, b1) in &blocked[rr as usize] {
                        if x < b1 && x + w > b0 {
                            x = b1;
                            bumped = true;
                        }
                    }
                }
                if !bumped {
                    break;
                }
            }
            if best.is_none_or(|(bx, _)| x < bx) {
                best = Some((x, r));
            }
        }
        let (x, r) = best.expect("at least one rail-compatible row exists");
        packed[i] = SitePoint::new(x, r);
        // Random slack gap after the cell keeps average utilization at the
        // target without concentrating free space at the right edge.
        let gap = (f64::from(w) * slack * rng.gen::<f64>() * 2.0).round() as i32;
        for rr in r..r + h {
            frontier[rr as usize] = x + w + gap;
        }
    }

    // The packing defines the row width (plus one site of margin so the
    // widest row is not butted against the boundary).
    let row_width = frontier
        .iter()
        .copied()
        .max()
        .unwrap_or(est_width)
        .max(est_width)
        + 1;

    let mut b = DesignBuilder::new(num_rows, row_width);
    b.set_name(format!("witness_{:016x}", cfg.seed));
    for (k, m) in macros.iter().enumerate() {
        b.add_fixed(format!("macro_{k}"), *m);
    }
    let mut ids = Vec::with_capacity(cells.len());
    let mut bound = 0.0f64;
    for (i, &(w, h, rail)) in cells.iter().enumerate() {
        let id = b.add_cell_with_rail(format!("w_{i}"), w, h, rail);
        let p = packed[i];
        let dx = rng.gen_range(-cfg.max_shift_x..=cfg.max_shift_x);
        let dy = rng.gen_range(-cfg.max_shift_y..=cfg.max_shift_y);
        let fx = (f64::from(p.x) + dx).clamp(0.0, f64::from((row_width - w).max(0)));
        let fy = (f64::from(p.y) + dy).clamp(0.0, f64::from((num_rows - h).max(0)));
        b.set_input_position(id, fx, fy);
        bound = bound
            .max((fx - f64::from(p.x)).abs())
            .max((fy - f64::from(p.y)).abs());
        ids.push(id);
    }
    let design = b.finish()?;
    let legal: Vec<(CellId, SitePoint)> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, packed[i]))
        .collect();
    let witness = Witness {
        design,
        legal,
        bound,
    };
    debug_assert!(witness.validate().is_ok(), "witness placement is illegal");
    Ok(witness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_placement_is_legal() {
        for seed in 0..8 {
            let cfg = WitnessConfig::new(seed).with_cells(120);
            let w = generate_witness(&cfg).unwrap();
            w.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: witness illegal: {e}"));
        }
    }

    #[test]
    fn witness_with_macros_and_talls_is_legal() {
        let cfg = WitnessConfig {
            tall_fraction: 0.05,
            ..WitnessConfig::new(7)
        }
        .with_cells(150)
        .with_macros(3)
        .with_utilization(0.8);
        let w = generate_witness(&cfg).unwrap();
        w.validate().unwrap();
        assert!(!w.design.floorplan().blockages().is_empty());
        assert!(w
            .design
            .movable_cells()
            .any(|c| w.design.cell(c).height() >= 3));
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = WitnessConfig::new(99).with_cells(80);
        let a = generate_witness(&cfg).unwrap();
        let b = generate_witness(&cfg).unwrap();
        assert_eq!(a.legal, b.legal);
        assert_eq!(a.bound, b.bound);
        let pa: Vec<_> = a
            .design
            .movable_cells()
            .map(|c| a.design.input_position(c))
            .collect();
        let pb: Vec<_> = b
            .design
            .movable_cells()
            .map(|c| b.design.input_position(c))
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_witness(&WitnessConfig::new(1).with_cells(80)).unwrap();
        let b = generate_witness(&WitnessConfig::new(2).with_cells(80)).unwrap();
        let pa: Vec<_> = a
            .design
            .movable_cells()
            .map(|c| a.design.input_position(c))
            .collect();
        let pb: Vec<_> = b
            .design
            .movable_cells()
            .map(|c| b.design.input_position(c))
            .collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn bound_respects_configured_shift() {
        let cfg = WitnessConfig::new(3).with_cells(100).with_shift(2.0, 1.0);
        let w = generate_witness(&cfg).unwrap();
        assert!(w.bound <= 2.0 + 1e-9, "bound {}", w.bound);
        assert!(w.bound > 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization in (0, 1]")]
    fn utilization_out_of_range_panics() {
        let _ = WitnessConfig::new(0).with_utilization(1.5);
    }
}
