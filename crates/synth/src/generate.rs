//! The design generator: floorplan sizing, macro placement, cell sampling,
//! clustered netlist, and the synthetic global placement.

use crate::spec::BenchmarkSpec;
use mrl_db::{CellId, DbError, Design, DesignBuilder};
use mrl_geom::{PowerRail, SiteGrid, SiteRect};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Knobs of the synthetic generator.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; everything is deterministic in it.
    pub seed: u64,
    /// Divisor applied to the spec's cell counts (1.0 = full size). Scaled
    /// runs keep the spec's density.
    pub scale: f64,
    /// Fraction of chip area covered by fixed macros.
    pub macro_fraction: f64,
    /// Nets per movable cell.
    pub nets_per_cell: f64,
    /// Site/micron unit system.
    pub grid: SiteGrid,
    /// Number of fence regions to carve out (ISPD2015 designs carry such
    /// regions; 0 = none). Cells packed inside a fence become members, and
    /// a few members/outsiders are swapped so legalization has fence
    /// violations to repair.
    pub fence_regions: usize,
    /// Fraction of single-row cells converted to 3–4 row tall cells (the
    /// paper's "or even multiple-row height" direction; 0 = none).
    pub tall_cell_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            scale: 1.0,
            macro_fraction: 0.05,
            nets_per_cell: 1.1,
            grid: SiteGrid::ispd2015(),
            fence_regions: 0,
            tall_cell_fraction: 0.0,
        }
    }
}

impl GeneratorConfig {
    /// Returns `self` with the scale divisor replaced.
    ///
    /// # Panics
    ///
    /// Panics when `scale < 1.0`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0, "scale is a divisor >= 1");
        self.scale = scale;
        self
    }

    /// Returns `self` with the seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with the number of fence regions replaced.
    pub fn with_fence_regions(mut self, fence_regions: usize) -> Self {
        self.fence_regions = fence_regions;
        self
    }

    /// Returns `self` with the tall-cell fraction replaced.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn with_tall_cells(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        self.tall_cell_fraction = fraction;
        self
    }
}

/// Coarse spatial hash over already-accepted rectangles. Rejection
/// sampling of macros (and fences) needs an overlap test per candidate;
/// scanning the whole accepted list is quadratic in the number of macros,
/// which matters once million-cell floorplans carry thousands of them.
/// Every rectangle is stored in each bucket it covers, and a query checks
/// only the buckets the candidate covers — exact, because two overlapping
/// rectangles both cover the bucket containing any shared site.
struct RectGrid {
    bucket_w: i32,
    bucket_h: i32,
    map: HashMap<(i32, i32), Vec<SiteRect>>,
}

impl RectGrid {
    fn new(bucket_w: i32, bucket_h: i32) -> Self {
        Self {
            bucket_w: bucket_w.max(1),
            bucket_h: bucket_h.max(1),
            map: HashMap::new(),
        }
    }

    fn buckets_of(&self, r: &SiteRect) -> Vec<(i32, i32)> {
        let x0 = r.x.div_euclid(self.bucket_w);
        let x1 = (r.right() - 1).max(r.x).div_euclid(self.bucket_w);
        let y0 = r.y.div_euclid(self.bucket_h);
        let y1 = (r.top() - 1).max(r.y).div_euclid(self.bucket_h);
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for bx in x0..=x1 {
            for by in y0..=y1 {
                out.push((bx, by));
            }
        }
        out
    }

    fn overlaps_any(&self, r: &SiteRect) -> bool {
        self.buckets_of(r).into_iter().any(|b| {
            self.map
                .get(&b)
                .is_some_and(|v| v.iter().any(|m| m.overlaps(r)))
        })
    }

    fn insert(&mut self, r: SiteRect) {
        for b in self.buckets_of(&r) {
            self.map.entry(b).or_default().push(r);
        }
    }
}

/// Samples a single-row cell width (sites); the distribution loosely
/// follows standard-cell libraries: mostly small cells, a tail of wide
/// ones. All widths are even so the paper's double-height transform stays
/// on the site grid.
fn sample_single_width<R: Rng>(rng: &mut R) -> i32 {
    match rng.gen_range(0..100) {
        0..=29 => 2,
        30..=59 => 4,
        60..=79 => 6,
        80..=92 => 8,
        93..=97 => 10,
        _ => 14,
    }
}

/// Generates a design with the spec's statistics. See the
/// [crate-level example](crate).
///
/// # Errors
///
/// Propagates [`DbError`] from design validation; cannot occur for sane
/// configurations because the floorplan is sized from the requested
/// density.
pub fn generate(spec: &BenchmarkSpec, cfg: &GeneratorConfig) -> Result<Design, DbError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ hash_name(&spec.name));
    let n_single = ((spec.single_cells as f64 / cfg.scale).round() as usize).max(1);
    let n_double = ((spec.double_cells as f64 / cfg.scale).round() as usize).max(1);

    // Cell dimensions: doubles are halved-width, doubled-height singles —
    // the paper's sequential-cell transform.
    let mut dims: Vec<(i32, i32)> = Vec::with_capacity(n_single + n_double);
    for _ in 0..n_single {
        dims.push((sample_single_width(&mut rng), 1));
    }
    for _ in 0..n_double {
        let w = sample_single_width(&mut rng);
        dims.push((w / 2, 2));
    }
    // Optional 3-4 row tall cells (large hard IP / complex sequential
    // blocks), converted from singles.
    let n_tall = ((n_single as f64) * cfg.tall_cell_fraction).round() as usize;
    for dim in dims.iter_mut().take(n_tall) {
        let h = if rng.gen_bool(0.5) { 3 } else { 4 };
        *dim = (rng.gen_range(2..=4), h);
    }
    dims.shuffle(&mut rng);

    let movable_area: i64 = dims.iter().map(|&(w, h)| i64::from(w) * i64::from(h)).sum();
    // Free capacity required for the target density, inflated by the macro
    // fraction to get total chip sites; square chip in physical microns.
    let capacity = movable_area as f64 / spec.density;
    let total_sites = capacity / (1.0 - cfg.macro_fraction);
    let aspect = cfg.grid.aspect();
    let num_rows = ((total_sites / aspect).sqrt().ceil() as i32).max(4);
    let row_width = ((total_sites / f64::from(num_rows)).ceil() as i32).max(16);

    let mut b = DesignBuilder::new(num_rows, row_width);
    b.set_name(spec.name.clone());
    b.set_grid(cfg.grid);

    // Macros: random non-overlapping rectangles totalling ~macro_fraction
    // of the chip.
    let macro_budget = (f64::from(row_width) * f64::from(num_rows) * cfg.macro_fraction) as i64;
    let mut used: i64 = 0;
    let mut macros: Vec<SiteRect> = Vec::new();
    let mut macro_grid = RectGrid::new(128, 16);
    let mut attempts = 0;
    while used < macro_budget && attempts < 100_000 {
        attempts += 1;
        // Realistic macro footprints: tens of sites wide, a handful of
        // rows tall (SRAMs and hard IP), clamped for tiny floorplans.
        let w = rng.gen_range(8.min(row_width / 4).max(1)..=120.min(row_width / 4).max(2));
        let h = rng.gen_range(2.min(num_rows / 4).max(1)..=16.min(num_rows / 4).max(2));
        if w >= row_width || h >= num_rows {
            continue;
        }
        let x = rng.gen_range(0..=row_width - w);
        let y = rng.gen_range(0..=num_rows - h);
        let rect = SiteRect::new(x, y, w, h);
        if used + rect.area() > macro_budget || macro_grid.overlaps_any(&rect) {
            continue;
        }
        used += rect.area();
        macro_grid.insert(rect);
        macros.push(rect);
    }
    for (i, rect) in macros.iter().enumerate() {
        b.add_fixed(format!("macro_{i}"), *rect);
    }

    // Synthetic global placement: spread cells evenly at the target
    // density by packing them onto rows with proportional slack (a
    // converged GP distributes area well), then perturb with Gaussian
    // jitter and fractional offsets so the input is overlapping and
    // off-grid — the exact situation Section 2 of the paper assumes.
    let spread = spread_positions(&dims, &macros, num_rows, row_width, spec.density, &mut rng);
    let jitter_x = 0.8; // sites
    let jitter_y = 0.15; // rows
    let mut ids: Vec<CellId> = Vec::with_capacity(dims.len());
    let mut cell_pos: Vec<(f64, f64)> = Vec::with_capacity(dims.len());
    for (i, &(w, h)) in dims.iter().enumerate() {
        let rail = if rng.gen_bool(0.5) {
            PowerRail::Vdd
        } else {
            PowerRail::Vss
        };
        let name = if h > 1 {
            format!("ff_{i}")
        } else {
            format!("g_{i}")
        };
        let id = b.add_cell_with_rail(name, w, h, rail);
        let (px, py) = spread[i];
        let fx = (px + gauss(&mut rng) * jitter_x).clamp(0.0, f64::from((row_width - w).max(1)));
        let fy = (py + gauss(&mut rng) * jitter_y).clamp(0.0, f64::from((num_rows - h).max(1)));
        b.set_input_position(id, fx, fy);
        ids.push(id);
        cell_pos.push((fx, fy));
    }

    // Fence regions: rectangular carve-outs away from macros. Cells whose
    // GP position lies inside become members — except a small slice left
    // unassigned, and an equal number of outsiders drafted in, so the
    // legalizer has genuine fence violations to repair (as a real GP
    // leaves behind).
    if cfg.fence_regions > 0 {
        let mut fence_rects: Vec<SiteRect> = Vec::new();
        let mut attempts = 0;
        while fence_rects.len() < cfg.fence_regions && attempts < 10_000 {
            attempts += 1;
            let w = rng.gen_range((row_width / 8).max(8)..=(row_width / 4).max(9));
            let h = rng.gen_range((num_rows / 8).max(2)..=(num_rows / 4).max(3));
            if w >= row_width || h >= num_rows {
                continue;
            }
            let x = rng.gen_range(0..=row_width - w);
            let y = rng.gen_range(0..=num_rows - h);
            let rect = SiteRect::new(x, y, w, h);
            if fence_rects.iter().any(|r| r.overlaps(&rect)) || macro_grid.overlaps_any(&rect) {
                continue;
            }
            fence_rects.push(rect);
        }
        for (k, rect) in fence_rects.iter().enumerate() {
            let region = b.add_region(format!("fence_{k}"), vec![*rect]);
            let mut members = Vec::new();
            let mut outsiders = Vec::new();
            for (i, &(fx, fy)) in cell_pos.iter().enumerate() {
                let (w, h) = dims[i];
                let r = SiteRect::new(fx.round() as i32, fy.round() as i32, w, h);
                if rect.contains_rect(&r) {
                    members.push(i);
                } else if !rect.overlaps(&r) {
                    outsiders.push(i);
                }
            }
            let swaps = (members.len() / 50).max(1).min(outsiders.len());
            // Drop the first `swaps` members (they stay unassigned with a
            // GP position inside the fence)...
            for &i in members.iter().skip(swaps) {
                b.assign_region(ids[i], region);
            }
            // ...and draft the same number of random outsiders in.
            outsiders.shuffle(&mut rng);
            for &i in outsiders.iter().take(swaps.min(members.len())) {
                b.assign_region(ids[i], region);
            }
        }
    }

    // Clustered netlist: bucket cells on a coarse grid of their GP
    // positions; each net connects cells from one bucket neighborhood so
    // net spans are local, like a placed real netlist.
    let buckets_per_side = (((ids.len() as f64).sqrt() / 4.0).ceil() as i64).max(1);
    let bucket_of = |p: (f64, f64)| {
        let bx = ((p.0 / f64::from(row_width)) * buckets_per_side as f64) as i64;
        let by = ((p.1 / f64::from(num_rows)) * buckets_per_side as f64) as i64;
        (
            bx.clamp(0, buckets_per_side - 1),
            by.clamp(0, buckets_per_side - 1),
        )
    };
    let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, &p) in cell_pos.iter().enumerate() {
        buckets.entry(bucket_of(p)).or_default().push(i);
    }
    let num_nets = (ids.len() as f64 * cfg.nets_per_cell).round() as usize;
    for n in 0..num_nets {
        let degree = match rng.gen_range(0..100) {
            0..=54 => 2,
            55..=79 => 3,
            80..=92 => 4,
            _ => 5,
        };
        let seed_cell = rng.gen_range(0..ids.len());
        let (bx, by) = bucket_of(cell_pos[seed_cell]);
        let net = b.add_net(format!("n{n}"));
        let mut members = vec![seed_cell];
        let mut guard = 0;
        while members.len() < degree && guard < 20 {
            guard += 1;
            let nb = (
                (bx + rng.gen_range(-1..=1)).clamp(0, buckets_per_side - 1),
                (by + rng.gen_range(-1..=1)).clamp(0, buckets_per_side - 1),
            );
            if let Some(pool) = buckets.get(&nb) {
                let pick = pool[rng.gen_range(0..pool.len())];
                if !members.contains(&pick) {
                    members.push(pick);
                }
            }
        }
        for &m in &members {
            let (w, h) = dims[m];
            let dx = rng.gen_range(0.0..f64::from(w));
            let dy = rng.gen_range(0.0..f64::from(h));
            b.add_cell_pin(net, ids[m], dx, dy);
        }
    }

    b.finish()
}

/// Standard normal sample via the sum of twelve uniforms (Irwin–Hall);
/// accurate enough for placement jitter and dependency-free.
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// Packs cells onto rows left-to-right with slack proportional to the
/// target density, skipping macro footprints: an even area distribution
/// like a converged global placement. Returns one (x, y) per cell in site
/// units.
fn spread_positions<R: Rng>(
    dims: &[(i32, i32)],
    macros: &[SiteRect],
    num_rows: i32,
    row_width: i32,
    density: f64,
    rng: &mut R,
) -> Vec<(f64, f64)> {
    // Blocked x-spans per row, sorted.
    let mut blocked: Vec<Vec<(i32, i32)>> = vec![Vec::new(); num_rows as usize];
    for m in macros {
        for r in m.y.max(0)..m.top().min(num_rows) {
            blocked[r as usize].push((m.x, m.right()));
        }
    }
    for spans in &mut blocked {
        spans.sort_unstable();
    }
    // Process cells in shuffled order, cycling through rows so fill stays
    // balanced; each placement advances the row frontier by w / density.
    let mut order: Vec<usize> = (0..dims.len()).collect();
    order.shuffle(rng);
    let mut frontier: Vec<f64> = vec![0.0; num_rows as usize];
    let mut out = vec![(0.0, 0.0); dims.len()];
    let mut ptr: i32 = 0;
    for &i in &order {
        let (w, h) = dims[i];
        let max_bottom = (num_rows - h).max(0);
        // Least-loaded of k *globally sampled* rows keeps per-row fill
        // balanced even around wide macro bands (a cycling window can get
        // trapped on rows whose budget the macros already consumed; plain
        // round-robin overflows rows at high density).
        let k = 8.min(max_bottom + 1);
        let base = ptr.rem_euclid(max_bottom + 1);
        ptr = ptr.wrapping_add(1);
        let load = |r0: i32| {
            (r0..r0 + h)
                .map(|rr| frontier[rr as usize])
                .fold(0.0f64, f64::max)
        };
        let r = std::iter::once(base)
            .chain((1..k).map(|_| rng.gen_range(0..=max_bottom)))
            .min_by(|&a, &b| load(a).total_cmp(&load(b)))
            .expect("k >= 1");
        // Start at the worst frontier among the spanned rows, then skip
        // any macro spans.
        let mut x = (r..r + h)
            .map(|rr| frontier[rr as usize])
            .fold(0.0f64, f64::max);
        loop {
            let mut bumped = false;
            for rr in r..r + h {
                for &(bx0, bx1) in &blocked[rr as usize] {
                    if x < f64::from(bx1) && x + f64::from(w) > f64::from(bx0) {
                        x = f64::from(bx1);
                        bumped = true;
                    }
                }
            }
            if !bumped {
                break;
            }
        }
        let x = x.min(f64::from((row_width - w).max(0)));
        out[i] = (x, f64::from(r));
        // Slightly under-advance so rows statistically finish below their
        // right edge; otherwise the unluckiest rows overflow and the
        // clamped pile-up at the chip edge dominates tail displacement.
        let advance = f64::from(w) / density.max(0.05) * 0.97;
        for rr in r..r + h {
            frontier[rr as usize] = frontier[rr as usize].max(x + advance);
        }
    }
    out
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each benchmark gets an independent stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ispd2015_suite;

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec::new("unit_test", 400, 40, 0.5, 0.0)
    }

    #[test]
    fn respects_cell_counts_and_heights() {
        let d = generate(&small_spec(), &GeneratorConfig::default()).unwrap();
        let singles = d
            .movable_cells()
            .filter(|&c| d.cell(c).height() == 1)
            .count();
        let doubles = d
            .movable_cells()
            .filter(|&c| d.cell(c).height() == 2)
            .count();
        assert_eq!(singles, 400);
        assert_eq!(doubles, 40);
    }

    #[test]
    fn density_close_to_spec() {
        let spec = small_spec();
        let d = generate(&spec, &GeneratorConfig::default()).unwrap();
        assert!(
            (d.density() - spec.density).abs() < 0.08,
            "density {} vs spec {}",
            d.density(),
            spec.density
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = small_spec();
        let cfg = GeneratorConfig::default().with_seed(42);
        let d1 = generate(&spec, &cfg).unwrap();
        let d2 = generate(&spec, &cfg).unwrap();
        assert_eq!(d1.num_cells(), d2.num_cells());
        let a: Vec<_> = d1.movable_cells().map(|c| d1.input_position(c)).collect();
        let b: Vec<_> = d2.movable_cells().map(|c| d2.input_position(c)).collect();
        assert_eq!(a, b);
        assert_eq!(d1.netlist().num_nets(), d2.netlist().num_nets());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = small_spec();
        let d1 = generate(&spec, &GeneratorConfig::default().with_seed(1)).unwrap();
        let d2 = generate(&spec, &GeneratorConfig::default().with_seed(2)).unwrap();
        let a: Vec<_> = d1.movable_cells().map(|c| d1.input_position(c)).collect();
        let b: Vec<_> = d2.movable_cells().map(|c| d2.input_position(c)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn scale_divides_counts() {
        let suite = ispd2015_suite();
        let fft = suite.iter().find(|s| s.name == "fft_2").unwrap();
        let cfg = GeneratorConfig::default().with_scale(100.0);
        let d = generate(fft, &cfg).unwrap();
        let total = d.num_movable();
        assert!((300..=330).contains(&total), "total {total}");
    }

    #[test]
    fn contains_macros_and_blockages() {
        let d = generate(&small_spec(), &GeneratorConfig::default()).unwrap();
        assert!(!d.floorplan().blockages().is_empty());
        assert!(d.num_cells() > d.num_movable());
    }

    #[test]
    fn netlist_is_spatially_local() {
        let d = generate(&small_spec(), &GeneratorConfig::default()).unwrap();
        assert!(d.netlist().num_nets() > 400);
        // Net spans should be far below the chip width on average.
        let chip_w = f64::from(d.floorplan().bounds().w);
        let mut total_span = 0.0;
        let mut counted = 0;
        for i in 0..d.netlist().num_nets() {
            let net = mrl_db::NetId::from_usize(i);
            let hpwl = d.netlist().net_hpwl(net, |pin| match pin.location {
                mrl_db::PinLocation::OnCell { cell, dx, dy } => {
                    let (x, y) = d.input_position(cell);
                    (x + dx, y + dy)
                }
                mrl_db::PinLocation::Fixed { x, y } => (x, y),
            });
            total_span += hpwl;
            counted += 1;
        }
        let avg = total_span / counted as f64;
        assert!(avg < chip_w / 2.0, "avg net span {avg} vs chip {chip_w}");
    }

    #[test]
    fn gp_positions_are_off_grid_and_overlapping() {
        let d = generate(&small_spec(), &GeneratorConfig::default()).unwrap();
        let fractional = d
            .movable_cells()
            .filter(|&c| {
                let (x, y) = d.input_position(c);
                x.fract() != 0.0 || y.fract() != 0.0
            })
            .count();
        assert!(fractional > d.num_movable() / 2);
    }

    #[test]
    #[should_panic(expected = "scale is a divisor")]
    fn scale_below_one_panics() {
        let _ = GeneratorConfig::default().with_scale(0.5);
    }

    #[test]
    fn fence_regions_generated_with_members_and_violations() {
        let cfg = GeneratorConfig::default().with_fence_regions(2);
        let d = generate(&small_spec(), &cfg).unwrap();
        assert_eq!(d.regions().len(), 2);
        let members: Vec<_> = d
            .movable_cells()
            .filter(|&c| d.region_of(c).is_some())
            .collect();
        assert!(!members.is_empty(), "fences should have members");
        // At least one member's GP position violates its fence (the
        // drafted outsiders), so legalization has work to do.
        let violating = members.iter().any(|&c| {
            let (fx, fy) = d.input_position(c);
            let cell = d.cell(c);
            let r = mrl_geom::SiteRect::new(
                fx.round() as i32,
                fy.round() as i32,
                cell.width(),
                cell.height(),
            );
            !d.region(d.region_of(c).unwrap()).covers(&r)
        });
        assert!(violating, "expected drafted outsiders");
    }

    #[test]
    fn tall_cells_generated_on_request() {
        let cfg = GeneratorConfig::default().with_tall_cells(0.05);
        let d = generate(&small_spec(), &cfg).unwrap();
        let tall = d
            .movable_cells()
            .filter(|&c| d.cell(c).height() >= 3)
            .count();
        assert!((10..=30).contains(&tall), "tall cells: {tall}");
        // Density bookkeeping includes the tall cells.
        assert!((d.density() - 0.5).abs() < 0.08);
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn tall_fraction_out_of_range_panics() {
        let _ = GeneratorConfig::default().with_tall_cells(1.5);
    }
}
