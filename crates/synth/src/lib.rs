//! Synthetic benchmark generation for multi-row legalization experiments.
//!
//! The paper evaluates on the ISPD2015 detailed-routing-driven placement
//! contest benchmarks, modified so that sequential cells (or a random 10%
//! when sequential cells cannot be identified) are doubled in height and
//! halved in width. Those benchmark files are not redistributable, so this
//! crate generates designs with the **same observable statistics**: the
//! 20 suite entries carry the paper's exact single/double cell counts and
//! densities ([`ispd2015_suite`]), cells get realistic width
//! distributions, floorplans contain macro blockages, netlists are
//! spatially clustered, and the "global placement" input is a uniform
//! good-area-distribution with overlaps and off-grid coordinates — the
//! properties Section 2 of the paper assumes of a GP solution.
//!
//! Everything is deterministic in the seed.
//!
//! # Examples
//!
//! ```
//! use mrl_synth::{ispd2015_suite, GeneratorConfig, generate};
//!
//! let spec = &ispd2015_suite()[5]; // fft_2
//! let cfg = GeneratorConfig::default().with_scale(100.0); // 1/100 size
//! let design = generate(spec, &cfg)?;
//! assert!(design.num_movable() > 200);
//! # Ok::<(), mrl_db::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod spec;
mod transform;
pub mod witness;

pub use generate::{generate, GeneratorConfig};
pub use spec::{ispd2015_suite, BenchmarkSpec};
pub use transform::double_random_cells;
pub use witness::{generate_witness, Witness, WitnessConfig};
