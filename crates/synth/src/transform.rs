//! The paper's benchmark modification: doubling sequential cells' height
//! while halving their width.

use rand::seq::SliceRandom;
use rand::Rng;

/// Converts a `fraction` of the given `(width, height)` cells to
/// double-height, half-width variants, exactly as Section 6 of the paper
/// modifies the ISPD2015 benchmarks when sequential cells cannot be
/// identified. Only single-height cells of even width are eligible (halving
/// must keep an integral site width); the transform preserves each
/// converted cell's area.
///
/// Returns the indices of the converted cells.
pub fn double_random_cells<R: Rng>(
    cells: &mut [(i32, i32)],
    fraction: f64,
    rng: &mut R,
) -> Vec<usize> {
    let mut eligible: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, &(w, h))| h == 1 && w >= 2 && w % 2 == 0)
        .map(|(i, _)| i)
        .collect();
    eligible.shuffle(rng);
    let want = (cells.len() as f64 * fraction).round() as usize;
    let take = want.min(eligible.len());
    let chosen = &eligible[..take];
    for &i in chosen {
        let (w, h) = cells[i];
        debug_assert_eq!(h, 1);
        cells[i] = (w / 2, 2);
    }
    chosen.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_total_area() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cells: Vec<(i32, i32)> = (0..100).map(|i| (2 + 2 * (i % 3), 1)).collect();
        let before: i64 = cells
            .iter()
            .map(|&(w, h)| i64::from(w) * i64::from(h))
            .sum();
        let converted = double_random_cells(&mut cells, 0.1, &mut rng);
        let after: i64 = cells
            .iter()
            .map(|&(w, h)| i64::from(w) * i64::from(h))
            .sum();
        assert_eq!(before, after);
        assert_eq!(converted.len(), 10);
        for &i in &converted {
            assert_eq!(cells[i].1, 2);
        }
    }

    #[test]
    fn skips_odd_width_cells() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cells = vec![(3, 1); 50];
        let converted = double_random_cells(&mut cells, 0.5, &mut rng);
        assert!(converted.is_empty());
        assert!(cells.iter().all(|&c| c == (3, 1)));
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = vec![(4, 1); 40];
        let mut b = vec![(4, 1); 40];
        let ca = double_random_cells(&mut a, 0.25, &mut SmallRng::seed_from_u64(3));
        let cb = double_random_cells(&mut b, 0.25, &mut SmallRng::seed_from_u64(3));
        assert_eq!(ca, cb);
        assert_eq!(a, b);
    }

    #[test]
    fn fraction_of_total_not_of_eligible() {
        let mut rng = SmallRng::seed_from_u64(1);
        // 10 eligible + 10 ineligible; 10% of 20 = 2 conversions.
        let mut cells: Vec<(i32, i32)> = (0..20)
            .map(|i| if i < 10 { (4, 1) } else { (3, 1) })
            .collect();
        let converted = double_random_cells(&mut cells, 0.1, &mut rng);
        assert_eq!(converted.len(), 2);
    }
}
