//! Incremental ECO legalization: transactional edit batches over a live
//! legalized placement.
//!
//! The paper's algorithm legalizes a whole design at once; real flows then
//! iterate — gate sizing, buffer insertion, local replacement (the
//! *engineering change orders* of Section 1) perturb a handful of cells and
//! need the placement legal again without paying a full re-run. This crate
//! keeps a legalized [`mrl_db::PlacementState`] resident and applies
//! [`EditBatch`]es by unplacing only the affected cells and re-legalizing
//! them through the standard MLL → retry → escalation ladder, reusing the
//! CSR occupancy index and scratch arena across batches.
//!
//! Batches are transactional: the placement's first-touch journal plus a
//! design-level undo log give bit-exact rollback when a batch is rejected
//! (infeasible insert, failed re-legalization, blown induced-displacement
//! budget). The [`stream`] module defines the NDJSON wire format the
//! `mrl serve` CLI mode and the fuzz harness's eco regime both speak.
//!
//! ```
//! use mrl_db::PlacementState;
//! use mrl_eco::{EcoConfig, EcoSession, Edit, EditBatch};
//! use mrl_legalize::{Legalizer, LegalizerConfig};
//! use mrl_synth::{generate_witness, WitnessConfig};
//!
//! let witness = generate_witness(&WitnessConfig::new(9)).unwrap();
//! let design = witness.design;
//! let cfg = LegalizerConfig::default();
//! let mut state = PlacementState::new(&design);
//! Legalizer::new(cfg.clone()).legalize(&design, &mut state).unwrap();
//! let cell = design.movable_cells().next().unwrap();
//! let (x, y) = design.input_position(cell);
//!
//! let mut session = EcoSession::new(design, state, cfg, EcoConfig::default());
//! let stats = session
//!     .apply_batch(&EditBatch {
//!         id: 1,
//!         edits: vec![Edit::Move { cell, x: x + 2.0, y }],
//!     })
//!     .unwrap();
//! assert!(stats.applied);
//! ```

#![warn(missing_docs)]

mod session;
pub mod stream;
pub mod telemetry;

pub use session::{BatchStats, EcoConfig, EcoError, EcoSession, Edit, EditBatch};
pub use telemetry::ServeTelemetry;
