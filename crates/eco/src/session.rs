//! The incremental legalization session: edit batches over a live
//! legalized placement.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrl_db::{CellId, DbError, Design, PlacementState};
use mrl_geom::{PowerRail, SiteRect};
use mrl_legalize::{
    LegalizeStats, Legalizer, LegalizerConfig, NoopSink, ScratchArena, Sink, TraceBuf,
};

use crate::telemetry::{RejectReason, ServeTelemetry};

/// Microseconds elapsed since `t`, saturated into the histogram domain.
fn elapsed_us(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One atomic change to the design, in the paper's incremental-use terms
/// (Section 1: gate sizing, buffer insertion, local replacement).
#[derive(Clone, Debug, PartialEq)]
pub enum Edit {
    /// Re-target a movable cell to a new fractional-site position.
    Move {
        /// The cell to move.
        cell: CellId,
        /// New target x in fractional sites.
        x: f64,
        /// New target y in fractional rows.
        y: f64,
    },
    /// Change a movable cell's width (gate sizing), keeping it anchored
    /// near its current position.
    Resize {
        /// The cell to resize.
        cell: CellId,
        /// New width in sites.
        width: i32,
    },
    /// Add a new movable cell (buffer insertion). The cell is appended to
    /// the design's cell table; its id is `design.num_cells()` at the time
    /// the edit applies.
    Insert {
        /// Instance name of the new cell.
        name: String,
        /// Width in sites.
        width: i32,
        /// Height in rows.
        height: i32,
        /// Bottom-edge rail polarity.
        rail: PowerRail,
        /// Target x in fractional sites.
        x: f64,
        /// Target y in fractional rows.
        y: f64,
    },
    /// Remove a cell from the placement. The id stays allocated (a
    /// tombstone) so later edits keep stable ids; deleted cells reject
    /// further edits.
    Delete {
        /// The cell to delete.
        cell: CellId,
    },
}

impl Edit {
    /// The cell an edit names, if it targets an existing cell.
    pub fn cell(&self) -> Option<CellId> {
        match self {
            Edit::Move { cell, .. } | Edit::Resize { cell, .. } | Edit::Delete { cell } => {
                Some(*cell)
            }
            Edit::Insert { .. } => None,
        }
    }
}

/// A transactional group of edits: either every edit in the batch commits
/// and the placement is legal afterwards, or the whole batch rolls back
/// bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct EditBatch {
    /// Request id — also the trace lane the batch's spans land on.
    pub id: u64,
    /// The edits, applied in order.
    pub edits: Vec<Edit>,
}

/// Session-level knobs of the incremental engine.
#[derive(Clone, Debug)]
pub struct EcoConfig {
    /// Halo added around the union of old/new extents when reporting the
    /// disturbed window, in (sites, rows). Defaults to the paper's MLL
    /// window half-extents `(Rx, Ry)`.
    pub halo: (i32, i32),
    /// Budget on the total Manhattan displacement (sites + rows) a batch
    /// may inflict on cells it does not name. Over-budget batches roll
    /// back and report rejection. `None` = unlimited; `Some(0)` rejects
    /// any batch that moves a neighbor at all (the rollback property
    /// test's forcing knob).
    pub max_induced_disp: Option<i64>,
    /// Record per-batch trace spans on lane = request id (see
    /// [`EcoSession::trace`]). Off by default: serving hot paths skip the
    /// ring buffer entirely.
    pub trace: bool,
    /// Ring capacity per batch lane when tracing.
    pub trace_capacity: usize,
}

impl Default for EcoConfig {
    fn default() -> Self {
        Self {
            halo: (30, 5),
            max_induced_disp: None,
            trace: false,
            trace_capacity: 1 << 12,
        }
    }
}

impl EcoConfig {
    /// Returns `self` with the induced-displacement budget replaced.
    pub fn with_max_induced_disp(mut self, budget: Option<i64>) -> Self {
        self.max_induced_disp = budget;
        self
    }

    /// Returns `self` with per-batch tracing switched on or off.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// A malformed request or an internal database failure. Distinct from a
/// *rejected* batch: rejection (infeasible insert, blown displacement
/// budget) is a clean outcome — the batch rolls back and
/// [`BatchStats::applied`] is `false` — while an `EcoError` means the
/// request itself could not be processed.
#[derive(Debug)]
pub enum EcoError {
    /// The batch references a cell that does not exist, is deleted, is
    /// fixed, or carries nonsense parameters.
    InvalidEdit {
        /// The offending request id.
        request: u64,
        /// What was wrong.
        message: String,
    },
    /// An internal invariant failed (should not happen).
    Db(DbError),
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::InvalidEdit { request, message } => {
                write!(f, "request {request}: {message}")
            }
            EcoError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for EcoError {}

impl From<DbError> for EcoError {
    fn from(e: DbError) -> Self {
        EcoError::Db(e)
    }
}

/// Per-batch outcome and cost accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchStats {
    /// Echo of [`EditBatch::id`].
    pub request: u64,
    /// `true` = committed; `false` = rolled back (see `reject`).
    pub applied: bool,
    /// Number of edits in the batch.
    pub edits: usize,
    /// Cells sent through the re-legalization ladder.
    pub relegalized: usize,
    /// Cells whose position mutated at any point while the batch ran (the
    /// first-touch journal length) — the true disturbance footprint.
    pub touched: usize,
    /// Cells whose final position differs from their pre-batch position
    /// (0 after a rollback).
    pub moved: usize,
    /// Total Manhattan displacement (sites + rows) inflicted on cells the
    /// batch did not name.
    pub induced_disp: i64,
    /// Disturbed window: union of old/new extents of the edited cells
    /// plus the halo, clipped to the floorplan, as `(x, y, w, h)`.
    pub window: (i32, i32, i32, i32),
    /// MLL invocations while re-legalizing.
    pub mll_calls: usize,
    /// Retry rounds the ladder needed.
    pub retry_rounds: u32,
    /// Escalation-tier engagements.
    pub escalations: u64,
    /// Why the batch rolled back, when it did.
    pub reject: Option<String>,
    /// Wall time of the whole apply, including a rollback if one ran.
    pub wall: Duration,
}

/// A long-running incremental legalization engine: holds a legalized
/// [`PlacementState`] (plus its design) in memory and applies
/// [`EditBatch`]es by unplacing only the affected cells and re-legalizing
/// them through the standard MLL → retry → escalation ladder
/// ([`Legalizer::legalize_subset_in`]), reusing the CSR occupancy index
/// and one [`ScratchArena`] across batches with no full rebuild.
///
/// Each batch is transactional: the placement-level first-touch journal
/// ([`PlacementState::begin_txn`]) captures every cell the legalizer
/// decides to move, so a rejected batch — infeasible edit, failed
/// re-legalization, blown displacement budget — rolls back bit-exactly,
/// including design-level mutations (input positions, widths, appended
/// cells).
pub struct EcoSession {
    design: Design,
    state: PlacementState,
    legalizer: Legalizer,
    cfg: EcoConfig,
    arena: ScratchArena,
    trace: TraceBuf,
    deleted: Vec<bool>,
    deleted_count: usize,
    batches_applied: u64,
    batches_rejected: u64,
    telemetry: Arc<ServeTelemetry>,
}

impl EcoSession {
    /// Opens a session over an already-legalized placement. The state must
    /// be sized to the design; legality of the starting placement is the
    /// caller's contract (batches keep it, they cannot create it).
    pub fn new(
        design: Design,
        state: PlacementState,
        legalizer: LegalizerConfig,
        cfg: EcoConfig,
    ) -> Self {
        let deleted = vec![false; design.num_cells()];
        let trace_cap = cfg.trace_capacity;
        let telemetry = Arc::new(ServeTelemetry::new());
        let session = Self {
            design,
            state,
            legalizer: Legalizer::new(legalizer),
            cfg,
            arena: ScratchArena::new(),
            trace: TraceBuf::new(trace_cap),
            deleted,
            deleted_count: 0,
            batches_applied: 0,
            batches_rejected: 0,
            telemetry,
        };
        session.refresh_gauges(0);
        session
    }

    /// The session's always-on metric registry. Clone the `Arc` to hand it
    /// to an exporter thread; recording continues either way.
    pub fn telemetry(&self) -> &Arc<ServeTelemetry> {
        &self.telemetry
    }

    /// The live design, including any committed inserts/resizes.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The live placement.
    pub fn state(&self) -> &PlacementState {
        &self.state
    }

    /// The session configuration.
    pub fn config(&self) -> &EcoConfig {
        &self.cfg
    }

    /// Per-batch trace spans (lane = request id), populated when
    /// [`EcoConfig::trace`] is on.
    pub fn trace(&self) -> &TraceBuf {
        &self.trace
    }

    /// True if the cell was deleted by a committed batch.
    pub fn is_deleted(&self, cell: CellId) -> bool {
        self.deleted.get(cell.index()).copied().unwrap_or(false)
    }

    /// Number of tombstoned cells (O(1): maintained at commit).
    pub fn num_deleted(&self) -> usize {
        self.deleted_count
    }

    /// Batches committed so far.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// Batches rolled back so far.
    pub fn batches_rejected(&self) -> u64 {
        self.batches_rejected
    }

    /// Applies one batch under the session's displacement budget.
    ///
    /// # Errors
    ///
    /// [`EcoError::InvalidEdit`] for malformed requests (state unchanged);
    /// [`EcoError::Db`] only on internal invariant failure.
    pub fn apply_batch(&mut self, batch: &EditBatch) -> Result<BatchStats, EcoError> {
        self.apply_batch_with_budget(batch, self.cfg.max_induced_disp)
    }

    /// [`apply_batch`](EcoSession::apply_batch) with the induced-
    /// displacement budget overridden for this batch alone — the fuzz
    /// harness's forced-rejection probe uses `Some(0)`.
    ///
    /// # Errors
    ///
    /// Same as [`apply_batch`](EcoSession::apply_batch).
    pub fn apply_batch_with_budget(
        &mut self,
        batch: &EditBatch,
        budget: Option<i64>,
    ) -> Result<BatchStats, EcoError> {
        let result = if self.cfg.trace {
            let mut sink = self.trace.lane(batch.id as u32);
            let result = self.apply_inner(batch, budget, &mut sink);
            self.trace.absorb(sink);
            result
        } else {
            self.apply_inner(batch, budget, &mut NoopSink)
        };
        if let Err(e) = &result {
            self.telemetry.batches_error.inc();
            match e {
                EcoError::InvalidEdit { .. } => self.telemetry.errors_invalid_edit.inc(),
                EcoError::Db(_) => {
                    // An internal invariant failed; the session can no
                    // longer vouch for its state, so health flips too.
                    self.telemetry.errors_internal.inc();
                    self.telemetry.poison();
                }
            }
        }
        result
    }

    /// Pre-flight validation: walks the batch against a simulated cell
    /// table so no mutation happens for malformed requests.
    fn validate(&self, batch: &EditBatch) -> Result<(), EcoError> {
        let fail = |message: String| EcoError::InvalidEdit {
            request: batch.id,
            message,
        };
        let mut sim_cells = self.design.num_cells();
        let mut sim_deleted: HashSet<CellId> = HashSet::new();
        for edit in &batch.edits {
            if let Some(cell) = edit.cell() {
                if cell.index() >= sim_cells {
                    return Err(fail(format!("cell {cell} does not exist")));
                }
                if self.is_deleted(cell) || sim_deleted.contains(&cell) {
                    return Err(fail(format!("cell {cell} is deleted")));
                }
                if cell.index() < self.design.num_cells() && !self.design.cell(cell).is_movable() {
                    return Err(fail(format!("cell {cell} is fixed")));
                }
            }
            match edit {
                Edit::Resize { cell, width } if *width <= 0 => {
                    return Err(fail(format!("cell {cell}: width {width} must be positive")));
                }
                Edit::Insert {
                    name,
                    width,
                    height,
                    ..
                } => {
                    if *width <= 0 || *height <= 0 {
                        return Err(fail(format!(
                            "insert {name}: dimensions {width}x{height} must be positive"
                        )));
                    }
                    sim_cells += 1;
                }
                Edit::Delete { cell } => {
                    sim_deleted.insert(*cell);
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn apply_inner<S: Sink>(
        &mut self,
        batch: &EditBatch,
        budget: Option<i64>,
        sink: &mut S,
    ) -> Result<BatchStats, EcoError> {
        let wall = Instant::now();
        for edit in &batch.edits {
            match edit {
                Edit::Move { .. } => self.telemetry.edits_move.inc(),
                Edit::Resize { .. } => self.telemetry.edits_resize.inc(),
                Edit::Insert { .. } => self.telemetry.edits_insert.inc(),
                Edit::Delete { .. } => self.telemetry.edits_delete.inc(),
            }
        }
        let validated = self.validate(batch);
        self.telemetry.phase_validate.observe(elapsed_us(wall));
        validated?;

        // Phase 1: open the transaction and apply the structural edits,
        // unplacing only the cells the batch names. Design-level undo is
        // tracked here; placement-level undo lives in the journal.
        self.state.begin_txn();
        let base_cells = self.design.num_cells();
        let mut prev_inputs: Vec<(CellId, (f64, f64))> = Vec::new();
        let mut prev_widths: Vec<(CellId, i32)> = Vec::new();
        let mut pending_deletes: Vec<CellId> = Vec::new();
        let mut relegalize: Vec<CellId> = Vec::new();
        let mut edited: Vec<CellId> = Vec::new();
        let mut window = WindowAcc::new();
        let mut reject: Option<(RejectReason, String)> = None;

        for edit in &batch.edits {
            match edit {
                Edit::Move { cell, x, y } => {
                    let cell = *cell;
                    if self.state.is_placed(cell) {
                        let rect = self.state.rect_of(&self.design, cell).expect("placed");
                        window.add(&rect);
                        self.state.remove(&self.design, cell)?;
                    }
                    let c = self.design.cell(cell);
                    window.add_target(*x, *y, c.width(), c.height());
                    prev_inputs.push((cell, self.design.input_position(cell)));
                    self.design.set_input_position(cell, *x, *y);
                    relegalize.push(cell);
                    edited.push(cell);
                }
                Edit::Resize { cell, width } => {
                    let cell = *cell;
                    let anchor = if self.state.is_placed(cell) {
                        let rect = self.state.rect_of(&self.design, cell).expect("placed");
                        window.add(&rect);
                        let p = self.state.remove(&self.design, cell)?;
                        (f64::from(p.x), f64::from(p.y))
                    } else {
                        self.design.input_position(cell)
                    };
                    prev_inputs.push((cell, self.design.input_position(cell)));
                    self.design.set_input_position(cell, anchor.0, anchor.1);
                    let old_width = self.design.cell(cell).width();
                    match self.design.set_cell_width(cell, *width) {
                        Ok(()) => {
                            prev_widths.push((cell, old_width));
                            let h = self.design.cell(cell).height();
                            window.add_target(anchor.0, anchor.1, *width, h);
                            relegalize.push(cell);
                            edited.push(cell);
                        }
                        Err(e) => {
                            reject = Some((RejectReason::Resize, format!("resize rejected: {e}")));
                            break;
                        }
                    }
                }
                Edit::Insert {
                    name,
                    width,
                    height,
                    rail,
                    x,
                    y,
                } => {
                    match self
                        .design
                        .append_movable(name.clone(), *width, *height, *rail, (*x, *y))
                    {
                        Ok(id) => {
                            self.state.grow(&self.design);
                            window.add_target(*x, *y, *width, *height);
                            relegalize.push(id);
                            edited.push(id);
                        }
                        Err(e) => {
                            reject = Some((RejectReason::Insert, format!("insert rejected: {e}")));
                            break;
                        }
                    }
                }
                Edit::Delete { cell } => {
                    let cell = *cell;
                    if self.state.is_placed(cell) {
                        let rect = self.state.rect_of(&self.design, cell).expect("placed");
                        window.add(&rect);
                        self.state.remove(&self.design, cell)?;
                    }
                    pending_deletes.push(cell);
                    edited.push(cell);
                }
            }
        }

        // Phase 2: re-legalize the disturbed cells (deleted ones excluded)
        // through the standard ladder, reusing the session arena.
        let mut lstats = LegalizeStats::default();
        if reject.is_none() {
            let targets: Vec<CellId> = relegalize
                .iter()
                .copied()
                .filter(|c| !pending_deletes.contains(c))
                .collect();
            let legalize_t = Instant::now();
            let (s, result) = self.legalizer.legalize_subset_in(
                &self.design,
                &mut self.state,
                &targets,
                &mut self.arena,
                sink,
            );
            self.telemetry
                .phase_legalize
                .observe(elapsed_us(legalize_t));
            lstats = s;
            if let Err(e) = result {
                reject = Some((RejectReason::Legalize, format!("legalization failed: {e}")));
            }
        }

        // Phase 3: displacement accounting and the budget gate.
        let mut induced = 0i64;
        for &(cell, orig) in self.state.txn_log() {
            if edited.contains(&cell) {
                continue;
            }
            if let (Some(was), Some(now)) = (orig, self.state.position(cell)) {
                induced += i64::from((now.x - was.x).abs()) + i64::from((now.y - was.y).abs());
            }
        }
        if reject.is_none() {
            if let Some(max) = budget {
                if induced > max {
                    reject = Some((
                        RejectReason::Budget,
                        format!("induced displacement {induced} exceeds budget {max}"),
                    ));
                }
            }
        }

        // Phase 4: commit, or roll back bit-exactly.
        let relegalized = relegalize.len();
        // Journal depth before commit/rollback consumes the log: the
        // batch's true disturbance footprint, whichever way it resolves.
        let journal_depth = self.state.txn_log().len();
        let stats = if let Some((why, reason)) = reject {
            self.rollback(base_cells, &prev_inputs, &prev_widths)?;
            self.batches_rejected += 1;
            self.telemetry.batches_rejected.inc();
            self.telemetry.record_reject(why);
            BatchStats {
                request: batch.id,
                applied: false,
                edits: batch.edits.len(),
                relegalized,
                touched: 0,
                moved: 0,
                induced_disp: 0,
                window: window.with_halo_clipped(&self.design, self.cfg.halo),
                mll_calls: lstats.mll_calls,
                retry_rounds: lstats.retry_rounds,
                escalations: lstats.escalation.engaged,
                reject: Some(reason),
                wall: wall.elapsed(),
            }
        } else {
            let log = self.state.commit_txn();
            self.deleted.resize(self.design.num_cells(), false);
            for &cell in &pending_deletes {
                self.deleted[cell.index()] = true;
            }
            // Validation guarantees each pending delete is unique and not
            // already tombstoned, so the O(1) count stays exact.
            self.deleted_count += pending_deletes.len();
            let moved = log
                .iter()
                .filter(|&&(cell, orig)| self.state.position(cell) != orig)
                .count();
            self.batches_applied += 1;
            self.telemetry.batches_applied.inc();
            self.telemetry
                .induced_disp
                .observe(u64::try_from(induced).unwrap_or(0));
            BatchStats {
                request: batch.id,
                applied: true,
                edits: batch.edits.len(),
                relegalized,
                touched: log.len(),
                moved,
                induced_disp: induced,
                window: window.with_halo_clipped(&self.design, self.cfg.halo),
                mll_calls: lstats.mll_calls,
                retry_rounds: lstats.retry_rounds,
                escalations: lstats.escalation.engaged,
                reject: None,
                wall: wall.elapsed(),
            }
        };
        self.telemetry.escalations.observe(stats.escalations);
        self.telemetry
            .batch_latency
            .observe(u64::try_from(stats.wall.as_micros()).unwrap_or(u64::MAX));
        self.refresh_gauges(journal_depth);
        Ok(stats)
    }

    /// Publishes the session gauges after a batch resolves (and once at
    /// open). Cheap — a handful of relaxed stores — so it runs even when
    /// nothing is scraping.
    fn refresh_gauges(&self, journal_depth: usize) {
        let t = &self.telemetry;
        t.live_cells
            .set((self.design.num_cells() - self.deleted_count) as u64);
        t.tombstoned_cells.set(self.deleted_count as u64);
        t.index_bytes.set(self.state.index_bytes() as u64);
        t.index_slack_bytes
            .set(self.state.index_slack_bytes() as u64);
        t.journal_depth.set(journal_depth as u64);
        t.batches_since_start
            .set(self.batches_applied + self.batches_rejected);
    }

    /// Bit-exact rollback of a rejected batch: placement journal first
    /// (with resized cells lifted so footprints restore at their original
    /// widths), then the design-level mutations.
    fn rollback(
        &mut self,
        base_cells: usize,
        prev_inputs: &[(CellId, (f64, f64))],
        prev_widths: &[(CellId, i32)],
    ) -> Result<(), EcoError> {
        // Resized cells currently placed hold index footprints at the new
        // width; lift them before shrinking the width back so the index
        // stays consistent, and before the journal replays original spans.
        for &(cell, old_width) in prev_widths {
            if self.state.is_placed(cell) {
                self.state.remove(&self.design, cell)?;
            }
            self.design.set_cell_width(cell, old_width)?;
        }
        self.state.rollback_txn(&self.design)?;
        // Appended cells are unplaced after the journal rollback; retract
        // them from both tables.
        self.design.truncate_cells(base_cells)?;
        self.state.truncate(&self.design)?;
        // Input positions last, newest first, so a cell edited twice in
        // one batch lands back on its true pre-batch input.
        for &(cell, (x, y)) in prev_inputs.iter().rev() {
            self.design.set_input_position(cell, x, y);
        }
        Ok(())
    }
}

/// Accumulates the disturbed window as min/max site bounds.
struct WindowAcc {
    x0: i32,
    y0: i32,
    x1: i32,
    y1: i32,
    any: bool,
}

impl WindowAcc {
    fn new() -> Self {
        Self {
            x0: i32::MAX,
            y0: i32::MAX,
            x1: i32::MIN,
            y1: i32::MIN,
            any: false,
        }
    }

    fn add(&mut self, rect: &SiteRect) {
        self.x0 = self.x0.min(rect.x);
        self.y0 = self.y0.min(rect.y);
        self.x1 = self.x1.max(rect.right());
        self.y1 = self.y1.max(rect.top());
        self.any = true;
    }

    fn add_target(&mut self, x: f64, y: f64, w: i32, h: i32) {
        let rect = SiteRect::new(x.floor() as i32, y.floor() as i32, w.max(1), h.max(1));
        self.add(&rect);
    }

    /// The accumulated window grown by the halo and clipped to the
    /// floorplan, as `(x, y, w, h)`; all zero when the batch was empty.
    fn with_halo_clipped(&self, design: &Design, halo: (i32, i32)) -> (i32, i32, i32, i32) {
        if !self.any {
            return (0, 0, 0, 0);
        }
        let b = design.floorplan().bounds();
        let x0 = (self.x0 - halo.0).max(b.x);
        let y0 = (self.y0 - halo.1).max(b.y);
        let x1 = (self.x1 + halo.0).min(b.right());
        let y1 = (self.y1 + halo.1).min(b.top());
        (x0, y0, (x1 - x0).max(0), (y1 - y0).max(0))
    }
}
