//! NDJSON wire format for edit streams and per-batch responses.
//!
//! One request per line: `{"id":N,"edits":[...]}` with edit objects
//! `{"op":"move","cell":N,"x":F,"y":F}`, `{"op":"resize","cell":N,"w":W}`,
//! `{"op":"insert","name":"s","w":W,"h":H,"rail":"vdd"|"vss","x":F,"y":F}`,
//! `{"op":"delete","cell":N}`. Responses serialize [`BatchStats`] the same
//! way. Emission goes through [`Json::compact`] (single line, sorted keys)
//! so streams and responses are byte-stable — the corpus format test and
//! ddmin shrinking rely on that.

use crate::{BatchStats, Edit, EditBatch};
use mrl_bench::json::Json;
use mrl_db::CellId;
use mrl_geom::PowerRail;

/// Serializes one edit as a JSON object.
fn edit_to_json(edit: &Edit) -> Json {
    let mut j = Json::obj();
    match edit {
        Edit::Move { cell, x, y } => {
            j.set("op", "move")
                .set("cell", cell.index())
                .set("x", *x)
                .set("y", *y);
        }
        Edit::Resize { cell, width } => {
            j.set("op", "resize")
                .set("cell", cell.index())
                .set("w", *width);
        }
        Edit::Insert {
            name,
            width,
            height,
            rail,
            x,
            y,
        } => {
            j.set("op", "insert")
                .set("name", name.as_str())
                .set("w", *width)
                .set("h", *height)
                .set(
                    "rail",
                    match rail {
                        PowerRail::Vdd => "vdd",
                        PowerRail::Vss => "vss",
                    },
                )
                .set("x", *x)
                .set("y", *y);
        }
        Edit::Delete { cell } => {
            j.set("op", "delete").set("cell", cell.index());
        }
    }
    j
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    match j.get(key) {
        Some(Json::Str(s)) => Ok(s),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

fn get_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("field `{key}`: expected number"))
}

fn get_int(j: &Json, key: &str) -> Result<i64, String> {
    match j.get(key) {
        Some(Json::Int(n)) => Ok(*n),
        other => Err(format!("field `{key}`: expected integer, got {other:?}")),
    }
}

fn get_cell(j: &Json) -> Result<CellId, String> {
    let n = get_int(j, "cell")?;
    usize::try_from(n)
        .map(CellId::from_usize)
        .map_err(|_| format!("field `cell`: {n} is not a valid index"))
}

fn get_width(j: &Json, key: &str) -> Result<i32, String> {
    let n = get_int(j, key)?;
    i32::try_from(n).map_err(|_| format!("field `{key}`: {n} out of range"))
}

/// Parses one edit object.
fn edit_from_json(j: &Json) -> Result<Edit, String> {
    match get_str(j, "op")? {
        "move" => Ok(Edit::Move {
            cell: get_cell(j)?,
            x: get_f64(j, "x")?,
            y: get_f64(j, "y")?,
        }),
        "resize" => Ok(Edit::Resize {
            cell: get_cell(j)?,
            width: get_width(j, "w")?,
        }),
        "insert" => Ok(Edit::Insert {
            name: get_str(j, "name")?.to_string(),
            width: get_width(j, "w")?,
            height: get_width(j, "h")?,
            rail: match get_str(j, "rail")? {
                "vdd" => PowerRail::Vdd,
                "vss" => PowerRail::Vss,
                other => return Err(format!("field `rail`: unknown polarity `{other}`")),
            },
            x: get_f64(j, "x")?,
            y: get_f64(j, "y")?,
        }),
        "delete" => Ok(Edit::Delete { cell: get_cell(j)? }),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Serializes a batch as a JSON value (`{"id":N,"edits":[...]}`).
pub fn batch_to_json(batch: &EditBatch) -> Json {
    let mut j = Json::obj();
    j.set("id", batch.id).set(
        "edits",
        Json::Arr(batch.edits.iter().map(edit_to_json).collect()),
    );
    j
}

/// Serializes a batch as one compact NDJSON line (no trailing newline).
pub fn batch_to_line(batch: &EditBatch) -> String {
    batch_to_json(batch).compact()
}

/// Parses a batch from a JSON value.
///
/// # Errors
///
/// A human-readable message naming the malformed field.
pub fn batch_from_json(j: &Json) -> Result<EditBatch, String> {
    let id = get_int(j, "id")?;
    let id = u64::try_from(id).map_err(|_| format!("field `id`: {id} must be non-negative"))?;
    let edits = match j.get("edits") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(edit_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        other => return Err(format!("field `edits`: expected array, got {other:?}")),
    };
    Ok(EditBatch { id, edits })
}

/// Parses one NDJSON request line.
///
/// # Errors
///
/// JSON syntax errors or a malformed request shape.
pub fn parse_batch_line(line: &str) -> Result<EditBatch, String> {
    let j = Json::parse(line)?;
    batch_from_json(&j)
}

/// Serializes a whole stream as NDJSON (one batch per line, trailing
/// newline).
pub fn stream_to_ndjson(batches: &[EditBatch]) -> String {
    let mut out = String::new();
    for b in batches {
        out.push_str(&batch_to_line(b));
        out.push('\n');
    }
    out
}

/// Parses an NDJSON stream; blank lines and `#` comment lines are skipped.
///
/// # Errors
///
/// The first malformed line's error, prefixed with its 1-based line number.
pub fn parse_stream(text: &str) -> Result<Vec<EditBatch>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_batch_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Serializes per-batch stats as a JSON value. `with_timing` controls the
/// `wall_us` field: serving responses include it, byte-stability tests and
/// corpus fixtures leave it out.
pub fn stats_to_json(stats: &BatchStats, with_timing: bool) -> Json {
    let mut j = Json::obj();
    j.set("id", stats.request)
        .set("applied", stats.applied)
        .set("edits", stats.edits)
        .set("relegalized", stats.relegalized)
        .set("touched", stats.touched)
        .set("moved", stats.moved)
        .set("induced_disp", stats.induced_disp)
        .set(
            "window",
            Json::Arr(vec![
                Json::Int(i64::from(stats.window.0)),
                Json::Int(i64::from(stats.window.1)),
                Json::Int(i64::from(stats.window.2)),
                Json::Int(i64::from(stats.window.3)),
            ]),
        )
        .set("mll_calls", stats.mll_calls)
        .set("retry_rounds", stats.retry_rounds)
        .set("escalations", stats.escalations)
        .set(
            "reject",
            match &stats.reject {
                Some(r) => Json::Str(r.clone()),
                None => Json::Null,
            },
        );
    if with_timing {
        j.set(
            "wall_us",
            u64::try_from(stats.wall.as_micros()).unwrap_or(u64::MAX),
        );
    }
    j
}

/// Serializes per-batch stats as one compact NDJSON response line.
pub fn stats_to_line(stats: &BatchStats, with_timing: bool) -> String {
    stats_to_json(stats, with_timing).compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> EditBatch {
        EditBatch {
            id: 7,
            edits: vec![
                Edit::Move {
                    cell: CellId::from_usize(3),
                    x: 10.5,
                    y: 2.0,
                },
                Edit::Resize {
                    cell: CellId::from_usize(4),
                    width: 6,
                },
                Edit::Insert {
                    name: "buf_x".to_string(),
                    width: 2,
                    height: 2,
                    rail: PowerRail::Vss,
                    x: 1.0,
                    y: 1.0,
                },
                Edit::Delete {
                    cell: CellId::from_usize(5),
                },
            ],
        }
    }

    #[test]
    fn batch_round_trips_through_ndjson() {
        let batch = sample_batch();
        let line = batch_to_line(&batch);
        assert!(!line.contains('\n'));
        let back = parse_batch_line(&line).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn stream_round_trips_and_skips_comments() {
        let batches = vec![
            sample_batch(),
            EditBatch {
                id: 8,
                edits: vec![Edit::Delete {
                    cell: CellId::from_usize(0),
                }],
            },
        ];
        let text = format!("# scripted stream\n\n{}", stream_to_ndjson(&batches));
        assert_eq!(parse_stream(&text).unwrap(), batches);
    }

    #[test]
    fn emission_is_byte_stable() {
        let batch = EditBatch {
            id: 1,
            edits: vec![Edit::Move {
                cell: CellId::from_usize(2),
                x: 4.5,
                y: 1.0,
            }],
        };
        assert_eq!(
            batch_to_line(&batch),
            r#"{"edits":[{"cell":2,"op":"move","x":4.5,"y":1}],"id":1}"#
        );
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = parse_stream("{\"id\":0,\"edits\":[]}\n{\"id\":-1,\"edits\":[]}").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_batch_line(r#"{"id":0,"edits":[{"op":"warp"}]}"#).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        let err = parse_batch_line(r#"{"id":0,"edits":[{"op":"move","cell":1}]}"#).unwrap_err();
        assert!(err.contains("`x`"), "{err}");
    }

    #[test]
    fn stats_line_is_stable_without_timing() {
        let stats = BatchStats {
            request: 3,
            applied: true,
            edits: 2,
            relegalized: 2,
            touched: 5,
            moved: 4,
            induced_disp: 7,
            window: (0, 0, 40, 6),
            mll_calls: 1,
            retry_rounds: 0,
            escalations: 0,
            reject: None,
            wall: std::time::Duration::from_micros(1234),
        };
        let line = stats_to_line(&stats, false);
        assert!(!line.contains("wall_us"));
        assert_eq!(
            line,
            "{\"applied\":true,\"edits\":2,\"escalations\":0,\"id\":3,\
             \"induced_disp\":7,\"mll_calls\":1,\"moved\":4,\"reject\":null,\
             \"relegalized\":2,\"retry_rounds\":0,\"touched\":5,\"window\":[0,0,40,6]}"
        );
        assert!(stats_to_line(&stats, true).contains("\"wall_us\":1234"));
    }
}
