//! Live serving telemetry: the static metric registry of an
//! [`EcoSession`](crate::EcoSession) plus its consumers.
//!
//! Every session owns one [`ServeTelemetry`] from birth — telemetry is
//! always on. Recording is a few relaxed atomics per batch (see
//! `mrl-telemetry`), and crucially it is **observation-only**: nothing
//! here feeds back into a placement decision, so the eco fuzz regime's
//! bit-identity and rollback oracles hold with instrumentation enabled.
//!
//! Three read paths share the one registry:
//!
//! * Prometheus text exposition + `/healthz` over HTTP
//!   (`mrl serve --metrics-addr`, via [`mrl_telemetry::spawn_exporter`]);
//! * periodic flat NDJSON stats lines on stderr
//!   (`mrl serve --stats-every N`, via [`ServeTelemetry::stats_line`]);
//! * a final mrl-metrics-v1 summary merge
//!   ([`ServeTelemetry::to_metrics_summary`]) so `mrl report` and
//!   `bench_serve` render serve histograms with the same machinery as
//!   legalization runs.

use std::sync::Arc;
use std::time::Instant;

use mrl_bench::json::Json;
use mrl_telemetry::{expo, AtomicHist, Collect, Counter, Gauge, Registry};
use mrl_trace::MetricsSummary;

/// Why a batch rolled back, as a bounded label set (the free-form message
/// stays on the wire response; the counter needs a stable cardinality).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RejectReason {
    /// `Edit::Resize` parameters the design rejected.
    Resize,
    /// `Edit::Insert` parameters the design rejected.
    Insert,
    /// Re-legalization of the disturbed window failed.
    Legalize,
    /// Induced displacement exceeded the batch budget.
    Budget,
}

/// The always-on metric set of one serving session.
pub struct ServeTelemetry {
    registry: Registry,
    start: Instant,

    // Outcome counters.
    pub(crate) batches_applied: Arc<Counter>,
    pub(crate) batches_rejected: Arc<Counter>,
    pub(crate) batches_error: Arc<Counter>,
    pub(crate) rejects_resize: Arc<Counter>,
    pub(crate) rejects_insert: Arc<Counter>,
    pub(crate) rejects_legalize: Arc<Counter>,
    pub(crate) rejects_budget: Arc<Counter>,
    /// Malformed NDJSON lines (incremented by the serve front-end).
    pub errors_parse: Arc<Counter>,
    pub(crate) errors_invalid_edit: Arc<Counter>,
    pub(crate) errors_internal: Arc<Counter>,
    pub(crate) edits_move: Arc<Counter>,
    pub(crate) edits_resize: Arc<Counter>,
    pub(crate) edits_insert: Arc<Counter>,
    pub(crate) edits_delete: Arc<Counter>,

    // Latency funnel.
    /// Time blocked reading a request line (includes client think time;
    /// recorded by the serve front-end).
    pub phase_read: Arc<AtomicHist>,
    /// NDJSON parse time per request line (recorded by the front-end).
    pub phase_parse: Arc<AtomicHist>,
    pub(crate) phase_validate: Arc<AtomicHist>,
    pub(crate) phase_legalize: Arc<AtomicHist>,
    /// Response serialization + write time (recorded by the front-end).
    pub phase_respond: Arc<AtomicHist>,
    pub(crate) batch_latency: Arc<AtomicHist>,
    pub(crate) induced_disp: Arc<AtomicHist>,
    pub(crate) escalations: Arc<AtomicHist>,

    // Session gauges.
    pub(crate) live_cells: Arc<Gauge>,
    pub(crate) tombstoned_cells: Arc<Gauge>,
    pub(crate) index_bytes: Arc<Gauge>,
    pub(crate) index_slack_bytes: Arc<Gauge>,
    pub(crate) journal_depth: Arc<Gauge>,
    pub(crate) batches_since_start: Arc<Gauge>,
    healthy: Arc<Gauge>,
}

impl ServeTelemetry {
    /// Builds the registry with every serve metric registered.
    pub fn new() -> Self {
        let mut r = Registry::new();
        let start = Instant::now();
        let batches = "mrl_serve_batches_total";
        let batches_help = "Edit batches by outcome.";
        let rejects = "mrl_serve_rejects_total";
        let rejects_help = "Rolled-back batches by reason.";
        let errors = "mrl_serve_errors_total";
        let errors_help = "Requests that could not be processed, by reason.";
        let edits = "mrl_serve_edits_total";
        let edits_help = "Individual edits received, by op.";
        let phase = "mrl_serve_phase_latency_us";
        let phase_help = "Per-batch phase latency in microseconds.";
        let t = ServeTelemetry {
            batches_applied: r.counter_with(batches, batches_help, &[("outcome", "applied")]),
            batches_rejected: r.counter_with(batches, batches_help, &[("outcome", "rejected")]),
            batches_error: r.counter_with(batches, batches_help, &[("outcome", "error")]),
            rejects_resize: r.counter_with(rejects, rejects_help, &[("reason", "resize")]),
            rejects_insert: r.counter_with(rejects, rejects_help, &[("reason", "insert")]),
            rejects_legalize: r.counter_with(rejects, rejects_help, &[("reason", "legalize")]),
            rejects_budget: r.counter_with(rejects, rejects_help, &[("reason", "budget")]),
            errors_parse: r.counter_with(errors, errors_help, &[("reason", "parse")]),
            errors_invalid_edit: r.counter_with(errors, errors_help, &[("reason", "invalid_edit")]),
            errors_internal: r.counter_with(errors, errors_help, &[("reason", "internal")]),
            edits_move: r.counter_with(edits, edits_help, &[("op", "move")]),
            edits_resize: r.counter_with(edits, edits_help, &[("op", "resize")]),
            edits_insert: r.counter_with(edits, edits_help, &[("op", "insert")]),
            edits_delete: r.counter_with(edits, edits_help, &[("op", "delete")]),
            phase_read: r.hist_with(phase, phase_help, &[("phase", "read")]),
            phase_parse: r.hist_with(phase, phase_help, &[("phase", "parse")]),
            phase_validate: r.hist_with(phase, phase_help, &[("phase", "validate")]),
            phase_legalize: r.hist_with(phase, phase_help, &[("phase", "legalize")]),
            phase_respond: r.hist_with(phase, phase_help, &[("phase", "respond")]),
            batch_latency: r.hist(
                "mrl_serve_batch_latency_us",
                "End-to-end apply latency per batch in microseconds.",
            ),
            induced_disp: r.hist(
                "mrl_serve_induced_disp_sites",
                "Manhattan displacement inflicted on unnamed cells per applied batch.",
            ),
            escalations: r.hist(
                "mrl_serve_escalations_per_batch",
                "Escalation-tier engagements per batch.",
            ),
            live_cells: r.gauge("mrl_session_live_cells", "Cells alive (not tombstoned)."),
            tombstoned_cells: r.gauge(
                "mrl_session_tombstoned_cells",
                "Deleted (tombstoned) cells.",
            ),
            index_bytes: r.gauge(
                "mrl_session_index_bytes",
                "Bytes held by the CSR occupancy-index arenas.",
            ),
            index_slack_bytes: r.gauge(
                "mrl_session_index_slack_bytes",
                "Index arena bytes not occupied by live entries (compaction debt).",
            ),
            journal_depth: r.gauge(
                "mrl_session_journal_depth",
                "First-touch journal length of the last batch (its disturbance footprint).",
            ),
            batches_since_start: r.gauge(
                "mrl_session_batches_since_start",
                "Batches processed (applied + rejected) since session start.",
            ),
            healthy: r.gauge(
                "mrl_serve_healthy",
                "1 while the session is serviceable; 0 after poisoning or an internal error.",
            ),
            registry: Registry::new(),
            start,
        };
        r.gauge_fn(
            "mrl_serve_uptime_seconds",
            "Seconds since the session opened.",
            Arc::new(move || start.elapsed().as_secs_f64()),
        );
        t.healthy.set(1);
        ServeTelemetry { registry: r, ..t }
    }

    pub(crate) fn record_reject(&self, reason: RejectReason) {
        match reason {
            RejectReason::Resize => self.rejects_resize.inc(),
            RejectReason::Insert => self.rejects_insert.inc(),
            RejectReason::Legalize => self.rejects_legalize.inc(),
            RejectReason::Budget => self.rejects_budget.inc(),
        }
    }

    /// Marks the session unserviceable; `/healthz` answers 503 from now
    /// on. Flipped automatically on internal errors, and manually by the
    /// serve front-end's `#poison` directive (drain hook).
    pub fn poison(&self) {
        self.healthy.set(0);
    }

    /// Seconds since the session opened.
    pub fn uptime(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The registry, for custom consumers.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One flat NDJSON stats object (sorted keys, byte-stable for equal
    /// values) for `--stats-every` lines and the shutdown summary.
    /// `event` distinguishes periodic (`"stats"`) from final
    /// (`"shutdown"`) lines in a log pipeline.
    pub fn stats_json(&self, event: &str) -> Json {
        let lat = self.batch_latency.snapshot();
        let mut j = Json::obj();
        j.set("event", event)
            .set("applied", self.batches_applied.get())
            .set("rejected", self.batches_rejected.get())
            .set("errors", self.batches_error.get())
            .set("errors_parse", self.errors_parse.get())
            .set(
                "batches",
                self.batches_applied.get() + self.batches_rejected.get(),
            )
            .set("batch_p50_us", lat.quantile_upper(0.50))
            .set("batch_p90_us", lat.quantile_upper(0.90))
            .set("batch_p99_us", lat.quantile_upper(0.99))
            .set("live_cells", self.live_cells.get())
            .set("tombstoned_cells", self.tombstoned_cells.get())
            .set("index_bytes", self.index_bytes.get())
            .set("index_slack_bytes", self.index_slack_bytes.get())
            .set("journal_depth", self.journal_depth.get())
            .set("healthy", self.healthy.get() == 1)
            .set("uptime_s", (self.uptime() * 1e3).round() / 1e3);
        j
    }

    /// [`stats_json`](ServeTelemetry::stats_json) as one compact NDJSON
    /// line (no trailing newline).
    pub fn stats_line(&self, event: &str) -> String {
        self.stats_json(event).compact()
    }

    /// Folds the live histograms into an mrl-metrics-v1 summary: induced
    /// displacement lands in the standard `displacement_sites` slot, the
    /// serve-specific series ride in the extras section. `mrl report`
    /// renders the result exactly like a legalization run's metrics.
    pub fn to_metrics_summary(&self, design: &str) -> MetricsSummary {
        MetricsSummary {
            design: design.to_string(),
            threads: 1,
            wall: self.start.elapsed(),
            hist_displacement: self.induced_disp.snapshot(),
            extras: vec![
                (
                    "serve_batch_latency_us".into(),
                    self.batch_latency.snapshot(),
                ),
                ("serve_phase_read_us".into(), self.phase_read.snapshot()),
                ("serve_phase_parse_us".into(), self.phase_parse.snapshot()),
                (
                    "serve_phase_validate_us".into(),
                    self.phase_validate.snapshot(),
                ),
                (
                    "serve_phase_legalize_us".into(),
                    self.phase_legalize.snapshot(),
                ),
                (
                    "serve_phase_respond_us".into(),
                    self.phase_respond.snapshot(),
                ),
                (
                    "serve_escalations_per_batch".into(),
                    self.escalations.snapshot(),
                ),
            ],
            ..MetricsSummary::default()
        }
    }
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Collect for ServeTelemetry {
    fn metrics_text(&self) -> String {
        expo::render(&self.registry)
    }

    fn healthy(&self) -> bool {
        self.healthy.get() == 1
    }
}
