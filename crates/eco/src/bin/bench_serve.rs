//! ECO serving benchmark: incremental vs full re-legalization wall time,
//! request throughput, and per-batch latency percentiles across batch
//! sizes. Writes `BENCH_serve.json` for the CI gate.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use mrl_bench::json::Json;
use mrl_db::{CellId, Design, PlacementState};
use mrl_eco::{EcoConfig, EcoSession, Edit, EditBatch};
use mrl_legalize::{Legalizer, LegalizerConfig};
use mrl_synth::{generate_witness, WitnessConfig};
use mrl_trace::Hist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const USAGE: &str = "\
bench_serve: benchmark the incremental ECO engine against full re-legalization

USAGE:
    bench_serve [OPTIONS]

OPTIONS:
    --cells N        witness size in movable cells (default 64000)
    --batches N      edit batches per batch-size sweep point (default 200)
    --seed N         witness + stream RNG seed (default 42)
    --json FILE      write the results as JSON to FILE
    --gate RATIO     exit nonzero unless incremental is at least RATIO x
                     faster than full re-legalization at batch size <= 16
    -h, --help       print this help
";

struct Args {
    cells: usize,
    batches: usize,
    seed: u64,
    json: Option<String>,
    gate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cells: 64_000,
        batches: 200,
        seed: 42,
        json: None,
        gate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cells" => {
                args.cells = take("--cells")?
                    .parse()
                    .map_err(|e| format!("--cells: {e}"))?
            }
            "--batches" => {
                args.batches = take("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?;
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => args.json = Some(take("--json")?),
            "--gate" => {
                args.gate = Some(
                    take("--gate")?
                        .parse()
                        .map_err(|e| format!("--gate: {e}"))?,
                )
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// A random small edit over the base movable cells: mostly local moves,
/// some resizes, the serving mix the paper motivates (Section 1's
/// incremental use).
fn random_edit(design: &Design, rng: &mut SmallRng, movables: &[CellId]) -> Edit {
    let cell = movables[rng.gen_range(0..movables.len())];
    let (x, y) = design.input_position(cell);
    if rng.gen_range(0..10) < 8 {
        let bounds = design.floorplan().bounds();
        let dx: f64 = rng.gen_range(-20.0..20.0);
        let dy: f64 = rng.gen_range(-3.0..3.0);
        Edit::Move {
            cell,
            x: (x + dx).clamp(f64::from(bounds.x), f64::from(bounds.right() - 1)),
            y: (y + dy).clamp(f64::from(bounds.y), f64::from(bounds.top() - 1)),
        }
    } else {
        let w = design.cell(cell).width();
        let new_w = if rng.gen_range(0..2) == 0 {
            w + 1
        } else {
            (w - 1).max(1)
        };
        Edit::Resize { cell, width: new_w }
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct SweepPoint {
    batch_size: usize,
    batches: usize,
    applied: u64,
    rejected: u64,
    wall_s: f64,
    req_per_s: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    /// The session telemetry's log2 batch-latency histogram, in the same
    /// bucket encoding mrl-metrics-v1 uses.
    latency_hist: Hist,
}

/// Renders a histogram in the mrl-metrics-v1 encoding:
/// `{"count":N,"sum":N,"buckets":[...]}` with log2 bucket edges.
fn hist_json(h: &Hist) -> Json {
    let mut j = Json::obj();
    j.set("count", h.count).set("sum", h.sum).set(
        "buckets",
        Json::Arr(h.buckets.iter().map(|&b| Json::from(b)).collect()),
    );
    j
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "generating {}-cell witness (seed {})...",
        args.cells, args.seed
    );
    let witness = generate_witness(
        &WitnessConfig::new(args.seed)
            .with_cells(args.cells)
            .with_utilization(0.7),
    )
    .expect("witness generation");
    let design = witness.design;
    let lcfg = LegalizerConfig::default();
    let legalizer = Legalizer::new(lcfg.clone());

    let mut state = PlacementState::new(&design);
    let t0 = Instant::now();
    legalizer
        .legalize(&design, &mut state)
        .expect("base legalization");
    let base_wall = t0.elapsed();
    eprintln!(
        "base legalization: {} cells in {:.3}s",
        args.cells,
        base_wall.as_secs_f64()
    );

    // Full re-legalization baseline: what one ECO costs without the
    // incremental engine — wipe the placement and legalize from scratch.
    let full_runs = 3usize;
    let mut full_total = 0.0f64;
    for _ in 0..full_runs {
        let mut fresh = PlacementState::new(&design);
        let t = Instant::now();
        legalizer
            .legalize(&design, &mut fresh)
            .expect("full re-legalization");
        full_total += t.elapsed().as_secs_f64();
    }
    let full_s = full_total / full_runs as f64;
    eprintln!("full re-legalization baseline: {full_s:.3}s (mean of {full_runs})");

    let movables: Vec<CellId> = design.movable_cells().collect();
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut ratio_at_16 = f64::INFINITY;

    for &batch_size in &[1usize, 16, 256] {
        let mut session = EcoSession::new(
            design.clone(),
            state.clone(),
            lcfg.clone(),
            EcoConfig::default(),
        );
        let mut rng = SmallRng::seed_from_u64(args.seed ^ 0x9e37_79b9 ^ batch_size as u64);
        let mut lat_us: Vec<u64> = Vec::with_capacity(args.batches);
        let mut applied = 0u64;
        let mut rejected = 0u64;
        let sweep_t = Instant::now();
        for i in 0..args.batches {
            let edits: Vec<Edit> = (0..batch_size)
                .map(|_| random_edit(session.design(), &mut rng, &movables))
                .collect();
            let batch = EditBatch {
                id: i as u64,
                edits,
            };
            let stats = session.apply_batch(&batch).expect("apply");
            lat_us.push(u64::try_from(stats.wall.as_micros()).unwrap_or(u64::MAX));
            if stats.applied {
                applied += 1;
            } else {
                rejected += 1;
            }
        }
        let wall_s = sweep_t.elapsed().as_secs_f64();
        lat_us.sort_unstable();
        let p50 = percentile(&lat_us, 0.50);
        let p90 = percentile(&lat_us, 0.90);
        let p99 = percentile(&lat_us, 0.99);
        // The session telemetry recorded the same batches; its log2
        // histogram ships with the sweep point so dashboards read the
        // exact shape, not just three exact-percentile cuts.
        let latency_hist = session
            .telemetry()
            .to_metrics_summary("bench")
            .extras
            .into_iter()
            .find(|(name, _)| name == "serve_batch_latency_us")
            .map(|(_, h)| h)
            .expect("telemetry exports serve_batch_latency_us");
        assert_eq!(
            latency_hist.count, args.batches as u64,
            "telemetry latency histogram must cover every batch"
        );
        let req_per_s = args.batches as f64 / wall_s.max(1e-9);
        let mean_batch_s = wall_s / args.batches as f64;
        let ratio = full_s / mean_batch_s.max(1e-9);
        if batch_size <= 16 {
            ratio_at_16 = ratio_at_16.min(ratio);
        }
        eprintln!(
            "batch={batch_size:>3}: {req_per_s:8.1} req/s  p50={p50}us p90={p90}us p99={p99}us  \
             incremental-vs-full {ratio:.1}x  ({applied} applied, {rejected} rejected)"
        );
        points.push(SweepPoint {
            batch_size,
            batches: args.batches,
            applied,
            rejected,
            wall_s,
            req_per_s,
            p50_us: p50,
            p90_us: p90,
            p99_us: p99,
            latency_hist,
        });
    }

    let mut j = Json::obj();
    j.set("bench", "serve")
        .set("cells", args.cells)
        .set("seed", args.seed)
        .set("base_legalize_s", base_wall.as_secs_f64())
        .set("full_relegalize_s", full_s)
        .set("incremental_vs_full_at_16", ratio_at_16);
    let mut sweep = Vec::new();
    for p in &points {
        let mut pj = Json::obj();
        pj.set("batch_size", p.batch_size)
            .set("batches", p.batches)
            .set("applied", p.applied)
            .set("rejected", p.rejected)
            .set("wall_s", p.wall_s)
            .set("req_per_s", p.req_per_s)
            .set("p50_us", p.p50_us)
            .set("p90_us", p.p90_us)
            .set("p99_us", p.p99_us)
            .set("latency_hist", hist_json(&p.latency_hist))
            .set(
                "speedup_vs_full",
                full_s / (p.wall_s / p.batches as f64).max(1e-9),
            );
        sweep.push(pj);
    }
    j.set("sweep", Json::Arr(sweep));
    // A stable summary map for quick `jq`-less reading.
    let mut by_size = BTreeMap::new();
    for p in &points {
        by_size.insert(format!("{}", p.batch_size), Json::Num(p.req_per_s));
    }
    j.set("req_per_s_by_batch_size", Json::Obj(by_size));

    println!("{}", j.pretty());
    if let Some(path) = &args.json {
        std::fs::write(path, j.pretty()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(gate) = args.gate {
        if ratio_at_16 < gate {
            eprintln!(
                "GATE FAILED: incremental-vs-full ratio {ratio_at_16:.2} < required {gate:.2}"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("gate passed: {ratio_at_16:.2}x >= {gate:.2}x");
    }
    ExitCode::SUCCESS
}
