//! End-to-end session behavior over synthesized witnesses: legality after
//! commits, bit-exact state after rollbacks, tombstone semantics, trace
//! lanes.

use mrl_db::{CellId, Design, PlacementState, SegId};
use mrl_eco::{EcoConfig, EcoError, EcoSession, Edit, EditBatch};
use mrl_geom::PowerRail;
use mrl_legalize::{Legalizer, LegalizerConfig};
use mrl_metrics::{check_legal, RailCheck, Violation};
use mrl_synth::{generate_witness, WitnessConfig};

fn legalized_session(seed: u64, cells: usize, utilization: f64) -> EcoSession {
    let witness = generate_witness(
        &WitnessConfig::new(seed)
            .with_cells(cells)
            .with_utilization(utilization),
    )
    .expect("witness");
    let design = witness.design;
    let cfg = LegalizerConfig::default();
    let mut state = PlacementState::new(&design);
    Legalizer::new(cfg.clone())
        .legalize(&design, &mut state)
        .expect("base legalization");
    EcoSession::new(design, state, cfg, EcoConfig::default())
}

/// Legality check that tolerates tombstoned cells being unplaced.
fn assert_legal_modulo_deleted(session: &EcoSession) {
    if let Err(report) = check_legal(session.design(), session.state(), RailCheck::Enforce) {
        let real: Vec<_> = report
            .violations
            .iter()
            .filter(|v| match v {
                Violation::Unplaced(c) => !session.is_deleted(*c),
                _ => true,
            })
            .collect();
        assert!(real.is_empty(), "violations: {real:?}");
    }
    session
        .state()
        .verify_index(session.design())
        .expect("occupancy index consistent");
}

/// Full structural equality of two placement states over one design:
/// authoritative record plus the derived CSR occupancy index.
fn assert_states_identical(design: &Design, a: &PlacementState, b: &PlacementState) {
    assert_eq!(a.snapshot(), b.snapshot(), "pos[] diverged");
    let nsegs = design.floorplan().segments().len();
    for i in 0..nsegs {
        let seg = SegId::from_usize(i);
        assert_eq!(a.segment_cells(seg), b.segment_cells(seg), "seg {i} cells");
        assert_eq!(
            a.segment_extents(seg),
            b.segment_extents(seg),
            "seg {i} extents"
        );
        assert_eq!(a.free_gaps(seg), b.free_gaps(seg), "seg {i} gaps");
    }
}

fn first_movable(session: &EcoSession) -> CellId {
    session.design().movable_cells().next().expect("movable")
}

#[test]
fn move_batch_commits_and_stays_legal() {
    let mut session = legalized_session(11, 120, 0.6);
    let cell = first_movable(&session);
    let (x, y) = session.design().input_position(cell);
    let before = session.state().snapshot();
    let stats = session
        .apply_batch(&EditBatch {
            id: 1,
            edits: vec![Edit::Move {
                cell,
                x: x + 5.0,
                y,
            }],
        })
        .expect("apply");
    assert!(stats.applied, "reject: {:?}", stats.reject);
    assert_eq!(stats.edits, 1);
    assert!(stats.relegalized == 1);
    assert!(stats.touched >= 1);
    assert_eq!(session.state().count_moved(&before), stats.moved);
    assert_eq!(session.batches_applied(), 1);
    assert_legal_modulo_deleted(&session);
}

#[test]
fn insert_appends_a_cell_and_places_it() {
    let mut session = legalized_session(12, 100, 0.5);
    let base = session.design().num_cells();
    let stats = session
        .apply_batch(&EditBatch {
            id: 2,
            edits: vec![Edit::Insert {
                name: "eco_buf_0".to_string(),
                width: 2,
                height: 1,
                rail: PowerRail::Vdd,
                x: 10.0,
                y: 2.0,
            }],
        })
        .expect("apply");
    assert!(stats.applied, "reject: {:?}", stats.reject);
    assert_eq!(session.design().num_cells(), base + 1);
    let new_cell = CellId::from_usize(base);
    assert!(session.state().is_placed(new_cell));
    assert_eq!(session.design().cell(new_cell).name(), "eco_buf_0");
    assert_legal_modulo_deleted(&session);
}

#[test]
fn delete_tombstones_and_blocks_further_edits() {
    let mut session = legalized_session(13, 100, 0.5);
    let cell = first_movable(&session);
    let stats = session
        .apply_batch(&EditBatch {
            id: 3,
            edits: vec![Edit::Delete { cell }],
        })
        .expect("apply");
    assert!(stats.applied);
    assert!(session.is_deleted(cell));
    assert!(!session.state().is_placed(cell));
    assert_eq!(session.num_deleted(), 1);
    assert_legal_modulo_deleted(&session);

    let err = session
        .apply_batch(&EditBatch {
            id: 4,
            edits: vec![Edit::Move {
                cell,
                x: 1.0,
                y: 1.0,
            }],
        })
        .unwrap_err();
    match err {
        EcoError::InvalidEdit { request, message } => {
            assert_eq!(request, 4);
            assert!(message.contains("deleted"), "{message}");
        }
        other => panic!("expected InvalidEdit, got {other}"),
    }
}

#[test]
fn delete_then_reinsert_within_one_batch_is_rejected_as_invalid() {
    let mut session = legalized_session(14, 80, 0.5);
    let cell = first_movable(&session);
    let err = session
        .apply_batch(&EditBatch {
            id: 5,
            edits: vec![Edit::Delete { cell }, Edit::Resize { cell, width: 3 }],
        })
        .unwrap_err();
    assert!(matches!(err, EcoError::InvalidEdit { .. }));
    // Validation is pre-flight: nothing mutated, journal closed.
    assert!(!session.state().txn_active());
    assert!(!session.is_deleted(cell));
}

#[test]
fn invalid_cell_reference_leaves_state_untouched() {
    let mut session = legalized_session(15, 80, 0.5);
    let before = session.state().snapshot();
    let bogus = CellId::from_usize(session.design().num_cells() + 7);
    let err = session
        .apply_batch(&EditBatch {
            id: 6,
            edits: vec![Edit::Delete { cell: bogus }],
        })
        .unwrap_err();
    assert!(matches!(err, EcoError::InvalidEdit { .. }));
    assert_eq!(session.state().snapshot(), before);
    assert!(!session.state().txn_active());
}

#[test]
fn zero_budget_rejection_rolls_back_bit_exact() {
    // Dense witness: an inserted wide cell must displace neighbors, so a
    // zero induced-displacement budget forces the rollback path.
    let mut session = legalized_session(16, 300, 0.92);
    let design_before = session.design().clone();
    let state_before = session.state().clone();

    let mut rejected = 0;
    for (i, &(x, y)) in [(5.0, 1.0), (40.0, 3.0), (80.0, 5.0)].iter().enumerate() {
        let batch = EditBatch {
            id: 100 + i as u64,
            edits: vec![Edit::Insert {
                name: format!("eco_wide_{i}"),
                width: 12,
                height: 1,
                rail: PowerRail::Vdd,
                x,
                y,
            }],
        };
        let stats = session
            .apply_batch_with_budget(&batch, Some(0))
            .expect("apply");
        if !stats.applied {
            rejected += 1;
            assert!(stats.reject.is_some());
            assert_eq!(stats.moved, 0);
            assert_eq!(stats.induced_disp, 0);
        }
    }
    assert!(
        rejected > 0,
        "dense design should reject at least one insert"
    );
    // Bit-exact restoration is required regardless of how many committed;
    // easiest to assert when all three rejected — force that by checking
    // only when nothing applied, else re-derive expectations.
    if rejected == 3 {
        assert_eq!(session.design().num_cells(), design_before.num_cells());
        assert_states_identical(&design_before, &state_before, session.state());
    }
    assert_eq!(session.batches_rejected(), rejected);
    assert_legal_modulo_deleted(&session);
}

#[test]
fn infeasible_resize_rolls_back_width_and_positions() {
    let mut session = legalized_session(17, 90, 0.5);
    let cell = first_movable(&session);
    let old_width = session.design().cell(cell).width();
    let design_before = session.design().clone();
    let state_before = session.state().clone();
    let huge = session.design().floorplan().bounds().w * 2;

    let stats = session
        .apply_batch(&EditBatch {
            id: 9,
            edits: vec![
                Edit::Move {
                    cell,
                    x: 3.0,
                    y: 0.0,
                },
                Edit::Resize { cell, width: huge },
            ],
        })
        .expect("apply");
    assert!(!stats.applied);
    assert!(stats.reject.as_deref().unwrap_or("").contains("resize"));
    assert_eq!(session.design().cell(cell).width(), old_width);
    let (bx, by) = design_before.input_position(cell);
    assert_eq!(session.design().input_position(cell), (bx, by));
    assert_states_identical(&design_before, &state_before, session.state());
}

#[test]
fn trace_lanes_carry_request_ids() {
    let mut session = {
        let witness = generate_witness(&WitnessConfig::new(18).with_cells(60)).expect("witness");
        let design = witness.design;
        let cfg = LegalizerConfig::default();
        let mut state = PlacementState::new(&design);
        Legalizer::new(cfg.clone())
            .legalize(&design, &mut state)
            .expect("legalize");
        EcoSession::new(design, state, cfg, EcoConfig::default().with_trace(true))
    };
    for id in [7u64, 9u64] {
        let cell = first_movable(&session);
        let (x, y) = session.design().input_position(cell);
        session
            .apply_batch(&EditBatch {
                id,
                edits: vec![Edit::Move {
                    cell,
                    x: x + 1.0,
                    y,
                }],
            })
            .expect("apply");
    }
    let lanes: Vec<u32> = session.trace().events().iter().map(|(l, _)| *l).collect();
    assert!(!lanes.is_empty(), "tracing enabled but no events recorded");
    assert!(lanes.contains(&7), "lane 7 missing: {lanes:?}");
    assert!(lanes.contains(&9), "lane 9 missing: {lanes:?}");
    assert!(lanes.iter().all(|l| *l == 7 || *l == 9));
}

#[test]
fn mixed_stream_of_batches_keeps_invariants() {
    let mut session = legalized_session(19, 200, 0.7);
    let movables: Vec<CellId> = session.design().movable_cells().collect();
    let mut applied = 0u64;
    for i in 0..24u64 {
        let cell = movables[(i as usize * 7) % movables.len()];
        if session.is_deleted(cell) {
            continue;
        }
        let (x, y) = session.design().input_position(cell);
        let edits = match i % 4 {
            0 => vec![Edit::Move {
                cell,
                x: x + 3.0,
                y,
            }],
            1 => vec![Edit::Resize {
                cell,
                width: session.design().cell(cell).width() + 1,
            }],
            2 => vec![Edit::Insert {
                name: format!("mix_{i}"),
                width: 1,
                height: 1,
                rail: PowerRail::Vdd,
                x,
                y,
            }],
            _ => vec![Edit::Delete { cell }],
        };
        let stats = session
            .apply_batch(&EditBatch { id: i, edits })
            .expect("apply");
        if stats.applied {
            applied += 1;
        }
        assert_legal_modulo_deleted(&session);
    }
    assert_eq!(session.batches_applied(), applied);
    assert!(applied > 12, "most batches should commit, got {applied}");
}

#[test]
fn telemetry_tracks_outcomes_reasons_and_gauges() {
    let mut session = legalized_session(23, 150, 0.6);
    let cell = first_movable(&session);
    let (x, y) = session.design().input_position(cell);

    // One applied move, one budget rejection, one invalid-edit error.
    let ok = session
        .apply_batch(&EditBatch {
            id: 1,
            edits: vec![Edit::Move {
                cell,
                x: x + 4.0,
                y,
            }],
        })
        .expect("apply");
    assert!(ok.applied);
    let rejected = session
        .apply_batch_with_budget(
            &EditBatch {
                id: 2,
                edits: vec![Edit::Move { cell, x, y }],
            },
            Some(-1),
        )
        .expect("clean rejection");
    assert!(!rejected.applied);
    let bogus = CellId::from_usize(session.design().num_cells() + 10);
    let err = session.apply_batch(&EditBatch {
        id: 3,
        edits: vec![Edit::Move { cell: bogus, x, y }],
    });
    assert!(matches!(err, Err(EcoError::InvalidEdit { .. })));
    let deleted = session
        .apply_batch(&EditBatch {
            id: 4,
            edits: vec![Edit::Delete { cell }],
        })
        .expect("delete");
    assert!(deleted.applied);

    let t = session.telemetry();
    use mrl_telemetry::Collect;
    assert!(t.healthy(), "clean rejections must not poison health");
    let text = t.metrics_text();
    let line = |needle: &str| {
        text.lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("missing series {needle}"))
    };
    assert_eq!(
        line("mrl_serve_batches_total{outcome=\"applied\"}"),
        "mrl_serve_batches_total{outcome=\"applied\"} 2"
    );
    assert_eq!(
        line("mrl_serve_batches_total{outcome=\"rejected\"}"),
        "mrl_serve_batches_total{outcome=\"rejected\"} 1"
    );
    assert_eq!(
        line("mrl_serve_batches_total{outcome=\"error\"}"),
        "mrl_serve_batches_total{outcome=\"error\"} 1"
    );
    assert_eq!(
        line("mrl_serve_rejects_total{reason=\"budget\"}"),
        "mrl_serve_rejects_total{reason=\"budget\"} 1"
    );
    assert_eq!(
        line("mrl_serve_errors_total{reason=\"invalid_edit\"}"),
        "mrl_serve_errors_total{reason=\"invalid_edit\"} 1"
    );
    assert_eq!(
        line("mrl_serve_edits_total{op=\"move\"}"),
        "mrl_serve_edits_total{op=\"move\"} 3"
    );
    assert_eq!(
        line("mrl_session_tombstoned_cells"),
        "mrl_session_tombstoned_cells 1"
    );
    let live: u64 = line("mrl_session_live_cells")
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(live as usize, session.design().num_cells() - 1);
    assert_eq!(session.num_deleted(), 1);
    // Latency funnel recorded all three processed batches (errors skip
    // the batch histogram but validate timing still lands).
    assert!(text.contains("mrl_serve_batch_latency_us_count 3"));
    assert!(text.contains("mrl_serve_phase_latency_us_count{phase=\"validate\"} 4"));

    // Stats line is flat NDJSON with the headline counters.
    let stats = t.stats_line("stats");
    assert!(stats.contains("\"event\":\"stats\""), "{stats}");
    assert!(stats.contains("\"applied\":2"), "{stats}");
    assert!(stats.contains("\"rejected\":1"), "{stats}");
    assert!(stats.contains("\"healthy\":true"), "{stats}");

    // The metrics-v1 summary carries the serve histograms as extras.
    let summary = t.to_metrics_summary("witness23");
    assert_eq!(summary.hist_displacement.count, 2);
    let json = summary.to_json_string();
    assert!(json.contains("\"serve_batch_latency_us\""), "{json}");
    assert!(json.contains("\"serve_phase_legalize_us\""), "{json}");

    // Poisoning flips /healthz and the gauge, and is sticky.
    t.poison();
    assert!(!t.healthy());
    assert!(t.metrics_text().contains("mrl_serve_healthy 0"));
}
