//! The ILP-based optimal local legalizer (the paper's quality baseline).
//!
//! Runs the same incremental driver as Algorithm 1 of the paper, but each
//! local problem — place the target cell in the extracted local region,
//! keeping every local cell's row and the relative cell order per segment,
//! minimizing total displacement — is solved to optimality.
//!
//! The faithful engine ([`LocalSolver::Milp`]) builds one mixed-integer
//! program per candidate bottom row: continuous positions `x_i` for all
//! local cells and the target, per-row ordering constraints, binaries
//! `δ_i` ("target left of cell i") with big-M disjunctions and chain
//! monotonicity, and hinge-linearized displacement terms. With the
//! binaries fixed, the remaining LP is a system of difference constraints
//! — totally unimodular — so branch-and-bound over `δ` alone yields
//! integral optima.
//!
//! The fast engine ([`LocalSolver::ExhaustiveExact`]) enumerates every
//! valid insertion point and scores it with the exact chain evaluator; for
//! a fixed insertion point the minimal-push realization attains each
//! cell's hinge lower bound, so the best insertion point is the same
//! optimum the MILP finds. Property tests in `tests/` assert the two
//! engines agree.

use mrl_db::{CellId, Design, PlacementState};
use mrl_geom::SitePoint;
use mrl_ilp::{Model, Op, SolveError, VarId};
use mrl_legalize::{
    mll, EvalMode, FailReason, LegalizeError, LegalizeStats, Legalizer, LegalizerConfig,
    LocalRegion, PowerRailMode,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The engine used to solve each local problem optimally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LocalSolver {
    /// Mixed-integer programming via `mrl-ilp` (faithful to the paper's
    /// `lpsolve` baseline; slow).
    #[default]
    Milp,
    /// Exhaustive insertion-point enumeration under exact evaluation
    /// (provably the same optimum; much faster).
    ExhaustiveExact,
}

/// Optimal local legalization driver.
///
/// See the [crate-level example](crate).
#[derive(Clone, Debug)]
pub struct IlpLegalizer {
    cfg: LegalizerConfig,
    solver: LocalSolver,
}

impl IlpLegalizer {
    /// Creates the baseline with the given window/rail configuration and
    /// local engine. The `eval_mode` field of the configuration is
    /// ignored (this legalizer is always exact).
    pub fn new(cfg: LegalizerConfig, solver: LocalSolver) -> Self {
        Self { cfg, solver }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LegalizerConfig {
        &self.cfg
    }

    /// Legalizes all unplaced movable cells, like
    /// [`Legalizer::legalize`] but with optimal local solves.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Legalizer::legalize`].
    pub fn legalize(
        &self,
        design: &Design,
        state: &mut PlacementState,
    ) -> Result<LegalizeStats, LegalizeError> {
        if self.solver == LocalSolver::ExhaustiveExact {
            let cfg = self.cfg.clone().with_eval_mode(EvalMode::Exact);
            return Legalizer::new(cfg).legalize(design, state);
        }
        // MILP driver: mirror Algorithm 1, with the MILP as local solver.
        let helper = Legalizer::new(self.cfg.clone());
        let mut stats = LegalizeStats::default();
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut remaining: Vec<CellId> = Vec::new();
        let todo: Vec<CellId> = design
            .movable_cells()
            .filter(|&c| !state.is_placed(c))
            .collect();
        for cell in todo {
            let (fx, fy) = design.input_position(cell);
            if self.try_place(design, state, &helper, cell, fx, fy, &mut stats)? {
                continue;
            }
            remaining.push(cell);
        }
        let mut k = 1u32;
        while !remaining.is_empty() {
            if k > self.cfg.max_retry_iters {
                return Err(LegalizeError::Unplaceable {
                    cell: remaining[0],
                    rounds: k - 1,
                    reason: FailReason::RetryBudgetExhausted,
                });
            }
            stats.retry_rounds = k;
            let rx = i64::from(self.cfg.rx) * i64::from(k - 1);
            let ry = i64::from(self.cfg.ry) * i64::from(k - 1);
            let mut still = Vec::new();
            for cell in remaining {
                let (fx, fy) = design.input_position(cell);
                let dx = if rx > 0 {
                    rng.gen_range(-rx..=rx) as f64
                } else {
                    0.0
                };
                let dy = if ry > 0 {
                    rng.gen_range(-ry..=ry) as f64
                } else {
                    0.0
                };
                if !self.try_place(design, state, &helper, cell, fx + dx, fy + dy, &mut stats)? {
                    still.push(cell);
                }
            }
            remaining = still;
            k += 1;
        }
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_place(
        &self,
        design: &Design,
        state: &mut PlacementState,
        helper: &Legalizer,
        cell: CellId,
        fx: f64,
        fy: f64,
        stats: &mut LegalizeStats,
    ) -> Result<bool, LegalizeError> {
        let pos = helper.snap(design, cell, fx, fy);
        let direct = if self.cfg.rail_mode.is_aligned() {
            state.place(design, cell, pos)
        } else {
            state.place_ignoring_rails(design, cell, pos)
        };
        if direct.is_ok() {
            stats.direct += 1;
            stats.placed += 1;
            return Ok(true);
        }
        stats.mll_calls += 1;
        let placed = self.milp_place(design, state, cell, pos)?;
        if placed {
            stats.via_mll += 1;
            stats.placed += 1;
        }
        Ok(placed)
    }

    /// Solves the local problem around `pos` with the MILP and commits the
    /// optimum. Returns false when no candidate window is feasible.
    pub fn milp_place(
        &self,
        design: &Design,
        state: &mut PlacementState,
        target: CellId,
        pos: SitePoint,
    ) -> Result<bool, LegalizeError> {
        let cell = design.cell(target);
        let (w_t, h_t) = (cell.width(), cell.height());
        let window = mrl_geom::SiteRect::new(
            pos.x - self.cfg.rx,
            pos.y - self.cfg.ry,
            2 * self.cfg.rx + w_t,
            2 * self.cfg.ry + h_t,
        );
        let region = LocalRegion::extract_masked(design, state, window, design.region_of(target));
        let hw = region.height();
        let ht = h_t as usize;
        if hw < ht {
            return Ok(false);
        }
        let aspect = design.grid().aspect();
        let fp = design.floorplan();
        let mut best: Option<(f64, usize, Vec<i32>, i32)> = None; // cost, t, xs, xt
        for t in 0..=(hw - ht) {
            let rows = t..t + ht;
            if rows.clone().any(|r| region.rows[r].is_none()) {
                continue;
            }
            let bottom_global = region.bottom_row + t as i32;
            if self.cfg.rail_mode == PowerRailMode::Aligned
                && !fp.rail_compatible(cell.rail(), h_t, bottom_global)
            {
                continue;
            }
            match solve_window_milp(&region, t, ht, w_t, pos.x) {
                Ok(Some((hcost, xs, xt))) => {
                    let cost = hcost + f64::from((bottom_global - pos.y).abs()) * aspect;
                    if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
                        best = Some((cost, t, xs, xt));
                    }
                }
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        let Some((_, t, xs, xt)) = best else {
            return Ok(false);
        };
        let moves: Vec<(CellId, i32)> = (0..region.cells.len())
            .filter(|&i| region.cells.x[i] != xs[i])
            .map(|i| (region.cells.id[i], xs[i]))
            .collect();
        state
            .shift_batch(design, &moves)
            .map_err(LegalizeError::Db)?;
        let at = SitePoint::new(xt, region.bottom_row + t as i32);
        let placed = if self.cfg.rail_mode.is_aligned() {
            state.place(design, target, at)
        } else {
            state.place_ignoring_rails(design, target, at)
        };
        placed.map_err(LegalizeError::Db)?;
        Ok(true)
    }
}

/// Builds and solves the MILP for one candidate window; returns
/// `(horizontal cost, local cell xs, target x)` or `None` if infeasible.
fn solve_window_milp(
    region: &LocalRegion,
    t: usize,
    ht: usize,
    w_t: i32,
    desired_x: i32,
) -> Result<Option<(f64, Vec<i32>, i32)>, LegalizeError> {
    let mut model = Model::new();
    let n = region.cells.len();
    // Position variables for local cells, bounded by their segments.
    let mut x_vars: Vec<VarId> = Vec::with_capacity(n);
    for i in 0..n {
        let mut lo = i32::MIN;
        let mut hi = i32::MAX;
        for row in region.cells.y[i]..region.cells.y[i] + region.cells.h[i] {
            let lr = (row - region.bottom_row) as usize;
            let seg = region.rows[lr].as_ref().expect("local cell rows exist");
            lo = lo.max(seg.x0);
            hi = hi.min(seg.x1 - region.cells.w[i]);
        }
        x_vars.push(model.add_var(f64::from(lo), f64::from(hi), 0.0));
    }
    // Target position, bounded by the window rows.
    let (mut t_lo, mut t_hi) = (i32::MIN, i32::MAX);
    for r in t..t + ht {
        let seg = region.rows[r].as_ref().expect("window rows checked");
        t_lo = t_lo.max(seg.x0);
        t_hi = t_hi.min(seg.x1 - w_t);
    }
    if t_lo > t_hi {
        return Ok(None);
    }
    let x_t = model.add_var(f64::from(t_lo), f64::from(t_hi), 0.0);

    // Per-row ordering constraints between consecutive local cells.
    for seg in region.rows.iter().flatten() {
        for pair in seg.cells.windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            let w_a = f64::from(region.cells.w[a]);
            model.add_constraint(&[(x_vars[a], 1.0), (x_vars[b], -1.0)], Op::Le, -w_a);
        }
    }

    // Disjunction binaries for cells sharing a row with the target.
    let span_width: i32 = region
        .rows
        .iter()
        .flatten()
        .map(|s| s.x1 - s.x0)
        .max()
        .unwrap_or(0);
    let big_m = f64::from(span_width + w_t + 1);
    let mut delta: Vec<Option<VarId>> = vec![None; n];
    for r in t..t + ht {
        let seg = region.rows[r].as_ref().expect("window rows checked");
        let mut prev: Option<usize> = None;
        for &ci in &seg.cells {
            let ci = ci as usize;
            let d = *delta[ci].get_or_insert_with(|| model.add_binary_var(0.0));
            // δ = 1 -> target left of cell: x_t + w_t <= x_i.
            model.add_constraint(
                &[(x_t, 1.0), (x_vars[ci], -1.0), (d, big_m)],
                Op::Le,
                big_m - f64::from(w_t),
            );
            // δ = 0 -> cell left of target: x_i + w_i <= x_t.
            model.add_constraint(
                &[(x_vars[ci], 1.0), (x_t, -1.0), (d, -big_m)],
                Op::Le,
                -f64::from(region.cells.w[ci]),
            );
            // Monotone along the row: left cell's δ ≤ right cell's δ.
            if let Some(p) = prev {
                if let (Some(dp), Some(dc)) = (delta[p], delta[ci]) {
                    model.add_constraint(&[(dp, 1.0), (dc, -1.0)], Op::Le, 0.0);
                }
            }
            prev = Some(ci);
        }
    }

    // Displacement hinges: d_i >= |x_i - x_i0|, d_t >= |x_t - desired|.
    let mut objective_vars = Vec::with_capacity(n + 1);
    for (i, &xv) in x_vars.iter().enumerate().take(n) {
        let cx = region.cells.x[i];
        let d = model.add_var(0.0, f64::INFINITY, 1.0);
        model.add_constraint(&[(d, 1.0), (xv, -1.0)], Op::Ge, -f64::from(cx));
        model.add_constraint(&[(d, 1.0), (xv, 1.0)], Op::Ge, f64::from(cx));
        objective_vars.push(d);
    }
    let d_t = model.add_var(0.0, f64::INFINITY, 1.0);
    model.add_constraint(&[(d_t, 1.0), (x_t, -1.0)], Op::Ge, -f64::from(desired_x));
    model.add_constraint(&[(d_t, 1.0), (x_t, 1.0)], Op::Ge, f64::from(desired_x));
    objective_vars.push(d_t);

    match model.solve() {
        Ok(sol) => {
            let xs: Vec<i32> = x_vars.iter().map(|&v| sol[v].round() as i32).collect();
            let xt = sol[x_t].round() as i32;
            Ok(Some((sol.objective, xs, xt)))
        }
        Err(SolveError::Infeasible) => Ok(None),
        Err(e) => Err(LegalizeError::Db(mrl_db::DbError::Invalid(format!(
            "milp solver failure: {e}"
        )))),
    }
}

/// Optimal cost of the local problem around one target without committing
/// anything — the oracle used by cross-validation tests. Returns `None`
/// when no placement exists in the window.
#[doc(hidden)]
pub fn milp_local_cost(
    cfg: &LegalizerConfig,
    design: &Design,
    state: &PlacementState,
    target: CellId,
    pos: SitePoint,
) -> Option<f64> {
    let cell = design.cell(target);
    let window = mrl_geom::SiteRect::new(
        pos.x - cfg.rx,
        pos.y - cfg.ry,
        2 * cfg.rx + cell.width(),
        2 * cfg.ry + cell.height(),
    );
    let region = LocalRegion::extract_masked(design, state, window, design.region_of(target));
    let ht = cell.height() as usize;
    if region.height() < ht {
        return None;
    }
    let aspect = design.grid().aspect();
    let fp = design.floorplan();
    let mut best: Option<f64> = None;
    for t in 0..=(region.height() - ht) {
        if (t..t + ht).any(|r| region.rows[r].is_none()) {
            continue;
        }
        let bottom_global = region.bottom_row + t as i32;
        if cfg.rail_mode == PowerRailMode::Aligned
            && !fp.rail_compatible(cell.rail(), cell.height(), bottom_global)
        {
            continue;
        }
        if let Ok(Some((hcost, ..))) = solve_window_milp(&region, t, ht, cell.width(), pos.x) {
            let cost = hcost + f64::from((bottom_global - pos.y).abs()) * aspect;
            if best.is_none_or(|b| cost < b) {
                best = Some(cost);
            }
        }
    }
    best
}

/// Re-exported for integration tests: exact-mode MLL on one target.
#[doc(hidden)]
pub fn mll_exact_outcome(
    cfg: &LegalizerConfig,
    design: &Design,
    state: &mut PlacementState,
    target: CellId,
    pos: SitePoint,
) -> Result<mrl_legalize::MllOutcome, mrl_db::DbError> {
    let cfg = cfg.clone().with_eval_mode(EvalMode::Exact);
    mll(design, state, &cfg, target, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::DesignBuilder;
    use mrl_legalize::MllOutcome;
    use mrl_metrics::{check_legal, RailCheck};

    fn relaxed() -> LegalizerConfig {
        LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed)
    }

    #[test]
    fn milp_matches_mll_exact_on_simple_insertion() {
        let mut b = DesignBuilder::new(1, 30);
        let a = b.add_cell("a", 2, 1);
        let c = b.add_cell("c", 2, 1);
        let t = b.add_cell("t", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(10, 0)).unwrap();
        state.place(&design, c, SitePoint::new(12, 0)).unwrap();
        let cfg = relaxed();
        let pos = SitePoint::new(11, 0);
        let milp_cost = milp_local_cost(&cfg, &design, &state, t, pos).unwrap();
        let out = mll_exact_outcome(&cfg, &design, &mut state, t, pos).unwrap();
        let MllOutcome::Placed(eval) = out else {
            panic!("mll failed")
        };
        assert!(
            (milp_cost - eval.cost).abs() < 1e-6,
            "{milp_cost} vs {}",
            eval.cost
        );
        assert!((milp_cost - 2.0).abs() < 1e-6);
    }

    #[test]
    fn milp_matches_mll_exact_with_multi_row_cells() {
        let mut b = DesignBuilder::new(2, 20);
        let m = b.add_cell("m", 2, 2);
        let s = b.add_cell("s", 2, 1);
        let t = b.add_cell("t", 3, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, m, SitePoint::new(8, 0)).unwrap();
        state.place(&design, s, SitePoint::new(10, 1)).unwrap();
        let cfg = relaxed();
        let pos = SitePoint::new(8, 0);
        let milp_cost = milp_local_cost(&cfg, &design, &state, t, pos).unwrap();
        let out = mll_exact_outcome(&cfg, &design, &mut state, t, pos).unwrap();
        let MllOutcome::Placed(eval) = out else {
            panic!("mll failed")
        };
        assert!(
            (milp_cost - eval.cost).abs() < 1e-6,
            "{milp_cost} vs {}",
            eval.cost
        );
    }

    #[test]
    fn milp_driver_legalizes_and_is_legal() {
        let mut b = DesignBuilder::new(4, 24);
        for i in 0..6 {
            let c = b.add_cell(format!("c{i}"), 2, 1 + (i % 2));
            b.set_input_position(c, 8.0 + 0.4 * i as f64, 1.2);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::Milp);
        let stats = ilp.legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 6);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn exhaustive_engine_delegates_to_exact_mll() {
        let mut b = DesignBuilder::new(4, 24);
        for i in 0..6 {
            let c = b.add_cell(format!("c{i}"), 2, 1 + (i % 2));
            b.set_input_position(c, 8.0 + 0.4 * i as f64, 1.2);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::ExhaustiveExact);
        let stats = ilp.legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 6);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn milp_respects_rail_alignment() {
        let mut b = DesignBuilder::new(4, 12);
        let d = b.add_cell("d", 2, 2);
        b.set_input_position(d, 5.0, 1.0);
        // Force MLL path by occupying the snapped position.
        let blocker = b.add_cell("blk", 2, 2);
        b.set_input_position(blocker, 5.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::Milp);
        ilp.legalize(&design, &mut state).unwrap();
        assert_eq!(state.position(d).unwrap().y % 2, 0);
        assert_eq!(state.position(blocker).unwrap().y % 2, 0);
    }
}
