//! The ILP-based optimal local legalizer (the paper's quality baseline).
//!
//! Runs the same incremental driver as Algorithm 1 of the paper, but each
//! local problem — place the target cell in the extracted local region,
//! keeping every local cell's row and the relative cell order per segment,
//! minimizing total displacement — is solved to optimality.
//!
//! The faithful engine ([`LocalSolver::Milp`]) builds one mixed-integer
//! program per candidate bottom row: continuous positions `x_i` for all
//! local cells and the target, per-row ordering constraints, binaries
//! `δ_i` ("target left of cell i") with big-M disjunctions and chain
//! monotonicity, and hinge-linearized displacement terms. With the
//! binaries fixed, the remaining LP is a system of difference constraints
//! — totally unimodular — so branch-and-bound over `δ` alone yields
//! integral optima.
//!
//! The fast engine ([`LocalSolver::ExhaustiveExact`]) enumerates every
//! valid insertion point and scores it with the exact chain evaluator; for
//! a fixed insertion point the minimal-push realization attains each
//! cell's hinge lower bound, so the best insertion point is the same
//! optimum the MILP finds. Property tests in `tests/` assert the two
//! engines agree.

use mrl_db::{CellId, Design, PlacementState};
use mrl_geom::SitePoint;
use mrl_legalize::{
    ilp_place_window, mll, solve_window_milp, EvalMode, FailReason, LegalizeError, LegalizeStats,
    Legalizer, LegalizerConfig, LocalRegion, PowerRailMode,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The engine used to solve each local problem optimally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LocalSolver {
    /// Mixed-integer programming via `mrl-ilp` (faithful to the paper's
    /// `lpsolve` baseline; slow).
    #[default]
    Milp,
    /// Exhaustive insertion-point enumeration under exact evaluation
    /// (provably the same optimum; much faster).
    ExhaustiveExact,
}

/// Optimal local legalization driver.
///
/// See the [crate-level example](crate).
#[derive(Clone, Debug)]
pub struct IlpLegalizer {
    cfg: LegalizerConfig,
    solver: LocalSolver,
}

impl IlpLegalizer {
    /// Creates the baseline with the given window/rail configuration and
    /// local engine. The `eval_mode` field of the configuration is
    /// ignored (this legalizer is always exact).
    pub fn new(cfg: LegalizerConfig, solver: LocalSolver) -> Self {
        Self { cfg, solver }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LegalizerConfig {
        &self.cfg
    }

    /// Legalizes all unplaced movable cells, like
    /// [`Legalizer::legalize`] but with optimal local solves.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Legalizer::legalize`].
    pub fn legalize(
        &self,
        design: &Design,
        state: &mut PlacementState,
    ) -> Result<LegalizeStats, LegalizeError> {
        if self.solver == LocalSolver::ExhaustiveExact {
            let cfg = self.cfg.clone().with_eval_mode(EvalMode::Exact);
            return Legalizer::new(cfg).legalize(design, state);
        }
        // MILP driver: mirror Algorithm 1, with the MILP as local solver.
        let helper = Legalizer::new(self.cfg.clone());
        let mut stats = LegalizeStats::default();
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut remaining: Vec<CellId> = Vec::new();
        let todo: Vec<CellId> = design
            .movable_cells()
            .filter(|&c| !state.is_placed(c))
            .collect();
        for cell in todo {
            let (fx, fy) = design.input_position(cell);
            if self.try_place(design, state, &helper, cell, fx, fy, &mut stats)? {
                continue;
            }
            remaining.push(cell);
        }
        let mut k = 1u32;
        while !remaining.is_empty() {
            if k > self.cfg.max_retry_iters {
                return Err(LegalizeError::Unplaceable {
                    cell: remaining[0],
                    rounds: k - 1,
                    reason: FailReason::RetryBudgetExhausted,
                });
            }
            stats.retry_rounds = k;
            let rx = i64::from(self.cfg.rx) * i64::from(k - 1);
            let ry = i64::from(self.cfg.ry) * i64::from(k - 1);
            let mut still = Vec::new();
            for cell in remaining {
                let (fx, fy) = design.input_position(cell);
                let dx = if rx > 0 {
                    rng.gen_range(-rx..=rx) as f64
                } else {
                    0.0
                };
                let dy = if ry > 0 {
                    rng.gen_range(-ry..=ry) as f64
                } else {
                    0.0
                };
                if !self.try_place(design, state, &helper, cell, fx + dx, fy + dy, &mut stats)? {
                    still.push(cell);
                }
            }
            remaining = still;
            k += 1;
        }
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_place(
        &self,
        design: &Design,
        state: &mut PlacementState,
        helper: &Legalizer,
        cell: CellId,
        fx: f64,
        fy: f64,
        stats: &mut LegalizeStats,
    ) -> Result<bool, LegalizeError> {
        let pos = helper.snap(design, cell, fx, fy);
        let direct = if self.cfg.rail_mode.is_aligned() {
            state.place(design, cell, pos)
        } else {
            state.place_ignoring_rails(design, cell, pos)
        };
        if direct.is_ok() {
            stats.direct += 1;
            stats.placed += 1;
            return Ok(true);
        }
        stats.mll_calls += 1;
        let placed = self.milp_place(design, state, cell, pos)?;
        if placed {
            stats.via_mll += 1;
            stats.placed += 1;
        }
        Ok(placed)
    }

    /// Solves the local problem around `pos` with the MILP and commits the
    /// optimum. Returns false when no candidate window is feasible.
    ///
    /// The engine lives in `mrl-legalize` ([`ilp_place_window`]) where the
    /// escalation ladder reuses it with an enlarged window; the baseline
    /// runs it at the configured window size with no cell cap.
    pub fn milp_place(
        &self,
        design: &Design,
        state: &mut PlacementState,
        target: CellId,
        pos: SitePoint,
    ) -> Result<bool, LegalizeError> {
        ilp_place_window(
            design,
            state,
            &self.cfg,
            self.cfg.rx,
            self.cfg.ry,
            None,
            target,
            pos,
        )
    }
}

/// Optimal cost of the local problem around one target without committing
/// anything — the oracle used by cross-validation tests. Returns `None`
/// when no placement exists in the window.
#[doc(hidden)]
pub fn milp_local_cost(
    cfg: &LegalizerConfig,
    design: &Design,
    state: &PlacementState,
    target: CellId,
    pos: SitePoint,
) -> Option<f64> {
    let cell = design.cell(target);
    let window = mrl_geom::SiteRect::new(
        pos.x - cfg.rx,
        pos.y - cfg.ry,
        2 * cfg.rx + cell.width(),
        2 * cfg.ry + cell.height(),
    );
    let region = LocalRegion::extract_masked(design, state, window, design.region_of(target));
    let ht = cell.height() as usize;
    if region.height() < ht {
        return None;
    }
    let aspect = design.grid().aspect();
    let fp = design.floorplan();
    let mut best: Option<f64> = None;
    for t in 0..=(region.height() - ht) {
        if (t..t + ht).any(|r| region.rows[r].is_none()) {
            continue;
        }
        let bottom_global = region.bottom_row + t as i32;
        if cfg.rail_mode == PowerRailMode::Aligned
            && !fp.rail_compatible(cell.rail(), cell.height(), bottom_global)
        {
            continue;
        }
        if let Ok(Some((hcost, ..))) = solve_window_milp(&region, t, ht, cell.width(), pos.x) {
            let cost = hcost + f64::from((bottom_global - pos.y).abs()) * aspect;
            if best.is_none_or(|b| cost < b) {
                best = Some(cost);
            }
        }
    }
    best
}

/// Re-exported for integration tests: exact-mode MLL on one target.
#[doc(hidden)]
pub fn mll_exact_outcome(
    cfg: &LegalizerConfig,
    design: &Design,
    state: &mut PlacementState,
    target: CellId,
    pos: SitePoint,
) -> Result<mrl_legalize::MllOutcome, mrl_db::DbError> {
    let cfg = cfg.clone().with_eval_mode(EvalMode::Exact);
    mll(design, state, &cfg, target, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::DesignBuilder;
    use mrl_legalize::MllOutcome;
    use mrl_metrics::{check_legal, RailCheck};

    fn relaxed() -> LegalizerConfig {
        LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed)
    }

    #[test]
    fn milp_matches_mll_exact_on_simple_insertion() {
        let mut b = DesignBuilder::new(1, 30);
        let a = b.add_cell("a", 2, 1);
        let c = b.add_cell("c", 2, 1);
        let t = b.add_cell("t", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(10, 0)).unwrap();
        state.place(&design, c, SitePoint::new(12, 0)).unwrap();
        let cfg = relaxed();
        let pos = SitePoint::new(11, 0);
        let milp_cost = milp_local_cost(&cfg, &design, &state, t, pos).unwrap();
        let out = mll_exact_outcome(&cfg, &design, &mut state, t, pos).unwrap();
        let MllOutcome::Placed(eval) = out else {
            panic!("mll failed")
        };
        assert!(
            (milp_cost - eval.cost).abs() < 1e-6,
            "{milp_cost} vs {}",
            eval.cost
        );
        assert!((milp_cost - 2.0).abs() < 1e-6);
    }

    #[test]
    fn milp_matches_mll_exact_with_multi_row_cells() {
        let mut b = DesignBuilder::new(2, 20);
        let m = b.add_cell("m", 2, 2);
        let s = b.add_cell("s", 2, 1);
        let t = b.add_cell("t", 3, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, m, SitePoint::new(8, 0)).unwrap();
        state.place(&design, s, SitePoint::new(10, 1)).unwrap();
        let cfg = relaxed();
        let pos = SitePoint::new(8, 0);
        let milp_cost = milp_local_cost(&cfg, &design, &state, t, pos).unwrap();
        let out = mll_exact_outcome(&cfg, &design, &mut state, t, pos).unwrap();
        let MllOutcome::Placed(eval) = out else {
            panic!("mll failed")
        };
        assert!(
            (milp_cost - eval.cost).abs() < 1e-6,
            "{milp_cost} vs {}",
            eval.cost
        );
    }

    #[test]
    fn milp_driver_legalizes_and_is_legal() {
        let mut b = DesignBuilder::new(4, 24);
        for i in 0..6 {
            let c = b.add_cell(format!("c{i}"), 2, 1 + (i % 2));
            b.set_input_position(c, 8.0 + 0.4 * i as f64, 1.2);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::Milp);
        let stats = ilp.legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 6);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn exhaustive_engine_delegates_to_exact_mll() {
        let mut b = DesignBuilder::new(4, 24);
        for i in 0..6 {
            let c = b.add_cell(format!("c{i}"), 2, 1 + (i % 2));
            b.set_input_position(c, 8.0 + 0.4 * i as f64, 1.2);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::ExhaustiveExact);
        let stats = ilp.legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 6);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn milp_respects_rail_alignment() {
        let mut b = DesignBuilder::new(4, 12);
        let d = b.add_cell("d", 2, 2);
        b.set_input_position(d, 5.0, 1.0);
        // Force MLL path by occupying the snapped position.
        let blocker = b.add_cell("blk", 2, 2);
        b.set_input_position(blocker, 5.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::Milp);
        ilp.legalize(&design, &mut state).unwrap();
        assert_eq!(state.position(d).unwrap().y % 2, 0);
        assert_eq!(state.position(blocker).unwrap().y % 2, 0);
    }
}
