//! Abacus legalization (Spindler, Schlichtmann & Johannes, ISPD 2008)
//! extended to mixed-height designs the two-step way prior work does
//! (refs. [3], [4] of the paper): multi-row cells are pre-placed greedily
//! and frozen like macros, then single-row cells are legalized row by row
//! with Abacus dynamic clustering.
//!
//! This is the comparison point the paper's introduction argues against:
//! within a row Abacus moves cells optimally (quadratic displacement), but
//! it cannot coordinate rows, so multi-row cells must be frozen first —
//! and freezing them early costs displacement in dense designs.

use mrl_db::{CellId, Design, PlacementState};
use mrl_geom::SitePoint;
use mrl_legalize::{FailReason, LegalizeError, LegalizeStats, PowerRailMode};

/// One Abacus cluster: a maximal run of abutting cells sharing a row.
#[derive(Clone, Debug)]
struct Cluster {
    /// Total weight (one per cell).
    e: f64,
    /// Σ e_c · (x'_c − offset of the cell in the cluster).
    q: f64,
    /// Total width.
    w: i32,
    /// Cells in order, with their widths.
    cells: Vec<(CellId, i32)>,
}

impl Cluster {
    fn optimal_x(&self, lo: i32, hi: i32) -> f64 {
        (self.q / self.e).clamp(f64::from(lo), f64::from(hi - self.w))
    }
}

/// One free run of sites on a row (between blockages and frozen cells).
#[derive(Clone, Debug)]
struct SubSeg {
    x0: i32,
    x1: i32,
    clusters: Vec<Cluster>,
}

impl SubSeg {
    fn used(&self) -> i32 {
        self.clusters.iter().map(|c| c.w).sum()
    }

    /// Final x of the last cluster if `cell` were appended, without
    /// mutating. Returns `None` when the sub-segment cannot host it.
    fn trial(&self, desired: f64, width: i32) -> Option<f64> {
        if self.used() + width > self.x1 - self.x0 {
            return None;
        }
        let mut e = 1.0;
        let mut q = desired;
        let mut w = width;
        // Walk clusters right-to-left, merging while they would overlap.
        let mut idx = self.clusters.len();
        loop {
            let x = (q / e).clamp(f64::from(self.x0), f64::from(self.x1 - w));
            if idx == 0 {
                return Some(x + f64::from(w - width));
            }
            let prev = &self.clusters[idx - 1];
            let prev_x = prev.optimal_x(self.x0, self.x1);
            if prev_x + f64::from(prev.w) <= x {
                return Some(x + f64::from(w - width));
            }
            // Merge prev into the trial cluster.
            q = prev.q + (q - e * f64::from(prev.w));
            e += prev.e;
            w += prev.w;
            idx -= 1;
        }
    }

    /// Appends `cell` at `desired` and re-clusters (Abacus `PlaceRow`).
    fn commit(&mut self, cell: CellId, desired: f64, width: i32) {
        let mut cur = Cluster {
            e: 1.0,
            q: desired,
            w: width,
            cells: vec![(cell, width)],
        };
        while let Some(prev) = self.clusters.last() {
            let x = cur.optimal_x(self.x0, self.x1);
            let prev_x = prev.optimal_x(self.x0, self.x1);
            if prev_x + f64::from(prev.w) <= x {
                break;
            }
            let prev = self.clusters.pop().expect("checked non-empty");
            // Shift cur's members after prev's width, then merge.
            cur.q = prev.q + (cur.q - cur.e * f64::from(prev.w));
            cur.e += prev.e;
            cur.w += prev.w;
            let mut cells = prev.cells;
            cells.extend(cur.cells);
            cur.cells = cells;
        }
        self.clusters.push(cur);
    }
}

/// Two-step Abacus legalizer for mixed-height designs.
///
/// # Examples
///
/// ```
/// use mrl_db::{DesignBuilder, PlacementState};
/// use mrl_baselines::AbacusLegalizer;
///
/// let mut b = DesignBuilder::new(4, 30);
/// for i in 0..6 {
///     let c = b.add_cell(format!("c{i}"), 3, 1 + (i % 2));
///     b.set_input_position(c, 10.0 + 0.5 * i as f64, 1.0);
/// }
/// let design = b.finish()?;
/// let mut state = PlacementState::new(&design);
/// let stats = AbacusLegalizer::new().legalize(&design, &mut state)?;
/// assert_eq!(stats.placed, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct AbacusLegalizer {
    rail_mode: PowerRailMode,
}

impl AbacusLegalizer {
    /// Creates the legalizer with rail alignment enforced.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the legalizer with the given rail handling.
    pub fn with_rail_mode(rail_mode: PowerRailMode) -> Self {
        Self { rail_mode }
    }

    /// Legalizes all movable cells of an *empty* placement.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::Db`] when `state` is non-empty;
    /// [`LegalizeError::Unplaceable`] when a cell fits nowhere.
    pub fn legalize(
        &self,
        design: &Design,
        state: &mut PlacementState,
    ) -> Result<LegalizeStats, LegalizeError> {
        if state.num_placed() != 0 {
            return Err(LegalizeError::Db(mrl_db::DbError::Invalid(
                "abacus legalization requires an empty placement".into(),
            )));
        }
        let mut stats = LegalizeStats::default();
        // Step 1: freeze multi-row cells greedily (nearest free fit).
        let mut multi: Vec<CellId> = design
            .movable_cells()
            .filter(|&c| design.cell(c).is_multi_row())
            .collect();
        multi.sort_by(|&a, &b| {
            design
                .input_position(a)
                .0
                .total_cmp(&design.input_position(b).0)
        });
        for cell in multi {
            let at = self
                .nearest_free(design, state, cell)
                .ok_or(LegalizeError::Unplaceable {
                    cell,
                    rounds: 0,
                    reason: FailReason::NoInsertionPoint,
                })?;
            let placed = if self.rail_mode.is_aligned() {
                state.place(design, cell, at)
            } else {
                state.place_ignoring_rails(design, cell, at)
            };
            placed.map_err(LegalizeError::Db)?;
            stats.placed += 1;
        }

        // Step 2: Abacus for single-row cells over sub-segments bounded by
        // blockages and the frozen multi-row cells.
        let fp = design.floorplan();
        let aspect = design.grid().aspect();
        let mut rows: Vec<Vec<SubSeg>> = Vec::with_capacity(fp.num_rows() as usize);
        for row in 0..fp.num_rows() {
            let mut subs = Vec::new();
            for (si, seg) in fp.segments_in_row(row).iter().enumerate() {
                let base = fp.row_segment_base(row).expect("row exists");
                let seg_id = mrl_db::SegId::from_usize(base + si);
                let mut cursor = seg.x;
                for &occ in state.segment_cells(seg_id) {
                    let p = state.position(occ).expect("placed");
                    let w = design.cell(occ).width();
                    if p.x > cursor {
                        subs.push(SubSeg {
                            x0: cursor,
                            x1: p.x,
                            clusters: Vec::new(),
                        });
                    }
                    cursor = cursor.max(p.x + w);
                }
                if cursor < seg.right() {
                    subs.push(SubSeg {
                        x0: cursor,
                        x1: seg.right(),
                        clusters: Vec::new(),
                    });
                }
            }
            rows.push(subs);
        }

        let mut singles: Vec<CellId> = design
            .movable_cells()
            .filter(|&c| !design.cell(c).is_multi_row())
            .collect();
        singles.sort_by(|&a, &b| {
            design
                .input_position(a)
                .0
                .total_cmp(&design.input_position(b).0)
        });
        for cell in &singles {
            let c = design.cell(*cell);
            let (fx, fy) = design.input_position(*cell);
            let mut best: Option<(f64, usize, usize)> = None; // cost, row, subseg
            for row in 0..fp.num_rows() {
                let dy = (f64::from(row) - fy).abs() * aspect;
                if let Some((cost, ..)) = best {
                    if dy >= cost {
                        continue;
                    }
                }
                for (si, sub) in rows[row as usize].iter().enumerate() {
                    if let Some(x) = sub.trial(fx, c.width()) {
                        let cost = (x - fx).abs() + dy;
                        if best.is_none_or(|(b, ..)| cost < b) {
                            best = Some((cost, row as usize, si));
                        }
                    }
                }
            }
            let Some((_, row, si)) = best else {
                return Err(LegalizeError::Unplaceable {
                    cell: *cell,
                    rounds: 0,
                    reason: FailReason::NoInsertionPoint,
                });
            };
            rows[row][si].commit(*cell, fx, c.width());
            stats.placed += 1;
            stats.via_mll += 1;
        }

        // Materialize cluster positions into the placement state.
        for (row, subs) in rows.iter().enumerate() {
            for sub in subs {
                for cluster in &sub.clusters {
                    let mut x = cluster.optimal_x(sub.x0, sub.x1).round() as i32;
                    x = x.clamp(sub.x0, sub.x1 - cluster.w);
                    for &(cell, w) in &cluster.cells {
                        let at = SitePoint::new(x, row as i32);
                        let placed = if self.rail_mode.is_aligned() {
                            state.place(design, cell, at)
                        } else {
                            state.place_ignoring_rails(design, cell, at)
                        };
                        placed.map_err(LegalizeError::Db)?;
                        x += w;
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Nearest rail-compatible free footprint to a multi-row cell's input
    /// position, searching rows by vertical distance and scanning free
    /// intervals horizontally.
    fn nearest_free(
        &self,
        design: &Design,
        state: &PlacementState,
        cell: CellId,
    ) -> Option<SitePoint> {
        let fp = design.floorplan();
        let c = design.cell(cell);
        let (fx, fy) = design.input_position(cell);
        let aspect = design.grid().aspect();
        let mut best: Option<(f64, SitePoint)> = None;
        for row in 0..=(fp.num_rows() - c.height()) {
            if self.rail_mode.is_aligned() && !fp.rail_compatible(c.rail(), c.height(), row) {
                continue;
            }
            let dy = (f64::from(row) - fy).abs() * aspect;
            if let Some((cost, _)) = best {
                if dy >= cost {
                    continue;
                }
            }
            // Free intervals of the footprint across all spanned rows.
            let mut free = row_free_intervals(design, state, row);
            for r in row + 1..row + c.height() {
                let other = row_free_intervals(design, state, r);
                free = intersect_intervals(&free, &other);
            }
            for (a, b) in free {
                if b - a < c.width() {
                    continue;
                }
                let x = (fx.round() as i32).clamp(a, b - c.width());
                let cost = (f64::from(x) - fx).abs() + dy;
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, SitePoint::new(x, row)));
                }
            }
        }
        best.map(|(_, p)| p)
    }
}

/// Free `[a, b)` intervals of a row: segment runs minus placed cells.
fn row_free_intervals(design: &Design, state: &PlacementState, row: i32) -> Vec<(i32, i32)> {
    let fp = design.floorplan();
    let mut out = Vec::new();
    for (si, seg) in fp.segments_in_row(row).iter().enumerate() {
        let base = fp.row_segment_base(row).expect("row exists");
        let seg_id = mrl_db::SegId::from_usize(base + si);
        let mut cursor = seg.x;
        for &occ in state.segment_cells(seg_id) {
            let p = state.position(occ).expect("placed");
            if p.x > cursor {
                out.push((cursor, p.x));
            }
            cursor = cursor.max(p.x + design.cell(occ).width());
        }
        if cursor < seg.right() {
            out.push((cursor, seg.right()));
        }
    }
    out
}

/// Intersection of two sorted interval lists.
fn intersect_intervals(a: &[(i32, i32)], b: &[(i32, i32)]) -> Vec<(i32, i32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::DesignBuilder;
    use mrl_geom::SiteRect;
    use mrl_metrics::{check_legal, RailCheck};

    #[test]
    fn intersect_intervals_basics() {
        assert_eq!(intersect_intervals(&[(0, 10)], &[(5, 15)]), vec![(5, 10)]);
        assert_eq!(
            intersect_intervals(&[(0, 4), (6, 10)], &[(2, 8)]),
            vec![(2, 4), (6, 8)]
        );
        assert!(intersect_intervals(&[(0, 3)], &[(3, 6)]).is_empty());
    }

    #[test]
    fn single_row_cluster_packs_overlapping_cells() {
        let mut b = DesignBuilder::new(1, 20);
        for i in 0..4 {
            let c = b.add_cell(format!("c{i}"), 3, 1);
            b.set_input_position(c, 8.0, 0.0);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = AbacusLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert_eq!(stats.placed, 4);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
        // Cells cluster around x = 8 (total width 12 centered-ish).
        let xs: Vec<i32> = state.iter_placed().map(|(_, p)| p.x).collect();
        assert!(xs.iter().all(|&x| (2..=14).contains(&x)));
    }

    #[test]
    fn mixed_heights_legalize_two_step() {
        let mut b = DesignBuilder::new(4, 30);
        for i in 0..4 {
            let c = b.add_cell(format!("d{i}"), 2, 2);
            b.set_input_position(c, 10.0 + i as f64, 1.0);
        }
        for i in 0..8 {
            let c = b.add_cell(format!("s{i}"), 2, 1);
            b.set_input_position(c, 10.0 + 0.5 * i as f64, 2.0);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = AbacusLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert_eq!(stats.placed, 12);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn frozen_multi_row_cells_split_rows_for_abacus() {
        let mut b = DesignBuilder::new(2, 14);
        let m = b.add_cell("m", 4, 2);
        b.set_input_position(m, 5.0, 0.0);
        for i in 0..4 {
            let c = b.add_cell(format!("s{i}"), 3, 1);
            b.set_input_position(c, 5.0 + i as f64, 0.0);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        AbacusLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn respects_blockages() {
        let mut b = DesignBuilder::new(2, 20);
        b.add_blockage(SiteRect::new(8, 0, 4, 2));
        for i in 0..4 {
            let c = b.add_cell(format!("s{i}"), 3, 1);
            b.set_input_position(c, 9.0, 0.5);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        AbacusLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn relaxed_mode_allows_any_row_for_even_cells() {
        let mut b = DesignBuilder::new(3, 10);
        let m = b.add_cell("m", 2, 2);
        b.set_input_position(m, 4.0, 1.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        AbacusLegalizer::with_rail_mode(PowerRailMode::Relaxed)
            .legalize(&design, &mut state)
            .unwrap();
        assert_eq!(state.position(m).unwrap().y, 1);
        assert!(check_legal(&design, &state, RailCheck::Ignore).is_ok());
    }

    #[test]
    fn rejects_preplaced_state() {
        let mut b = DesignBuilder::new(1, 10);
        let c = b.add_cell("a", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, c, SitePoint::new(0, 0)).unwrap();
        assert!(AbacusLegalizer::new()
            .legalize(&design, &mut state)
            .is_err());
    }
}
