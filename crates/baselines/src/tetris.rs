//! Greedy Tetris-style legalization (Hill, US patent 6,370,673 — ref. [7]
//! of the paper).
//!
//! Cells are processed in ascending global-placement x; each is placed at
//! the feasible position nearest its input, subject to `x ≥` the row
//! frontier (the right edge of everything already placed there). Placed
//! cells never move — the property the paper's introduction blames for
//! high displacement in dense designs, and exactly what the comparison
//! bench demonstrates.

use mrl_db::{CellId, Design, PlacementState};
use mrl_geom::SitePoint;
use mrl_legalize::{FailReason, LegalizeError, LegalizeStats, PowerRailMode};

/// Greedy left-to-right legalizer; never moves placed cells.
///
/// # Examples
///
/// ```
/// use mrl_db::{DesignBuilder, PlacementState};
/// use mrl_baselines::TetrisLegalizer;
///
/// let mut b = DesignBuilder::new(2, 20);
/// let c = b.add_cell("c", 3, 1);
/// b.set_input_position(c, 4.3, 0.9);
/// let design = b.finish()?;
/// let mut state = PlacementState::new(&design);
/// TetrisLegalizer::default().legalize(&design, &mut state)?;
/// assert!(state.is_placed(c));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TetrisLegalizer {
    rail_mode: PowerRailMode,
}

impl TetrisLegalizer {
    /// Creates the legalizer with rail alignment enforced.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the legalizer with the given rail handling.
    pub fn with_rail_mode(rail_mode: PowerRailMode) -> Self {
        Self { rail_mode }
    }

    /// Legalizes all movable cells of an *empty* placement.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::Db`] if `state` already contains placed cells (the
    /// frontier bookkeeping assumes it owns the whole placement) and
    /// [`LegalizeError::Unplaceable`] when a cell fits on no row.
    pub fn legalize(
        &self,
        design: &Design,
        state: &mut PlacementState,
    ) -> Result<LegalizeStats, LegalizeError> {
        if state.num_placed() != 0 {
            return Err(LegalizeError::Db(mrl_db::DbError::Invalid(
                "tetris legalization requires an empty placement".into(),
            )));
        }
        let fp = design.floorplan();
        let num_rows = fp.num_rows();
        let aspect = design.grid().aspect();
        // Frontier per row: nothing placed left of it is ever overlapped.
        let mut frontier: Vec<i32> = (0..num_rows).map(|r| fp.rows()[r as usize].x).collect();

        let mut order: Vec<CellId> = design.movable_cells().collect();
        order.sort_by(|&a, &b| {
            design
                .input_position(a)
                .0
                .total_cmp(&design.input_position(b).0)
        });

        let mut stats = LegalizeStats::default();
        for cell in order {
            let c = design.cell(cell);
            let (fx, fy) = design.input_position(cell);
            let mut best: Option<(f64, SitePoint)> = None;
            if num_rows < c.height() {
                return Err(LegalizeError::Unplaceable {
                    cell,
                    rounds: 0,
                    reason: FailReason::NoInsertionPoint,
                });
            }
            for row in 0..=(num_rows - c.height()) {
                if self.rail_mode.is_aligned() && !fp.rail_compatible(c.rail(), c.height(), row) {
                    continue;
                }
                let dy = (f64::from(row) - fy).abs() * aspect;
                if let Some((cost, _)) = best {
                    if dy >= cost {
                        continue; // vertical term alone already loses
                    }
                }
                let start = (row..row + c.height())
                    .map(|r| frontier[r as usize])
                    .max()
                    .expect("height >= 1");
                let desired = fx.round() as i32;
                // Greedy: scan rightward from max(frontier, desired); the
                // classic algorithm accepts the first fit per row.
                let Some(x) = feasible_x(design, row, c.height(), c.width(), start.max(desired))
                else {
                    continue;
                };
                let cost = (f64::from(x) - fx).abs() + dy;
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, SitePoint::new(x, row)));
                }
            }
            let Some((_, at)) = best else {
                return Err(LegalizeError::Unplaceable {
                    cell,
                    rounds: 0,
                    reason: FailReason::NoInsertionPoint,
                });
            };
            let placed = if self.rail_mode.is_aligned() {
                state.place(design, cell, at)
            } else {
                state.place_ignoring_rails(design, cell, at)
            };
            placed.map_err(LegalizeError::Db)?;
            for r in at.y..at.y + c.height() {
                frontier[r as usize] = at.x + c.width();
            }
            stats.placed += 1;
            stats.direct += 1;
        }
        Ok(stats)
    }
}

/// The smallest `x ≥ from` such that a `w × h` footprint with bottom row
/// `row` lies inside segments on every spanned row.
fn feasible_x(design: &Design, row: i32, h: i32, w: i32, from: i32) -> Option<i32> {
    let fp = design.floorplan();
    let mut x = from;
    // Each iteration either returns or advances x to some segment start;
    // segment starts are finite, so this terminates.
    for _ in 0..4 * (fp.segments().len() + 1) {
        let mut bumped = false;
        for r in row..row + h {
            let segs = fp.segments_in_row(r);
            let idx = segs.partition_point(|s| s.right() < x + w);
            let Some(seg) = segs.get(idx) else {
                return None; // no segment can host the span in this row
            };
            if seg.x > x {
                x = seg.x;
                bumped = true;
            }
        }
        if !bumped {
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::DesignBuilder;
    use mrl_geom::SiteRect;
    use mrl_metrics::{check_legal, RailCheck};

    #[test]
    fn places_in_x_order_without_overlap() {
        let mut b = DesignBuilder::new(2, 20);
        for i in 0..6 {
            let c = b.add_cell(format!("c{i}"), 3, 1);
            b.set_input_position(c, 2.0 * i as f64, 0.4);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = TetrisLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert_eq!(stats.placed, 6);
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn dense_row_spills_to_other_rows() {
        let mut b = DesignBuilder::new(3, 12);
        for i in 0..6 {
            let c = b.add_cell(format!("c{i}"), 4, 1);
            b.set_input_position(c, 4.0, 1.0); // all want the same spot
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        TetrisLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
        let rows_used: std::collections::HashSet<i32> =
            state.iter_placed().map(|(_, p)| p.y).collect();
        assert!(rows_used.len() >= 2);
    }

    #[test]
    fn multi_row_cells_update_all_frontiers() {
        let mut b = DesignBuilder::new(2, 20);
        let m = b.add_cell("m", 4, 2);
        let s = b.add_cell("s", 2, 1);
        b.set_input_position(m, 0.0, 0.0);
        b.set_input_position(s, 1.0, 0.0); // would overlap m if frontier ignored
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        TetrisLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
        assert!(state.position(s).unwrap().x >= 4 || state.position(s).unwrap().y == 1);
    }

    #[test]
    fn skips_blockages() {
        let mut b = DesignBuilder::new(1, 20);
        let c0 = b.add_cell("a", 4, 1);
        let c1 = b.add_cell("b", 4, 1);
        b.set_input_position(c0, 3.0, 0.0);
        b.set_input_position(c1, 5.0, 0.0);
        b.add_blockage(SiteRect::new(6, 0, 4, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        TetrisLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap();
        assert!(check_legal(&design, &state, RailCheck::Enforce).is_ok());
    }

    #[test]
    fn rejects_preplaced_state() {
        let mut b = DesignBuilder::new(1, 20);
        let c0 = b.add_cell("a", 4, 1);
        let c1 = b.add_cell("b", 4, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, c0, SitePoint::new(0, 0)).unwrap();
        let err = TetrisLegalizer::new().legalize(&design, &mut state);
        assert!(err.is_err());
        let _ = c1;
    }

    #[test]
    fn unplaceable_cell_reports_error() {
        let mut b = DesignBuilder::new(2, 20);
        let d = b.add_cell("d", 2, 2); // VDD even-height
        b.set_input_position(d, 0.0, 0.0);
        // Block row 0: the only rail-compatible bottom row disappears.
        b.add_blockage(SiteRect::new(0, 0, 20, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let err = TetrisLegalizer::new()
            .legalize(&design, &mut state)
            .unwrap_err();
        assert!(matches!(err, LegalizeError::Unplaceable { .. }));
    }
}
