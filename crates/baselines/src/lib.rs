//! Baseline legalizers for multi-row height standard cell designs.
//!
//! Three comparison points for the MLL algorithm of `mrl-legalize`:
//!
//! * [`IlpLegalizer`] — the paper's quality baseline (Section 6): the same
//!   incremental driver as Algorithm 1, but each local problem is solved
//!   to optimality. Two interchangeable optimal engines are provided: the
//!   faithful mixed-integer program solved with `mrl-ilp` (the paper used
//!   `lpsolve`), and an exhaustive enumeration of all insertion points
//!   under exact evaluation, which provably reaches the same optimum and
//!   runs much faster ([`LocalSolver`]).
//! * [`AbacusLegalizer`] — the classic row-based legalizer
//!   (Spindler et al., ISPD 2008) extended to mixed heights the way the
//!   paper's introduction describes prior work doing: multi-row cells are
//!   pre-placed greedily as macros, then single-row cells are legalized by
//!   Abacus dynamic clustering.
//! * [`TetrisLegalizer`] — the greedy left-to-right legalizer (Hill's
//!   patent, ref. \[7\]) where placed cells never move, which the paper
//!   cites as producing high displacement at high densities.
//!
//! # Examples
//!
//! ```
//! use mrl_db::{DesignBuilder, PlacementState};
//! use mrl_baselines::{IlpLegalizer, LocalSolver};
//! use mrl_legalize::LegalizerConfig;
//!
//! let mut b = DesignBuilder::new(4, 30);
//! for i in 0..6 {
//!     let c = b.add_cell(format!("c{i}"), 3, 1 + (i % 2));
//!     b.set_input_position(c, 10.0 + 0.5 * i as f64, 1.0);
//! }
//! let design = b.finish()?;
//! let mut state = PlacementState::new(&design);
//! let ilp = IlpLegalizer::new(LegalizerConfig::default(), LocalSolver::Milp);
//! let stats = ilp.legalize(&design, &mut state)?;
//! assert_eq!(stats.placed, 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abacus;
mod ilp_local;
mod tetris;

pub use abacus::AbacusLegalizer;
pub use ilp_local::{IlpLegalizer, LocalSolver};
pub use tetris::TetrisLegalizer;

#[doc(hidden)]
pub use ilp_local::{milp_local_cost, mll_exact_outcome};
