//! Parallel windowed legalization driver.
//!
//! The first pass of Algorithm 1 visits every unplaced cell once and runs
//! MLL inside a window of half-width `Rx` around the cell's snapped input
//! position. Two cells whose windows cannot interact can therefore be
//! legalized concurrently. This driver bins unplaced cells into vertical
//! *stripes* of width `W = 2·(Rx + wmax)` (`wmax` = widest movable cell),
//! which guarantees that the *halo* of stripe `i` — the union of every
//! window read or mutated by cells binned to it, `[x_i − Rx − wmax,
//! x_{i+1} + Rx + wmax)` — is disjoint from the halo of stripe `i ± 2`.
//!
//! Scheduling is work-stealing rather than two global waves: even-indexed
//! stripes are ready immediately, and each odd stripe becomes ready the
//! moment both of its even neighbours have *resolved* (finished and had
//! their diff validated against their halo). Workers pull ready stripes
//! from a shared queue, so a slow even stripe never stalls distant work
//! the way a wave barrier would.
//!
//! Workers legalize each stripe against a snapshot of the master placement
//! plus the validated diffs of its even neighbours, and report a per-stripe
//! *diff* (cells placed or shifted). This preserves the wave semantics
//! exactly: a stripe's computation only reads placement state inside its
//! halo, validated non-neighbour diffs are halo-disjoint and therefore
//! unobservable, and a discarded (conflicting) neighbour diff is invisible
//! in both designs. Each stripe's result is thus a pure function of the
//! snapshot and the validated diffs of its even neighbours — independent of
//! thread count and claim order. Diffs are applied to the master in
//! (parity, stripe) order at the end, so **the final placement is
//! bit-identical for any thread count**, including one. A diff that escapes
//! its halo (impossible by construction; checked defensively) is discarded
//! and its stripe's cells join the *residue*: first-pass failures that are
//! handed to the ordinary sequential retry loop with the configured seed.
//!
//! Determinism notes: the parallel phase consumes no randomness (first-pass
//! attempts happen at the snapped input positions); the driver RNG is used
//! only for the `Shuffled` cell order and the sequential retry loop, both
//! of which are independent of the thread count.

use crate::legalizer::{LegalizeError, LegalizeStats, Legalizer};
use crate::mll::mll_transacted_traced;
use crate::scratch::ScratchArena;
use crate::timing::PhaseTimes;
use mrl_db::{CellId, DbError, Design, PlacementState};
use mrl_geom::SitePoint;
use mrl_trace::{FailCounts, FailReason, NoopSink, RingSink, Sink, TraceBuf};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// One cell's placement change within a stripe.
#[derive(Clone, Copy, Debug)]
struct DiffEntry {
    cell: CellId,
    /// Position before the stripe ran (`None` = unplaced).
    old: Option<SitePoint>,
    /// Position after the stripe ran.
    new: SitePoint,
}

/// Everything a worker reports for one stripe. The stripe index itself is
/// the slot in [`Sched::results`].
#[derive(Debug)]
struct StripeResult<S> {
    diff: Vec<DiffEntry>,
    /// Cells the first-pass attempt could not place, in visit order, with
    /// the failure reason of the attempt.
    failed: Vec<(CellId, FailReason)>,
    direct: usize,
    via_mll: usize,
    mll_calls: usize,
    phases: PhaseTimes,
    fail_counts: FailCounts,
    /// The stripe's event sink (one lane per stripe); absorbed into the
    /// caller's buffer in stripe order at the wave barrier so the merged
    /// trace is independent of the thread count.
    sink: S,
    /// A database error inside the worker (indicates a bug); the stripe's
    /// diff is discarded and the error propagated at the merge.
    error: Option<DbError>,
    /// Set at the merge when the diff escaped the stripe halo.
    conflicted: bool,
}

impl<S> StripeResult<S> {
    fn empty(sink: S) -> Self {
        StripeResult {
            diff: Vec::new(),
            failed: Vec::new(),
            direct: 0,
            via_mll: 0,
            mll_calls: 0,
            phases: PhaseTimes::enabled(),
            fail_counts: FailCounts::default(),
            sink,
            error: None,
            conflicted: false,
        }
    }
}

/// Shared scheduler state (one mutex): the ready queue, the per-odd-stripe
/// dependency counters, finished stripe results, and the resolution
/// verdicts of even stripes (`Some(Some(diff))` = validated, `Some(None)` =
/// discarded, `None` = not yet resolved).
struct Sched<S> {
    ready: VecDeque<usize>,
    /// Stripes not yet claimed by a worker; 0 means workers may exit.
    unclaimed: usize,
    deps_left: Vec<u8>,
    results: Vec<Option<StripeResult<S>>>,
    resolved: Vec<Option<Option<Arc<Vec<DiffEntry>>>>>,
}

impl Legalizer {
    /// Legalizes every unplaced movable cell like
    /// [`legalize`](Legalizer::legalize), running the first pass over
    /// vertical stripes on up to `threads` worker threads.
    ///
    /// The final placement depends only on the configuration and seed, not
    /// on `threads`: any thread count (including 1) produces bit-identical
    /// positions. Note the stripe schedule visits cells in a different
    /// order than the sequential driver, so `legalize_parallel(…, 1)` —
    /// not [`legalize`](Legalizer::legalize) — is the reference for
    /// equality tests.
    ///
    /// # Errors
    ///
    /// Same as [`legalize`](Legalizer::legalize).
    pub fn legalize_parallel(
        &self,
        design: &Design,
        state: &mut PlacementState,
        threads: usize,
    ) -> Result<LegalizeStats, LegalizeError> {
        let (stats, result) =
            self.parallel_impl(design, state, threads, &|_| NoopSink, &mut |_| {});
        result.map(|()| stats)
    }

    /// [`legalize_parallel`](Legalizer::legalize_parallel) with structured
    /// events collected into `buf`.
    ///
    /// Each stripe writes into its own lane (`stripe index + 1`); the
    /// driver — first-pass bookkeeping and the sequential retry loop —
    /// writes into lane 0. Per-stripe sinks are absorbed into `buf` in
    /// stripe order at each wave barrier, so the event sequence (and every
    /// derived counter or histogram) is identical for any thread count;
    /// only timestamps vary. Stats are returned alongside the outcome so
    /// diagnostics survive a failed run.
    pub fn legalize_parallel_traced(
        &self,
        design: &Design,
        state: &mut PlacementState,
        threads: usize,
        buf: &mut TraceBuf,
    ) -> (LegalizeStats, Result<(), LegalizeError>) {
        let epoch = buf.epoch();
        let cap = buf.lane_capacity();
        self.parallel_impl(
            design,
            state,
            threads,
            &move |lane| RingSink::new(lane, cap, epoch),
            &mut |sink| buf.absorb(sink),
        )
    }

    /// Shared driver body, generic over the sink. `make_sink` is invoked
    /// with the lane number (stripe index + 1 for workers, 0 for the
    /// driver); `collect` receives every kept sink in deterministic order.
    fn parallel_impl<S, F>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        threads: usize,
        make_sink: &F,
        collect: &mut dyn FnMut(S),
    ) -> (LegalizeStats, Result<(), LegalizeError>)
    where
        S: Sink + Send,
        F: Fn(u32) -> S + Sync,
    {
        let wall = std::time::Instant::now();
        let threads = threads.max(1);
        let cfg = self.config();
        let mut stats = LegalizeStats {
            phases: PhaseTimes::enabled(),
            threads,
            ..LegalizeStats::default()
        };
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let unplaced = self.ordered_unplaced(design, state, &mut rng);
        if unplaced.is_empty() {
            stats.wall = wall.elapsed();
            return (stats, Ok(()));
        }

        // Stripe geometry. `wmax` ranges over all movable cells: any of
        // them may be shifted by an MLL realization.
        let wmax = design
            .movable_cells()
            .map(|c| design.cell(c).width())
            .max()
            .unwrap_or(1);
        let bounds = design.floorplan().bounds();
        let stripe_w = (2 * (cfg.rx + wmax)).max(1);
        let nstripes = ((bounds.w + stripe_w - 1) / stripe_w).max(1) as usize;

        // Bin by snapped first-pass position; order within a stripe is the
        // global visiting order.
        let mut stripes: Vec<Vec<CellId>> = vec![Vec::new(); nstripes];
        for &cell in &unplaced {
            let (fx, fy) = design.input_position(cell);
            let pos = self.snap(design, cell, fx, fy);
            let idx = (((pos.x - bounds.x) / stripe_w).max(0) as usize).min(nstripes - 1);
            stripes[idx].push(cell);
        }
        stats.stripes = stripes.iter().filter(|s| !s.is_empty()).count();

        let active: Vec<bool> = stripes.iter().map(|s| !s.is_empty()).collect();
        let total = stats.stripes;
        let halo_of = |i: usize| {
            let x0 = bounds.x + i as i32 * stripe_w;
            (x0 - cfg.rx - wmax, x0 + stripe_w + cfg.rx + wmax)
        };
        // Dependency-resolved work-stealing schedule: even stripes are
        // ready at once; odd stripe `i` becomes ready when its active even
        // neighbours (`i ± 1`) have resolved. The wave structure is thus a
        // special case (every even before every odd), but workers here flow
        // straight into ready odd stripes instead of idling at a barrier.
        let even_neighbors = |i: usize| {
            [i.checked_sub(1), Some(i + 1)]
                .into_iter()
                .flatten()
                .filter(|&j| j < nstripes && active[j])
                .collect::<Vec<usize>>()
        };
        let mut sched = Sched::<S> {
            ready: VecDeque::new(),
            unclaimed: total,
            deps_left: vec![0; nstripes],
            results: (0..nstripes).map(|_| None).collect(),
            resolved: vec![None; nstripes],
        };
        for (i, &is_active) in active.iter().enumerate() {
            if !is_active {
                continue;
            }
            if i % 2 == 0 {
                sched.ready.push_back(i);
            } else {
                sched.deps_left[i] = even_neighbors(i).len() as u8;
                if sched.deps_left[i] == 0 {
                    sched.ready.push_back(i);
                }
            }
        }
        let sched = Mutex::new(sched);
        let cv = Condvar::new();
        let workers = threads.min(total);
        let master: &PlacementState = state;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Per-worker reusable state: one scratch arena, one
                    // placement snapshot, and the set of stripe diffs
                    // (own runs + applied neighbour diffs) the snapshot
                    // has absorbed since it was cloned.
                    let mut arena = ScratchArena::new();
                    let mut local: Option<PlacementState> = None;
                    let mut has: Vec<usize> = Vec::new();
                    loop {
                        // Claim a ready stripe, with the validated diffs of
                        // its even neighbours (resolved by construction).
                        let (t, wanted) = {
                            let mut g = sched.lock().unwrap();
                            let t = loop {
                                if g.unclaimed == 0 {
                                    return;
                                }
                                if let Some(t) = g.ready.pop_front() {
                                    g.unclaimed -= 1;
                                    break t;
                                }
                                g = cv.wait(g).unwrap();
                            };
                            let mut wanted: Vec<(usize, Arc<Vec<DiffEntry>>)> = Vec::new();
                            if t % 2 == 1 {
                                for j in even_neighbors(t) {
                                    let outcome =
                                        g.resolved[j].as_ref().expect("dependency resolved");
                                    if let Some(diff) = outcome {
                                        wanted.push((j, Arc::clone(diff)));
                                    }
                                }
                            }
                            (t, wanted)
                        };
                        // The snapshot is reusable iff it has not absorbed
                        // this stripe's own diff nor a neighbour diff
                        // outside the wanted set; everything further away
                        // is halo-disjoint and unobservable.
                        let reuse = local.is_some()
                            && !has.contains(&t)
                            && has.iter().all(|&h| {
                                (h + 1 != t && h != t + 1) || wanted.iter().any(|&(j, _)| j == h)
                            });
                        if !reuse {
                            local = Some(master.clone());
                            has.clear();
                        }
                        let lstate = local.as_mut().expect("snapshot prepared");
                        let mut prep_error: Option<DbError> = None;
                        for (j, diff) in &wanted {
                            if has.contains(j) {
                                continue;
                            }
                            if let Err(e) = self.apply_diff(design, lstate, diff) {
                                prep_error = Some(e);
                                break;
                            }
                            has.push(*j);
                        }
                        has.push(t);
                        let mut res = if let Some(e) = prep_error {
                            // Applying a validated diff can only fail on an
                            // internal inconsistency; report it via the
                            // stripe result like any worker error.
                            let mut r = StripeResult::empty(make_sink(t as u32 + 1));
                            r.error = Some(e);
                            r
                        } else {
                            self.run_stripe(
                                design,
                                lstate,
                                &stripes[t],
                                &mut arena,
                                make_sink(t as u32 + 1),
                            )
                        };
                        // Resolve: even stripes validate eagerly so their
                        // dependants can start; the merge reuses this
                        // verdict (the check is a pure function).
                        let mut g = sched.lock().unwrap();
                        if t % 2 == 0 {
                            let outcome = (res.error.is_none()
                                && diff_within_halo(design, &res.diff, halo_of(t)))
                            .then(|| Arc::new(std::mem::take(&mut res.diff)));
                            g.resolved[t] = Some(outcome);
                            for j in [t.checked_sub(1), Some(t + 1)].into_iter().flatten() {
                                if j < nstripes && active[j] && j % 2 == 1 {
                                    g.deps_left[j] -= 1;
                                    if g.deps_left[j] == 0 {
                                        g.ready.push_back(j);
                                    }
                                }
                            }
                        }
                        g.results[t] = Some(res);
                        cv.notify_all();
                    }
                });
            }
        });

        // Merge in (parity, stripe) order — the exact order the two-wave
        // scheduler used — so master mutations, statistics, residue, and
        // trace-event order are independent of claim order and threads.
        let sched = sched.into_inner().unwrap();
        let mut residue: Vec<(CellId, FailReason)> = Vec::new();
        let mut results = sched.results;
        for parity in 0..2usize {
            for t in (0..nstripes).filter(|&i| i % 2 == parity && active[i]) {
                let mut res = results[t].take().expect("stripe ran");
                if let Some(e) = res.error {
                    stats.wall = wall.elapsed();
                    return (stats, Err(e.into()));
                }
                if parity == 0 {
                    // Reuse the eager validation verdict.
                    match sched.resolved[t]
                        .as_ref()
                        .expect("even stripe resolved")
                        .as_ref()
                    {
                        Some(diff) => res.diff = diff.to_vec(),
                        None => {
                            res.diff.clear();
                            res.conflicted = true;
                        }
                    }
                } else {
                    res.conflicted = !diff_within_halo(design, &res.diff, halo_of(t));
                }
                if res.conflicted {
                    // Boundary conflict: discard the stripe wholesale —
                    // diff, events, and tallies — and re-legalize its cells
                    // sequentially. The reason is a placeholder: it only
                    // surfaces if the retry budget is zero, and the retry
                    // loop refreshes it on every real attempt.
                    stats.conflicts += 1;
                    residue.extend(
                        stripes[t]
                            .iter()
                            .map(|&c| (c, FailReason::NoInsertionPoint)),
                    );
                    continue;
                }
                if let Err(e) = self.apply_diff(design, state, &res.diff) {
                    stats.wall = wall.elapsed();
                    return (stats, Err(e.into()));
                }
                stats.placed += res.diff.iter().filter(|d| d.old.is_none()).count();
                stats.direct += res.direct;
                stats.via_mll += res.via_mll;
                stats.mll_calls += res.mll_calls;
                stats.phases.merge(&res.phases);
                stats.fail_counts.merge(&res.fail_counts);
                residue.extend_from_slice(&res.failed);
                collect(res.sink);
            }
        }

        stats.residue = residue.len();
        let mut arena = ScratchArena::new();
        let mut driver_sink = make_sink(0);
        let result = self.retry_loop(
            design,
            state,
            residue,
            &mut stats,
            &mut rng,
            &mut arena,
            &mut driver_sink,
        );
        collect(driver_sink);
        stats.wall = wall.elapsed();
        (stats, result)
    }

    /// First-pass legalization of one stripe's cells against `local`,
    /// collecting the placement diff instead of touching the master.
    fn run_stripe<S: Sink>(
        &self,
        design: &Design,
        local: &mut PlacementState,
        cells: &[CellId],
        arena: &mut ScratchArena,
        sink: S,
    ) -> StripeResult<S> {
        let cfg = self.config();
        let mut res = StripeResult::empty(sink);
        if S::ENABLED {
            res.sink.counter("stripe.cells", cells.len() as u64);
        }
        // cell -> index into res.diff; keeps the *first* old position when
        // a cell is touched repeatedly within the stripe.
        let mut touched: HashMap<CellId, usize> = HashMap::new();
        let mut record =
            |diff: &mut Vec<DiffEntry>, cell: CellId, old: Option<SitePoint>, new| match touched
                .entry(cell)
            {
                std::collections::hash_map::Entry::Occupied(e) => diff[*e.get()].new = new,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(diff.len());
                    diff.push(DiffEntry { cell, old, new });
                }
            };
        for &cell in cells {
            let (fx, fy) = design.input_position(cell);
            let pos = self.snap(design, cell, fx, fy);
            let direct = if cfg.rail_mode.is_aligned() {
                local.place(design, cell, pos)
            } else {
                local.place_ignoring_rails(design, cell, pos)
            };
            match direct {
                Ok(()) => {
                    res.direct += 1;
                    if S::ENABLED {
                        let c = design.cell(cell);
                        res.sink.attempt(mrl_trace::AttemptRecord {
                            cell: cell.index() as u32,
                            height: c.height() as u8,
                            retry_round: 0,
                            window: [
                                pos.x - cfg.rx,
                                pos.y - cfg.ry,
                                2 * cfg.rx + c.width(),
                                2 * cfg.ry + c.height(),
                            ],
                            region_cells: 0,
                            combos_generated: 0,
                            combos_pruned: 0,
                            combos_evaluated: 0,
                            outcome: mrl_trace::AttemptOutcome::Direct { x: pos.x, y: pos.y },
                        });
                    }
                    record(&mut res.diff, cell, None, pos);
                }
                Err(DbError::AlreadyPlaced(c)) => {
                    res.error = Some(DbError::AlreadyPlaced(c));
                    return res;
                }
                Err(_) => {
                    res.mll_calls += 1;
                    match mll_transacted_traced(
                        design,
                        local,
                        cfg,
                        cell,
                        pos,
                        &mut res.phases,
                        arena,
                        &mut res.sink,
                        0,
                    ) {
                        Ok(Ok(tx)) => {
                            res.via_mll += 1;
                            for &(moved, old_x) in &tx.undo_moves {
                                let now = local.position(moved).expect("shifted cell is placed");
                                record(
                                    &mut res.diff,
                                    moved,
                                    Some(SitePoint::new(old_x, now.y)),
                                    now,
                                );
                            }
                            record(&mut res.diff, cell, None, tx.placed_at);
                        }
                        Ok(Err(reason)) => {
                            res.fail_counts.record(reason);
                            res.failed.push((cell, reason));
                        }
                        Err(e) => {
                            res.error = Some(e);
                            return res;
                        }
                    }
                }
            }
        }
        // Drop no-op entries (a neighbour shifted away and back) and make
        // the order canonical for the halo check and master apply.
        res.diff.retain(|d| d.old != Some(d.new));
        res.diff.sort_by_key(|d| d.cell);
        res
    }

    /// Applies one validated stripe diff to the master state: neighbour
    /// shifts as a batch, then the newly placed cells.
    fn apply_diff(
        &self,
        design: &Design,
        state: &mut PlacementState,
        diff: &[DiffEntry],
    ) -> Result<(), DbError> {
        let moves: Vec<(CellId, i32)> = diff
            .iter()
            .filter(|d| d.old.is_some())
            .map(|d| (d.cell, d.new.x))
            .collect();
        if !moves.is_empty() {
            state.shift_batch(design, &moves)?;
        }
        for d in diff.iter().filter(|d| d.old.is_none()) {
            if self.config().rail_mode.is_aligned() {
                state.place(design, d.cell, d.new)?;
            } else {
                state.place_ignoring_rails(design, d.cell, d.new)?;
            }
        }
        Ok(())
    }
}

/// True if every footprint the diff touches (old and new) lies within
/// `halo = [lo, hi)` horizontally and shifts stay on their row.
fn diff_within_halo(design: &Design, diff: &[DiffEntry], halo: (i32, i32)) -> bool {
    diff.iter().all(|d| {
        let w = design.cell(d.cell).width();
        let span_ok = |p: SitePoint| p.x >= halo.0 && p.x + w <= halo.1;
        span_ok(d.new)
            && match d.old {
                Some(old) => span_ok(old) && old.y == d.new.y,
                None => true,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CellOrder, LegalizerConfig, PowerRailMode};
    use mrl_db::DesignBuilder;

    fn clustered_design(cols: i32, rows: i32, cells: usize) -> Design {
        let mut b = DesignBuilder::new(rows, cols);
        for i in 0..cells {
            let w = 2 + (i % 3) as i32;
            let h = 1 + (i % 2) as i32;
            let c = b.add_cell(format!("c{i}"), w, h);
            // Deterministic pseudo-random clustering without an RNG.
            let x = ((i as f64 * 37.7) % f64::from(cols - 6)).abs();
            let y = ((i as f64 * 11.3) % f64::from(rows - 2)).abs();
            b.set_input_position(c, x, y);
        }
        b.finish().unwrap()
    }

    fn positions(state: &PlacementState) -> Vec<(CellId, SitePoint)> {
        let mut v: Vec<_> = state.iter_placed().collect();
        v.sort();
        v
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let design = clustered_design(160, 8, 120);
        let lg = Legalizer::new(LegalizerConfig::default().with_window(10, 3));
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let mut state = PlacementState::new(&design);
            let stats = lg.legalize_parallel(&design, &mut state, threads).unwrap();
            assert_eq!(stats.placed, 120, "threads {threads}");
            assert_eq!(stats.threads, threads);
            assert!(stats.stripes > 1, "want a multi-stripe schedule");
            let got = positions(&state);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(want, &got, "threads {threads} diverged"),
            }
        }
    }

    #[test]
    fn parallel_matches_on_shuffled_order() {
        let design = clustered_design(120, 6, 60);
        let cfg = LegalizerConfig::default()
            .with_window(8, 2)
            .with_order(CellOrder::Shuffled)
            .with_rail_mode(PowerRailMode::Relaxed);
        let lg = Legalizer::new(cfg);
        let mut a = PlacementState::new(&design);
        let mut b = PlacementState::new(&design);
        lg.legalize_parallel(&design, &mut a, 1).unwrap();
        lg.legalize_parallel(&design, &mut b, 3).unwrap();
        assert_eq!(positions(&a), positions(&b));
    }

    #[test]
    fn respects_preplaced_cells() {
        let mut b = DesignBuilder::new(2, 60);
        let pre = b.add_cell("pre", 4, 1);
        let mut movers = Vec::new();
        for i in 0..6 {
            let c = b.add_cell(format!("m{i}"), 3, 1);
            b.set_input_position(c, 10.0 + i as f64, 0.0);
            movers.push(c);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, pre, SitePoint::new(12, 0)).unwrap();
        let stats = Legalizer::default()
            .legalize_parallel(&design, &mut state, 2)
            .unwrap();
        assert_eq!(stats.placed, 6);
        assert!(state.is_placed(pre));
        assert_eq!(state.num_placed(), 7);
    }

    #[test]
    fn empty_design_is_a_noop() {
        let design = DesignBuilder::new(2, 20).finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = Legalizer::default()
            .legalize_parallel(&design, &mut state, 4)
            .unwrap();
        assert_eq!(stats.placed, 0);
        assert_eq!(stats.stripes, 0);
    }

    #[test]
    fn stats_account_for_all_cells() {
        let design = clustered_design(100, 4, 50);
        let lg = Legalizer::new(LegalizerConfig::default().with_window(12, 2));
        let mut state = PlacementState::new(&design);
        let stats = lg.legalize_parallel(&design, &mut state, 4).unwrap();
        assert_eq!(stats.placed, 50);
        assert_eq!(state.num_placed(), 50);
        assert!(stats.phases.is_enabled());
        assert!(stats.wall.as_nanos() > 0);
    }
}
