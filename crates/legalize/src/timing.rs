//! Per-phase wall-clock accounting — compatibility re-export.
//!
//! [`PhaseTimes`] and [`Phase`] moved to the `mrl-trace` crate (which sits
//! below this one so the bench/CLI consumers can use them without a
//! dependency cycle). This module keeps the historical
//! `mrl_legalize::timing::{Phase, PhaseTimes}` paths working; the types
//! are identical.

pub use mrl_trace::{Phase, PhaseTimes};
