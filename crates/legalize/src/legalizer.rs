//! The legalization driver (Algorithm 1 of the paper).
//!
//! Every movable cell is visited once and placed at the site-aligned,
//! rail-compatible position nearest its global-placement input; cells whose
//! direct placement overlaps trigger [`mll`]. Cells that still fail are
//! retried with uniformly random offsets whose radius grows with the
//! iteration number (`Rand_x(k) ∈ [−Rx·(k−1), Rx·(k−1)]`, similarly for y)
//! until everything is placed.

use crate::config::{CellOrder, LegalizerConfig};
use crate::mll::mll_transacted_traced;
use crate::scratch::ScratchArena;
use crate::timing::{Phase, PhaseTimes};
use mrl_db::{CellId, DbError, Design, PlacementState};
use mrl_geom::SitePoint;
use mrl_trace::{
    AttemptOutcome, AttemptRecord, EscalationCounters, FailCounts, FailReason, NoopSink, Sink,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Counters describing one legalization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LegalizeStats {
    /// Cells placed (movable cells that were unplaced at entry).
    pub placed: usize,
    /// Cells placed directly at their snapped position without MLL.
    pub direct: usize,
    /// Cells placed by MLL.
    pub via_mll: usize,
    /// Number of retry rounds (`k` at loop exit; 0 when the first pass
    /// placed everything).
    pub retry_rounds: u32,
    /// Total MLL invocations, including failed ones.
    pub mll_calls: usize,
    /// Per-phase wall-clock breakdown (extract / enumerate / evaluate /
    /// realize / retry). In the parallel driver this is the *sum* over
    /// workers, so phase time can exceed [`LegalizeStats::wall`].
    pub phases: PhaseTimes,
    /// End-to-end wall time of the driver.
    pub wall: Duration,
    /// Worker threads used (1 for the sequential driver).
    pub threads: usize,
    /// Vertical stripes formed by the parallel driver (0 when sequential).
    pub stripes: usize,
    /// Stripes whose results were discarded because a move escaped the
    /// stripe halo (their cells were re-legalized sequentially).
    pub conflicts: usize,
    /// Cells that fell through the parallel phase (first-pass failures plus
    /// conflicting stripes) and were handled by the sequential retry pass.
    pub residue: usize,
    /// Failure-reason tallies. `no_insertion_point` and
    /// `region_extraction_empty` count failed *attempts* (a cell retried 3
    /// times contributes 3); `retry_budget_exhausted` counts *cells* still
    /// unplaced when the retry budget ran out.
    pub fail_counts: FailCounts,
    /// Escalation-tier engagement and success counters (see
    /// [`crate::EscalationConfig`]). All zero when escalation never
    /// engaged.
    pub escalation: EscalationCounters,
}

/// Error returned when legalization cannot complete.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LegalizeError {
    /// A cell exhausted the retry budget.
    Unplaceable {
        /// The offending cell.
        cell: CellId,
        /// Retry rounds performed.
        rounds: u32,
        /// Why the cell could not be placed. The core drivers report the
        /// cell's last per-attempt reason (no-insertion-point or
        /// region-extraction-empty); drivers that do not track per-attempt
        /// reasons use [`FailReason::RetryBudgetExhausted`].
        reason: FailReason,
    },
    /// A database inconsistency surfaced mid-run (indicates a bug).
    Db(DbError),
}

impl LegalizeError {
    /// The cell the failure is attributable to, when there is one.
    /// Failure reports (e.g. the fuzz harness) use this to name the
    /// offending cell without matching on the variant.
    pub fn cell(&self) -> Option<CellId> {
        match self {
            LegalizeError::Unplaceable { cell, .. } => Some(*cell),
            LegalizeError::Db(_) => None,
        }
    }
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::Unplaceable {
                cell,
                rounds,
                reason,
            } => {
                write!(
                    f,
                    "cell {cell} could not be placed after {rounds} retry rounds (last failure: {reason})"
                )
            }
            LegalizeError::Db(e) => write!(f, "database error during legalization: {e}"),
        }
    }
}

impl Error for LegalizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LegalizeError::Db(e) => Some(e),
            LegalizeError::Unplaceable { .. } => None,
        }
    }
}

impl From<DbError> for LegalizeError {
    fn from(e: DbError) -> Self {
        LegalizeError::Db(e)
    }
}

/// The multi-row legalizer (Algorithm 1 wrapping MLL).
///
/// See the [crate-level example](crate) for typical use.
#[derive(Clone, Debug)]
pub struct Legalizer {
    cfg: LegalizerConfig,
}

impl Legalizer {
    /// Creates a legalizer with the given configuration.
    pub fn new(cfg: LegalizerConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LegalizerConfig {
        &self.cfg
    }

    /// Snaps a fractional-site position to the nearest site-aligned,
    /// rail-compatible, in-bounds position for `cell`.
    pub fn snap(&self, design: &Design, cell: CellId, fx: f64, fy: f64) -> SitePoint {
        let c = design.cell(cell);
        let fp = design.floorplan();
        let bounds = fp.bounds();
        // Fence members aim at their region's bounding box so the local
        // window lands where legal positions exist.
        let (fx, fy) = match design.region_of(cell) {
            Some(r) => {
                let rb = design.region(r).bounds();
                (
                    fx.clamp(
                        f64::from(rb.x),
                        f64::from((rb.right() - c.width()).max(rb.x)),
                    ),
                    fy.clamp(
                        f64::from(rb.y),
                        f64::from((rb.top() - c.height()).max(rb.y)),
                    ),
                )
            }
            None => (fx, fy),
        };
        let x = (fx.round() as i32).clamp(bounds.x, (bounds.right() - c.width()).max(bounds.x));
        let max_row = (fp.num_rows() - c.height()).max(0);
        let row0 = (fy.round() as i32).clamp(0, max_row);
        let row = if self.cfg.rail_mode.is_aligned() {
            // Walk outward from row0 to the nearest compatible row.
            (0..=max_row)
                .map(|d| [row0 - d, row0 + d])
                .flat_map(|c| c.into_iter())
                .find(|&r| {
                    (0..=max_row).contains(&r) && fp.rail_compatible(c.rail(), c.height(), r)
                })
                .unwrap_or(row0)
        } else {
            row0
        };
        SitePoint::new(x, row)
    }

    /// One placement attempt for an unplaced cell at a fractional-site
    /// position: direct placement if the snapped footprint is free,
    /// otherwise MLL. Returns whether the cell is now placed.
    ///
    /// # Errors
    ///
    /// Propagates database errors (e.g. the cell is already placed).
    pub fn try_place(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cell: CellId,
        fx: f64,
        fy: f64,
        stats: &mut LegalizeStats,
    ) -> Result<bool, LegalizeError> {
        self.try_place_in(design, state, cell, fx, fy, stats, &mut ScratchArena::new())
    }

    /// [`try_place`](Legalizer::try_place) against a caller-owned
    /// [`ScratchArena`], the drivers' steady-state entry point.
    ///
    /// # Errors
    ///
    /// Same as [`try_place`](Legalizer::try_place).
    #[allow(clippy::too_many_arguments)]
    pub fn try_place_in(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cell: CellId,
        fx: f64,
        fy: f64,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
    ) -> Result<bool, LegalizeError> {
        Ok(self
            .try_place_traced(design, state, cell, fx, fy, stats, arena, &mut NoopSink, 0)?
            .is_none())
    }

    /// [`try_place_in`](Legalizer::try_place_in) with a structured-event
    /// [`Sink`] and an explicit failure reason. Returns `Ok(None)` when the
    /// cell is now placed and `Ok(Some(reason))` when it is not; the reason
    /// is also tallied into `stats.fail_counts`. `round` is diagnostic only
    /// (0 = first pass, `k` = retry round `k`).
    #[allow(clippy::too_many_arguments)]
    fn try_place_traced<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cell: CellId,
        fx: f64,
        fy: f64,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<Option<FailReason>, LegalizeError> {
        let pos = self.snap(design, cell, fx, fy);
        let direct = if self.cfg.rail_mode.is_aligned() {
            state.place(design, cell, pos)
        } else {
            state.place_ignoring_rails(design, cell, pos)
        };
        match direct {
            Ok(()) => {
                stats.direct += 1;
                stats.placed += 1;
                if S::ENABLED {
                    let c = design.cell(cell);
                    sink.attempt(AttemptRecord {
                        cell: cell.index() as u32,
                        height: c.height() as u8,
                        retry_round: round,
                        window: [
                            pos.x - self.cfg.rx,
                            pos.y - self.cfg.ry,
                            2 * self.cfg.rx + c.width(),
                            2 * self.cfg.ry + c.height(),
                        ],
                        region_cells: 0,
                        combos_generated: 0,
                        combos_pruned: 0,
                        combos_evaluated: 0,
                        outcome: AttemptOutcome::Direct { x: pos.x, y: pos.y },
                    });
                }
                Ok(None)
            }
            Err(DbError::AlreadyPlaced(c)) => Err(DbError::AlreadyPlaced(c).into()),
            Err(_) => {
                stats.mll_calls += 1;
                match mll_transacted_traced(
                    design,
                    state,
                    &self.cfg,
                    cell,
                    pos,
                    &mut stats.phases,
                    arena,
                    sink,
                    round,
                )? {
                    Ok(_) => {
                        stats.via_mll += 1;
                        stats.placed += 1;
                        Ok(None)
                    }
                    Err(reason) => {
                        stats.fail_counts.record(reason);
                        Ok(Some(reason))
                    }
                }
            }
        }
    }

    /// Legalizes every unplaced movable cell of the design (Algorithm 1).
    /// Already placed cells are kept and respected.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::Unplaceable`] if a cell exhausts the retry budget
    /// (`max_retry_iters`); [`LegalizeError::Db`] on internal
    /// inconsistencies.
    pub fn legalize(
        &self,
        design: &Design,
        state: &mut PlacementState,
    ) -> Result<LegalizeStats, LegalizeError> {
        let (stats, result) = self.legalize_traced(design, state, &mut NoopSink);
        result.map(|()| stats)
    }

    /// [`legalize`](Legalizer::legalize) with a structured-event [`Sink`].
    ///
    /// Returns the stats *alongside* the outcome (instead of inside it) so
    /// diagnostics — failure-reason tallies, phase times, attempt records
    /// already emitted into `sink` — survive a failed run. With
    /// [`NoopSink`] this is exactly `legalize` (the sink calls compile
    /// away).
    pub fn legalize_traced<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        sink: &mut S,
    ) -> (LegalizeStats, Result<(), LegalizeError>) {
        let wall = std::time::Instant::now();
        let mut stats = LegalizeStats {
            phases: PhaseTimes::enabled(),
            threads: 1,
            ..LegalizeStats::default()
        };
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut arena = ScratchArena::new();
        let unplaced = self.ordered_unplaced(design, state, &mut rng);

        // First pass at the input positions (lines 2–7).
        let mut remaining = Vec::new();
        for cell in unplaced {
            let (fx, fy) = design.input_position(cell);
            match self
                .try_place_traced(design, state, cell, fx, fy, &mut stats, &mut arena, sink, 0)
            {
                Ok(None) => {}
                Ok(Some(reason)) => remaining.push((cell, reason)),
                Err(e) => {
                    stats.wall = wall.elapsed();
                    return (stats, Err(e));
                }
            }
        }

        let result = self.retry_loop(
            design, state, remaining, &mut stats, &mut rng, &mut arena, sink,
        );
        stats.wall = wall.elapsed();
        (stats, result)
    }

    /// Re-legalizes a caller-chosen set of currently unplaced cells at
    /// their design input positions, leaving every other cell's membership
    /// in the placement untouched — the windowed re-entry point the
    /// incremental ECO engine (`mrl-eco`) drives after unplacing only the
    /// cells an edit batch disturbs. The subset runs the same ladder as a
    /// full [`legalize`](Legalizer::legalize): a first pass at the input
    /// positions, then the random-offset retry loop with escalation.
    /// Already-placed cells in `cells` are skipped.
    ///
    /// # Errors
    ///
    /// Same as [`legalize`](Legalizer::legalize).
    pub fn legalize_subset(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cells: &[CellId],
    ) -> Result<LegalizeStats, LegalizeError> {
        let mut arena = ScratchArena::new();
        let (stats, result) =
            self.legalize_subset_in(design, state, cells, &mut arena, &mut NoopSink);
        result.map(|()| stats)
    }

    /// [`legalize_subset`](Legalizer::legalize_subset) against a
    /// caller-owned [`ScratchArena`] and structured-event [`Sink`] — the
    /// ECO session's steady-state entry point, so arena pools and trace
    /// lanes are reused across batches with no rebuild. Stats are returned
    /// alongside the outcome so a failed batch still reports its work.
    pub fn legalize_subset_in<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cells: &[CellId],
        arena: &mut ScratchArena,
        sink: &mut S,
    ) -> (LegalizeStats, Result<(), LegalizeError>) {
        let wall = std::time::Instant::now();
        let mut stats = LegalizeStats {
            phases: PhaseTimes::enabled(),
            threads: 1,
            ..LegalizeStats::default()
        };
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut remaining = Vec::new();
        for &cell in cells {
            if state.is_placed(cell) {
                continue;
            }
            let (fx, fy) = design.input_position(cell);
            match self.try_place_traced(design, state, cell, fx, fy, &mut stats, arena, sink, 0) {
                Ok(None) => {}
                Ok(Some(reason)) => remaining.push((cell, reason)),
                Err(e) => {
                    stats.wall = wall.elapsed();
                    return (stats, Err(e));
                }
            }
        }
        let result = self.retry_loop(design, state, remaining, &mut stats, &mut rng, arena, sink);
        stats.wall = wall.elapsed();
        (stats, result)
    }

    /// The movable, still-unplaced cells in the configured visiting order.
    /// `rng` is consumed only for [`CellOrder::Shuffled`].
    pub(crate) fn ordered_unplaced(
        &self,
        design: &Design,
        state: &PlacementState,
        rng: &mut SmallRng,
    ) -> Vec<CellId> {
        let mut unplaced: Vec<CellId> = design
            .movable_cells()
            .filter(|&c| !state.is_placed(c))
            .collect();
        match self.cfg.order {
            CellOrder::Input => {}
            CellOrder::ByX => unplaced.sort_by(|&a, &b| {
                design
                    .input_position(a)
                    .0
                    .total_cmp(&design.input_position(b).0)
            }),
            CellOrder::ByAreaDesc => {
                unplaced.sort_by_key(|&c| std::cmp::Reverse(design.cell(c).area()))
            }
            CellOrder::Shuffled => unplaced.shuffle(rng),
        }
        unplaced
    }

    /// The retry loop with growing random offsets (Algorithm 1 lines 9–17),
    /// shared by the sequential and parallel drivers. Each `(cell, reason)`
    /// pair carries the cell's most recent failure reason; the reason is
    /// refreshed on every failed retry so the final tally reflects the last
    /// attempt.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn retry_loop<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        mut remaining: Vec<(CellId, FailReason)>,
        stats: &mut LegalizeStats,
        rng: &mut SmallRng,
        arena: &mut ScratchArena,
        sink: &mut S,
    ) -> Result<(), LegalizeError> {
        let mut k = 1u32;
        while !remaining.is_empty() {
            if k > self.cfg.max_retry_iters {
                stats.fail_counts.retry_budget_exhausted += remaining.len() as u64;
                let (cell, reason) = remaining[0];
                return Err(LegalizeError::Unplaceable {
                    cell,
                    rounds: k - 1,
                    reason,
                });
            }
            stats.retry_rounds = k;
            let probe = stats.phases.start();
            if S::ENABLED {
                sink.begin(Phase::Retry);
                sink.counter("retry.remaining", remaining.len() as u64);
            }
            let radius_x = i64::from(self.cfg.rx) * i64::from(k - 1);
            let radius_y = i64::from(self.cfg.ry) * i64::from(k - 1);
            let mut still = Vec::new();
            for (cell, _) in remaining {
                let (fx, fy) = design.input_position(cell);
                let dx = if radius_x > 0 {
                    rng.gen_range(-radius_x..=radius_x) as f64
                } else {
                    0.0
                };
                let dy = if radius_y > 0 {
                    rng.gen_range(-radius_y..=radius_y) as f64
                } else {
                    0.0
                };
                match self.try_place_traced(
                    design,
                    state,
                    cell,
                    fx + dx,
                    fy + dy,
                    stats,
                    arena,
                    sink,
                    k,
                ) {
                    Ok(None) => {}
                    Ok(Some(reason)) => {
                        // Escalation ladder: engage every `after_rounds`-th
                        // round, *after* the normal random-offset attempt so
                        // the RNG stream stays aligned with escalation-off
                        // runs (bit-identical behavior below the engagement
                        // threshold).
                        let esc = &self.cfg.escalation;
                        let engage = esc.engages()
                            && k >= esc.after_rounds
                            && k.is_multiple_of(esc.after_rounds);
                        let escalated = if engage {
                            self.escalate_cell(design, state, cell, stats, arena, sink, k)
                        } else {
                            Ok(false)
                        };
                        match escalated {
                            Ok(true) => {}
                            Ok(false) => {
                                let reason = if engage {
                                    stats.fail_counts.record(FailReason::EscalationExhausted);
                                    FailReason::EscalationExhausted
                                } else {
                                    reason
                                };
                                still.push((cell, reason));
                            }
                            Err(e) => {
                                if S::ENABLED {
                                    sink.end(Phase::Retry);
                                }
                                stats.phases.stop(Phase::Retry, probe);
                                return Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        if S::ENABLED {
                            sink.end(Phase::Retry);
                        }
                        stats.phases.stop(Phase::Retry, probe);
                        return Err(e);
                    }
                }
            }
            remaining = still;
            if S::ENABLED {
                sink.end(Phase::Retry);
            }
            stats.phases.stop(Phase::Retry, probe);
            k += 1;
        }
        Ok(())
    }
}

impl Default for Legalizer {
    fn default() -> Self {
        Self::new(LegalizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PowerRailMode;
    use mrl_db::DesignBuilder;

    #[test]
    fn legalizes_overlapping_cluster() {
        let mut b = DesignBuilder::new(4, 40);
        for i in 0..10 {
            let c = b.add_cell(format!("c{i}"), 3, 1);
            b.set_input_position(c, 15.0 + 0.1 * i as f64, 1.5);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = Legalizer::default().legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 10);
        assert_eq!(state.num_placed(), 10);
        // All placements legal by construction of PlacementState; verify
        // all cells got distinct positions.
        let mut seen = std::collections::HashSet::new();
        for (_, p) in state.iter_placed() {
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn legalizes_mixed_heights() {
        let mut b = DesignBuilder::new(6, 30);
        for i in 0..6 {
            let c = b.add_cell(format!("s{i}"), 2, 1);
            b.set_input_position(c, 10.0, 2.0);
        }
        for i in 0..4 {
            let c = b.add_cell(format!("d{i}"), 2, 2);
            b.set_input_position(c, 12.0, 2.0);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = Legalizer::default().legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 10);
        // Double-height VDD cells must all be on even rows.
        for c in design.movable_cells() {
            if design.cell(c).height() == 2 {
                assert_eq!(state.position(c).unwrap().y % 2, 0);
            }
        }
    }

    #[test]
    fn relaxed_mode_uses_odd_rows_for_double_height() {
        let mut b = DesignBuilder::new(4, 12);
        let c0 = b.add_cell("d0", 2, 2);
        b.set_input_position(c0, 5.0, 1.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let cfg = LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed);
        Legalizer::new(cfg).legalize(&design, &mut state).unwrap();
        assert_eq!(state.position(c0).unwrap().y, 1);
    }

    #[test]
    fn snap_clamps_and_finds_compatible_row() {
        let mut b = DesignBuilder::new(4, 20);
        let d = b.add_cell("d", 2, 2); // VDD bottom: rows 0, 2
        let design = b.finish().unwrap();
        let lg = Legalizer::default();
        // y = 1.2 rounds to row 1 (incompatible) -> nearest compatible 0 or 2.
        let p = lg.snap(&design, d, -5.0, 1.2);
        assert_eq!(p.x, 0);
        assert!(p.y == 0 || p.y == 2);
        // Far right clamps x so the cell still fits.
        let p = lg.snap(&design, d, 100.0, 0.0);
        assert_eq!(p.x, 18);
    }

    #[test]
    fn preplaced_cells_stay_placed_and_legal() {
        // A cell placed before legalization may be *shifted* by MLL (that
        // is the point of local legalization) but must remain placed and
        // overlap-free.
        let mut b = DesignBuilder::new(2, 20);
        let pre = b.add_cell("pre", 4, 1);
        let new = b.add_cell("new", 4, 1);
        b.set_input_position(new, 2.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, pre, SitePoint::new(2, 0)).unwrap();
        let stats = Legalizer::default().legalize(&design, &mut state).unwrap();
        // Only `new` counted: `pre` was not legalized, just respected.
        assert_eq!(stats.placed, 1);
        assert!(state.is_placed(pre));
        let a = state.rect_of(&design, pre).unwrap();
        let b = state.rect_of(&design, new).unwrap();
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn dense_design_eventually_places_all() {
        // 90% density single row: heavy pushing required.
        let mut b = DesignBuilder::new(1, 100);
        for i in 0..30 {
            let c = b.add_cell(format!("c{i}"), 3, 1);
            b.set_input_position(c, 50.0, 0.0); // everyone wants the middle
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = Legalizer::default().legalize(&design, &mut state).unwrap();
        assert_eq!(stats.placed, 30);
    }

    #[test]
    fn unplaceable_reports_error() {
        // Two 3-wide cells in one 4-wide row: capacity validation passes at
        // the design level only if area fits; so use two rows but a target
        // that can never fit: a 2x2 cell with rail alignment in a floorplan
        // where compatible rows are blocked.
        let mut b = DesignBuilder::new(3, 10);
        let d = b.add_cell("d", 2, 2);
        b.set_input_position(d, 4.0, 0.0);
        // Block row 0 and row 2 entirely: only bottom row 1 remains for a
        // double-height cell, which is rail-incompatible (VDD cell).
        b.add_blockage(mrl_geom::SiteRect::new(0, 0, 10, 1));
        b.add_blockage(mrl_geom::SiteRect::new(0, 2, 10, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let cfg = LegalizerConfig {
            max_retry_iters: 3,
            ..LegalizerConfig::default()
        };
        let err = Legalizer::new(cfg)
            .legalize(&design, &mut state)
            .unwrap_err();
        assert!(matches!(err, LegalizeError::Unplaceable { cell, .. } if cell == d));
    }

    #[test]
    fn cell_orders_all_converge() {
        for order in [
            CellOrder::Input,
            CellOrder::ByX,
            CellOrder::ByAreaDesc,
            CellOrder::Shuffled,
        ] {
            let mut b = DesignBuilder::new(4, 30);
            for i in 0..8 {
                let c = b.add_cell(format!("c{i}"), 2, 1 + (i % 2));
                b.set_input_position(c, 10.0 + i as f64 * 0.2, 1.0);
            }
            let design = b.finish().unwrap();
            let mut state = PlacementState::new(&design);
            let cfg = LegalizerConfig::default().with_order(order);
            let stats = Legalizer::new(cfg).legalize(&design, &mut state).unwrap();
            assert_eq!(stats.placed, 8, "order {order:?}");
        }
    }

    #[test]
    fn stats_distinguish_direct_and_mll() {
        let mut b = DesignBuilder::new(1, 40);
        let a = b.add_cell("a", 3, 1);
        let c = b.add_cell("c", 3, 1);
        b.set_input_position(a, 5.0, 0.0);
        b.set_input_position(c, 5.0, 0.0); // collides with a
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let stats = Legalizer::default().legalize(&design, &mut state).unwrap();
        assert_eq!(stats.direct, 1);
        assert_eq!(stats.via_mll, 1);
        assert_eq!(stats.mll_calls, 1);
        assert_eq!(stats.retry_rounds, 0);
    }

    #[test]
    fn legalize_subset_replaces_only_the_listed_cells() {
        let mut b = DesignBuilder::new(4, 30);
        let mut ids = Vec::new();
        for i in 0..10 {
            let c = b.add_cell(format!("c{i}"), 3, 1 + (i % 2));
            b.set_input_position(c, 2.0 + 2.5 * i as f64, 1.2);
            ids.push(c);
        }
        let design = b.finish().unwrap();
        let legalizer = Legalizer::default();
        let mut state = PlacementState::new(&design);
        legalizer.legalize(&design, &mut state).unwrap();

        // Rip up two cells, remember everyone else, re-enter on the subset.
        let victims = [ids[3], ids[7]];
        for &v in &victims {
            state.remove(&design, v).unwrap();
        }
        let others: Vec<_> = state.snapshot();
        let stats = legalizer
            .legalize_subset(&design, &mut state, &victims)
            .unwrap();
        assert_eq!(stats.placed, 2);
        for &v in &victims {
            assert!(state.is_placed(v), "{v} must be re-placed");
        }
        // The subset pass may shift neighbors through MLL, but every cell
        // the legalizer did not need to move stays where it was.
        let moved = state.count_moved(&others);
        assert!(moved <= 2 + stats.via_mll * 4, "moved={moved}");
        state.verify_index(&design).unwrap();
        // Already-placed listed cells are skipped, not an error.
        let stats = legalizer
            .legalize_subset(&design, &mut state, &victims)
            .unwrap();
        assert_eq!(stats.placed, 0);
    }
}
