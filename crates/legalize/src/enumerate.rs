//! Valid insertion point enumeration (Sections 5.1.2–5.1.3, Figure 8) and
//! the best-first branch-and-bound search over the enumerated points.
//!
//! An *insertion point* for a target cell of height `h` is a choice of one
//! insertion interval in each of `h` vertically consecutive rows such that
//! the intervals share a common cutline (a common feasible x). When
//! multi-row local cells exist, intervals on opposite sides of such a cell
//! must not combine even if their ranges overlap (Figure 8).
//!
//! The scanline works over interval endpoints in ascending order (left
//! endpoints before right endpoints at equal x). A queue `Q[a][s]` holds
//! the currently open intervals of row `s` that may pair with intervals of
//! row `a`. Processing the left endpoint of interval `I` on row `a`:
//!
//! 1. if `I`'s left cell is a multi-row cell `M` spanning rows `S`, every
//!    `Q[a][s]` with `s ∈ S` is purged of intervals on the left side of `M`
//!    (those whose left cell is not `M`);
//! 2. all insertion points `{I} × Π_s Q[a][s]` over windows of `h`
//!    consecutive rows containing `a` are emitted (each combination is
//!    emitted exactly once, at the largest left endpoint among its
//!    intervals);
//! 3. `I` joins `Q[r][a]` for every row `r` within `h − 1` of `a`.
//!
//! Right endpoints remove the interval from all queues. Power-rail
//! filtering simply skips windows whose bottom row cannot host the target.
//!
//! # Search strategies
//!
//! The scanline only *generates* combinations; how they are scored is a
//! [`LegalizerConfig::prune`] choice:
//!
//! * **Exhaustive** (`prune = false`): every generated combination is
//!   scored in emission order and the first minimum wins.
//! * **Best-first** (`prune = true`, the default): each combination enters
//!   a binary heap keyed by an *admissible lower bound* on its cost — the
//!   horizontal distance from `target.x` to the combination's feasible
//!   range plus the exact [`vertical_cost`] of its row band. Combinations
//!   are then popped cheapest-bound-first and scored; as soon as a popped
//!   bound can no longer beat the incumbent (bound above the best cost, or
//!   equal with a later emission rank), the entire remaining heap is
//!   pruned. The bound is a true lower bound because both evaluators add
//!   the target's own hinge `|x − target.x| ≥ dist(target.x, range)` to a
//!   non-negative sum, and both add the identical vertical term, so the
//!   search returns bit-identical results to the exhaustive path — same
//!   insertion point, ties broken by the same emission order.

use crate::config::{EvalMode, LegalizerConfig, PowerRailMode};
use crate::evaluate::{evaluate_exact_in, evaluate_in, vertical_cost, Evaluation, TargetSpec};
use crate::interval::InsInterval;
use crate::region::LocalRegion;
use crate::scratch::{Candidate, EvalScratch, ScanEvent, ScratchArena};
use crate::timing::{Phase, PhaseTimes};
use mrl_db::Design;
use mrl_geom::Interval;
use mrl_trace::{NoopSink, Sink};
use std::collections::BinaryHeap;

/// A scored valid insertion point.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertionPoint {
    /// Local row index of the bottom spanned row.
    pub bottom_row: usize,
    /// The chosen intervals, bottom-up (`target.h` of them).
    pub intervals: Vec<InsInterval>,
    /// The optimal target x and the total displacement cost.
    pub eval: Evaluation,
}

/// Enumerates and scores every valid insertion point for `target` in the
/// region. Intended for diagnostics and tests; the legalizer uses
/// [`find_best_insertion_point`] which keeps only the minimum.
pub fn enumerate_insertion_points(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
) -> Vec<InsertionPoint> {
    let mut arena = ScratchArena::new();
    let aspect = design.grid().aspect();
    let mut out = Vec::new();
    let ScratchArena {
        intervals,
        events,
        rail_ok,
        queues,
        combo,
        combo_buf,
        eval,
        ..
    } = &mut arena;
    if !prepare(region, design, target, cfg, intervals, events, rail_ok) {
        return out;
    }
    let intervals: &[InsInterval] = intervals;
    generate(
        region,
        target,
        cfg,
        intervals,
        events,
        rail_ok,
        queues,
        combo,
        &mut |t, ids| {
            combo_buf.clear();
            combo_buf.extend(ids.iter().map(|&j| intervals[j as usize]));
            let ev = score(
                region,
                combo_buf,
                target,
                region.bottom_row + t as i32,
                aspect,
                cfg,
                eval,
            );
            out.push(InsertionPoint {
                bottom_row: t,
                intervals: combo_buf.clone(),
                eval: ev,
            });
        },
    );
    out
}

/// Returns the minimum-cost valid insertion point, if any exists.
pub fn find_best_insertion_point(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
) -> Option<InsertionPoint> {
    let mut timer = PhaseTimes::default();
    find_best_insertion_point_timed(region, design, target, cfg, &mut timer)
}

/// [`find_best_insertion_point`] with per-phase accounting: the whole scan
/// is attributed to [`Phase::Enumerate`], candidate scoring within it to
/// [`Phase::Evaluate`].
pub fn find_best_insertion_point_timed(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    timer: &mut PhaseTimes,
) -> Option<InsertionPoint> {
    find_best_insertion_point_in(region, design, target, cfg, timer, &mut ScratchArena::new())
}

/// [`find_best_insertion_point_timed`] against a caller-owned
/// [`ScratchArena`]: the steady-state kernel entry point used by the
/// drivers, allocation-free once the arena is warm.
pub fn find_best_insertion_point_in(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    timer: &mut PhaseTimes,
    arena: &mut ScratchArena,
) -> Option<InsertionPoint> {
    find_best_insertion_point_traced(region, design, target, cfg, timer, arena, &mut NoopSink)
}

/// [`find_best_insertion_point_in`] with structured trace events into
/// `sink`: an `enumerate` span around the whole scan with an `evaluate`
/// span per scored candidate nested inside. With [`NoopSink`] every
/// emission folds away and this is exactly
/// [`find_best_insertion_point_in`].
#[allow(clippy::too_many_arguments)]
pub fn find_best_insertion_point_traced<S: Sink>(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    timer: &mut PhaseTimes,
    arena: &mut ScratchArena,
    sink: &mut S,
) -> Option<InsertionPoint> {
    let probe = timer.start();
    if S::ENABLED {
        sink.begin(Phase::Enumerate);
    }
    let aspect = design.grid().aspect();
    let ScratchArena {
        intervals,
        events,
        rail_ok,
        queues,
        combo,
        combo_buf,
        pool,
        cands,
        best_combo,
        eval,
        ..
    } = arena;
    let best = if prepare(region, design, target, cfg, intervals, events, rail_ok) {
        let intervals: &[InsInterval] = intervals;
        if cfg.prune {
            best_first(
                region, target, cfg, aspect, intervals, events, rail_ok, queues, combo, combo_buf,
                pool, cands, best_combo, eval, timer, sink,
            )
        } else {
            exhaustive(
                region, target, cfg, aspect, intervals, events, rail_ok, queues, combo, combo_buf,
                best_combo, eval, timer, sink,
            )
        }
    } else {
        None
    };
    if S::ENABLED {
        sink.end(Phase::Enumerate);
    }
    timer.stop(Phase::Enumerate, probe);
    best
}

/// Builds the insertion intervals, endpoint events, and rail filter for one
/// search into the arena buffers. Returns `false` when no valid insertion
/// point can exist (degenerate target, short window, or no intervals).
fn prepare(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    intervals: &mut Vec<InsInterval>,
    events: &mut Vec<ScanEvent>,
    rail_ok: &mut Vec<bool>,
) -> bool {
    let ht = target.h as usize;
    let hw = region.height();
    if ht == 0 || hw < ht {
        return false;
    }
    region.insertion_intervals_into(target.w, intervals);
    if intervals.is_empty() {
        return false;
    }
    let fp = design.floorplan();
    // Precompute which windows' bottom rows pass the rail filter.
    rail_ok.clear();
    rail_ok.extend((0..hw).map(|t| {
        cfg.rail_mode == PowerRailMode::Relaxed
            || fp.rail_compatible(target.rail, target.h, region.bottom_row + t as i32)
    }));
    events.clear();
    events.reserve(intervals.len() * 2);
    for (i, iv) in intervals.iter().enumerate() {
        events.push(ScanEvent {
            x: iv.range.lo,
            close: false,
            idx: i as u32,
        });
        events.push(ScanEvent {
            x: iv.range.hi,
            close: true,
            idx: i as u32,
        });
    }
    // Left endpoints precede right endpoints at equal x so touching
    // intervals (zero-width common cutline) still combine.
    events.sort_by_key(|e| (e.x, e.close));
    true
}

/// The scanline core: invokes `emit(t, interval_ids)` for every valid
/// insertion point in deterministic emission order, up to the configured
/// cap on *generated* combinations (identical for both search strategies,
/// so they search the same candidate set).
#[allow(clippy::too_many_arguments)]
fn generate<F>(
    region: &LocalRegion,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    intervals: &[InsInterval],
    events: &[ScanEvent],
    rail_ok: &[bool],
    queues: &mut Vec<Vec<u32>>,
    combo: &mut Vec<u32>,
    emit: &mut F,
) where
    F: FnMut(usize, &[u32]),
{
    let ht = target.h as usize;
    let hw = region.height();
    // queues[a * hw + s]: open interval ids of row s pairable with row a.
    if queues.len() < hw * hw {
        queues.resize_with(hw * hw, Vec::new);
    }
    for q in queues.iter_mut().take(hw * hw) {
        q.clear();
    }
    let pair_lo = |a: usize| a.saturating_sub(ht - 1);
    let pair_hi = |a: usize| (a + ht - 1).min(hw - 1);

    let mut emitted = 0usize;
    'events: for ev in events {
        let iv = &intervals[ev.idx as usize];
        let a = iv.row;
        if ev.close {
            for r in pair_lo(a)..=pair_hi(a) {
                if r != a {
                    queues[r * hw + a].retain(|&j| j != ev.idx);
                }
            }
            continue;
        }
        // (1) Multi-row blocking: purge intervals on the far side of the
        // left cell.
        if let Some(ci) = iv.left {
            let i = ci as usize;
            if region.cells.h[i] > 1 {
                for row in region.cells.y[i]..region.cells.y[i] + region.cells.h[i] {
                    let s = (row - region.bottom_row) as usize;
                    if s != a && s >= pair_lo(a) && s <= pair_hi(a) {
                        queues[a * hw + s].retain(|&j| intervals[j as usize].left == Some(ci));
                    }
                }
            }
        }
        // (2) Emit {I} x product of queues over each window containing `a`.
        if ht == 1 {
            if rail_ok[a] {
                combo.clear();
                combo.push(ev.idx);
                emit(a, combo);
                emitted += 1;
                if emitted >= cfg.max_insertion_points {
                    break 'events;
                }
            }
        } else {
            let t_lo = a.saturating_sub(ht - 1);
            let t_hi = a.min(hw - ht);
            #[allow(clippy::needless_range_loop)] // `t` is a row index, not just a key into rail_ok
            for t in t_lo..=t_hi {
                if !rail_ok[t] {
                    continue;
                }
                // Depth-first product over rows t..t+ht.
                combo.clear();
                if !product_emit(
                    region,
                    cfg,
                    intervals,
                    queues,
                    hw,
                    ev.idx,
                    a,
                    t,
                    ht,
                    t,
                    combo,
                    &mut emitted,
                    emit,
                ) {
                    break 'events;
                }
            }
        }
        // (3) Publish the interval for future pairings.
        for r in pair_lo(a)..=pair_hi(a) {
            if r != a {
                queues[r * hw + a].push(ev.idx);
            }
        }
    }
}

/// Emits all combinations for one window `t` (recursing over rows
/// `s = t..t+ht`); returns `false` when the cap is hit.
#[allow(clippy::too_many_arguments)]
fn product_emit<F>(
    region: &LocalRegion,
    cfg: &LegalizerConfig,
    intervals: &[InsInterval],
    queues: &[Vec<u32>],
    hw: usize,
    current: u32,
    a: usize,
    t: usize,
    ht: usize,
    s: usize,
    combo: &mut Vec<u32>,
    emitted: &mut usize,
    emit: &mut F,
) -> bool
where
    F: FnMut(usize, &[u32]),
{
    if s == t + ht {
        // The paper's queue clearing makes pairs sharing a row with the
        // generating interval side-consistent, which is complete for
        // h ≤ 2. For taller targets a pair of *other* rows can still
        // straddle a multi-row cell (e.g. rows 1/2 of a 3-row window
        // generated from row 3), so verify explicitly.
        if ht >= 3 && !combo_is_side_consistent(region, intervals, combo) {
            return true;
        }
        emit(t, combo);
        *emitted += 1;
        return *emitted < cfg.max_insertion_points;
    }
    if s == a {
        combo.push(current);
        let go = product_emit(
            region,
            cfg,
            intervals,
            queues,
            hw,
            current,
            a,
            t,
            ht,
            s + 1,
            combo,
            emitted,
            emit,
        );
        combo.pop();
        return go;
    }
    for &j in &queues[a * hw + s] {
        combo.push(j);
        let go = product_emit(
            region,
            cfg,
            intervals,
            queues,
            hw,
            current,
            a,
            t,
            ht,
            s + 1,
            combo,
            emitted,
            emit,
        );
        combo.pop();
        if !go {
            return false;
        }
    }
    true
}

/// Exhaustive search: score every generated combination in emission order;
/// the first minimum wins (strict `<` replacement).
#[allow(clippy::too_many_arguments)]
fn exhaustive<S: Sink>(
    region: &LocalRegion,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    aspect: f64,
    intervals: &[InsInterval],
    events: &[ScanEvent],
    rail_ok: &[bool],
    queues: &mut Vec<Vec<u32>>,
    combo: &mut Vec<u32>,
    combo_buf: &mut Vec<InsInterval>,
    best_combo: &mut Vec<u32>,
    eval: &mut EvalScratch,
    timer: &mut PhaseTimes,
    sink: &mut S,
) -> Option<InsertionPoint> {
    let mut best: Option<(usize, Evaluation)> = None;
    generate(
        region,
        target,
        cfg,
        intervals,
        events,
        rail_ok,
        queues,
        combo,
        &mut |t, ids| {
            timer.combos_generated += 1;
            timer.combos_evaluated += 1;
            combo_buf.clear();
            combo_buf.extend(ids.iter().map(|&j| intervals[j as usize]));
            let probe = timer.start();
            if S::ENABLED {
                sink.begin(Phase::Evaluate);
            }
            let ev = score(
                region,
                combo_buf,
                target,
                region.bottom_row + t as i32,
                aspect,
                cfg,
                eval,
            );
            if S::ENABLED {
                sink.end(Phase::Evaluate);
            }
            timer.stop(Phase::Evaluate, probe);
            if best.as_ref().is_none_or(|(_, b)| ev.cost < b.cost) {
                best = Some((t, ev));
                best_combo.clear();
                best_combo.extend_from_slice(ids);
            }
        },
    );
    best.map(|(t, ev)| InsertionPoint {
        bottom_row: t,
        intervals: best_combo.iter().map(|&j| intervals[j as usize]).collect(),
        eval: ev,
    })
}

/// Best-first branch-and-bound: generate all combinations with admissible
/// lower bounds, then pop them cheapest-bound-first and stop as soon as the
/// incumbent can no longer be beaten. Result-identical to [`exhaustive`].
#[allow(clippy::too_many_arguments)]
fn best_first<S: Sink>(
    region: &LocalRegion,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    aspect: f64,
    intervals: &[InsInterval],
    events: &[ScanEvent],
    rail_ok: &[bool],
    queues: &mut Vec<Vec<u32>>,
    combo: &mut Vec<u32>,
    combo_buf: &mut Vec<InsInterval>,
    pool: &mut Vec<u32>,
    cands: &mut Vec<Candidate>,
    best_combo: &mut Vec<u32>,
    eval: &mut EvalScratch,
    timer: &mut PhaseTimes,
    sink: &mut S,
) -> Option<InsertionPoint> {
    let ht = target.h as usize;
    pool.clear();
    cands.clear();
    generate(
        region,
        target,
        cfg,
        intervals,
        events,
        rail_ok,
        queues,
        combo,
        &mut |t, ids| {
            timer.combos_generated += 1;
            // Admissible bound: the target's own hinge contributes at least
            // its distance to the feasible range, every other hinge is
            // non-negative, and the vertical term is exact.
            let range = ids
                .iter()
                .fold(Interval::new(i32::MIN, i32::MAX), |acc, &j| {
                    acc.intersect(&intervals[j as usize].range)
                });
            let clamped = target.x.clamp(range.lo, range.hi);
            let dist = (i64::from(target.x) - i64::from(clamped)).abs();
            let bound = dist as f64 + vertical_cost(target, region.bottom_row + t as i32, aspect);
            cands.push(Candidate {
                bound,
                emit_idx: cands.len() as u32,
                bottom_row: t as u32,
                pool_start: pool.len() as u32,
            });
            pool.extend_from_slice(ids);
        },
    );

    // Reuse the candidate buffer as the heap's backing storage so the
    // steady-state pop loop allocates nothing.
    let mut heap = BinaryHeap::from(std::mem::take(cands));
    let mut best: Option<(Evaluation, u32, usize)> = None;
    while let Some(c) = heap.pop() {
        if let Some((bev, bemit, _)) = &best {
            // The heap pops in (bound, emit_idx) order, so once a popped
            // candidate cannot beat the incumbent — bound above the best
            // cost, or equal-bound but later-emitted (a tie would lose to
            // the incumbent's earlier emission) — neither can anything
            // still on the heap.
            if c.bound > bev.cost || (c.bound == bev.cost && c.emit_idx > *bemit) {
                timer.combos_pruned += 1 + heap.len() as u64;
                break;
            }
        }
        let start = c.pool_start as usize;
        let ids = &pool[start..start + ht];
        timer.combos_evaluated += 1;
        combo_buf.clear();
        combo_buf.extend(ids.iter().map(|&j| intervals[j as usize]));
        let probe = timer.start();
        if S::ENABLED {
            sink.begin(Phase::Evaluate);
        }
        let ev = score(
            region,
            combo_buf,
            target,
            region.bottom_row + c.bottom_row as i32,
            aspect,
            cfg,
            eval,
        );
        if S::ENABLED {
            sink.end(Phase::Evaluate);
        }
        timer.stop(Phase::Evaluate, probe);
        let better = match &best {
            None => true,
            Some((bev, bemit, _)) => {
                ev.cost < bev.cost || (ev.cost == bev.cost && c.emit_idx < *bemit)
            }
        };
        if better {
            best = Some((ev, c.emit_idx, c.bottom_row as usize));
            best_combo.clear();
            best_combo.extend_from_slice(ids);
        }
    }
    *cands = heap.into_vec();
    cands.clear();
    best.map(|(ev, _, t)| InsertionPoint {
        bottom_row: t,
        intervals: best_combo.iter().map(|&j| intervals[j as usize]).collect(),
        eval: ev,
    })
}

/// True if no multi-row local cell has combo intervals on both of its
/// sides. An interval on row `lr` is left of cell `M` (spanning `lr`) when
/// its gap index does not exceed `M`'s list position on that row.
pub(crate) fn combo_is_side_consistent(
    region: &LocalRegion,
    intervals: &[InsInterval],
    combo: &[u32],
) -> bool {
    for &i in combo {
        let iv = &intervals[i as usize];
        for &ci in region.rows[iv.row]
            .as_ref()
            .expect("combo rows have segments")
            .cells
            .iter()
        {
            let (cy, ch) = (region.cells.y[ci as usize], region.cells.h[ci as usize]);
            if ch <= 1 {
                continue;
            }
            let mut side: Option<bool> = None; // Some(true) = all left of cell
            for &oj in combo {
                let other = &intervals[oj as usize];
                let row = region.bottom_row + other.row as i32;
                if row < cy || row >= cy + ch {
                    continue;
                }
                let pos = region.cells.pos_in_row(ci, (row - cy) as usize) as usize;
                let is_left = other.gap <= pos;
                match side {
                    None => side = Some(is_left),
                    Some(s) if s != is_left => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

fn score(
    region: &LocalRegion,
    combo: &[InsInterval],
    target: &TargetSpec,
    bottom_row_global: i32,
    aspect: f64,
    cfg: &LegalizerConfig,
    eval: &mut EvalScratch,
) -> Evaluation {
    match cfg.eval_mode {
        EvalMode::Approximate => {
            evaluate_in(region, combo, target, bottom_row_global, aspect, eval)
        }
        EvalMode::Exact => {
            evaluate_exact_in(region, combo, target, bottom_row_global, aspect, eval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::{CellId, DesignBuilder, PlacementState};
    use mrl_geom::{PowerRail, SitePoint, SiteRect};

    fn setup(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)],
    ) -> (LocalRegion, Vec<CellId>, Design) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            // Rails are irrelevant to these fixtures' placements.
            state
                .place_ignoring_rails(&design, id, SitePoint::new(x, y))
                .unwrap();
        }
        let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, width, rows));
        (region, ids, design)
    }

    fn target(w: i32, h: i32, x: i32, y: i32) -> TargetSpec {
        TargetSpec {
            w,
            h,
            x,
            y,
            rail: PowerRail::Vdd,
        }
    }

    fn relaxed() -> LegalizerConfig {
        LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed)
    }

    #[test]
    fn single_row_target_gets_one_point_per_interval() {
        let (region, _, design) = setup(2, 12, &[(2, 1, 4, 0), (3, 1, 2, 1)]);
        let t = target(2, 1, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        let n_intervals = region.insertion_intervals(2).len();
        assert_eq!(pts.len(), n_intervals);
    }

    #[test]
    fn double_row_target_combines_consecutive_rows() {
        // Empty 3-row region, width 10, target 2x2: windows (0,1) and (1,2),
        // one interval per row -> 2 insertion points.
        let (region, _, design) = setup(3, 10, &[]);
        let t = target(2, 2, 4, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        assert_eq!(pts.len(), 2);
        let bottoms: Vec<_> = pts.iter().map(|p| p.bottom_row).collect();
        assert!(bottoms.contains(&0) && bottoms.contains(&1));
        assert!(pts.iter().all(|p| p.intervals.len() == 2));
    }

    #[test]
    fn figure8_opposite_sides_of_multi_row_cell_do_not_combine() {
        // Two rows [0,20), multi-row a(2x2)@9 with slack on both sides.
        let (region, ids, design) = setup(2, 20, &[(2, 2, 9, 0)]);
        let a = region.local_index_of(ids[0]).unwrap();
        let t = target(2, 2, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        // Only all-left or all-right combinations are valid.
        assert_eq!(pts.len(), 2);
        for p in &pts {
            let sides: Vec<bool> = p
                .intervals
                .iter()
                .map(|iv| iv.right == Some(a)) // true = left of a
                .collect();
            assert!(
                sides.iter().all(|&s| s) || sides.iter().all(|&s| !s),
                "mixed-side insertion point {:?}",
                p
            );
        }
    }

    #[test]
    fn figure8_mixed_sides_allowed_without_multi_row_cell() {
        // Same geometry but two independent single-row cells: mixed
        // combinations are now valid.
        let (region, _, design) = setup(2, 20, &[(2, 1, 9, 0), (2, 1, 9, 1)]);
        let t = target(2, 2, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        // 2x2 gap choices, all with common cutlines.
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn rail_filter_restricts_even_height_targets() {
        let (region, _, design) = setup(4, 10, &[]);
        // VDD-bottom double-height target: bottom rows 0 and 2 only.
        let t = target(2, 2, 4, 0);
        let aligned = LegalizerConfig::default();
        let pts = enumerate_insertion_points(&region, &design, &t, &aligned);
        let bottoms: Vec<_> = pts.iter().map(|p| p.bottom_row).collect();
        assert_eq!(bottoms, vec![0, 2]);
        // VSS-bottom variant gets the complementary rows.
        let t_vss = TargetSpec {
            rail: PowerRail::Vss,
            ..t
        };
        let pts = enumerate_insertion_points(&region, &design, &t_vss, &aligned);
        let bottoms: Vec<_> = pts.iter().map(|p| p.bottom_row).collect();
        assert_eq!(bottoms, vec![1]);
        // Odd-height targets are unrestricted.
        let t_odd = target(2, 1, 4, 0);
        let pts = enumerate_insertion_points(&region, &design, &t_odd, &aligned);
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn no_insertion_point_when_target_cannot_fit() {
        // Row [0,6) fully packed by one 6-wide cell.
        let (region, _, design) = setup(1, 6, &[(6, 1, 0, 0)]);
        let t = target(2, 1, 2, 0);
        assert!(find_best_insertion_point(&region, &design, &t, &relaxed()).is_none());
    }

    #[test]
    fn best_point_prefers_zero_displacement_gap() {
        // Row [0,20): cells at 0..2 and 10..12; target w2 wants x=14 — the
        // gap right of the second cell costs nothing.
        let (region, ids, design) = setup(1, 20, &[(2, 1, 0, 0), (2, 1, 10, 0)]);
        let t = target(2, 1, 14, 0);
        let best = find_best_insertion_point(&region, &design, &t, &relaxed()).unwrap();
        assert_eq!(best.eval.cost, 0.0);
        assert_eq!(best.eval.x, 14);
        let b = region.local_index_of(ids[1]).unwrap();
        assert_eq!(best.intervals[0].left, Some(b));
    }

    #[test]
    fn taller_target_than_region_yields_nothing() {
        let (region, _, design) = setup(2, 10, &[]);
        let t = target(2, 3, 0, 0);
        assert!(enumerate_insertion_points(&region, &design, &t, &relaxed()).is_empty());
    }

    #[test]
    fn cap_limits_emissions() {
        let (region, _, design) = setup(1, 30, &[(2, 1, 5, 0), (2, 1, 10, 0), (2, 1, 15, 0)]);
        let t = target(2, 1, 8, 0);
        let mut cfg = relaxed();
        cfg.max_insertion_points = 2;
        let pts = enumerate_insertion_points(&region, &design, &t, &cfg);
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn triple_row_target_with_multi_row_cell_blocking() {
        // Figure 5 family: 4 rows, a multi-row cell on rows 1-2, target 3
        // rows tall. Combinations crossing the multi-row cell must agree on
        // side.
        let (region, ids, design) = setup(4, 20, &[(2, 2, 9, 1), (2, 1, 3, 0), (2, 1, 14, 3)]);
        let m = region.local_index_of(ids[0]).unwrap();
        let t = target(2, 3, 6, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        assert!(!pts.is_empty());
        for p in &pts {
            let sides: Vec<Option<bool>> = p
                .intervals
                .iter()
                .map(|iv| {
                    if iv.left == Some(m) {
                        Some(false) // right of m
                    } else if iv.right == Some(m) {
                        Some(true) // left of m
                    } else {
                        None
                    }
                })
                .collect();
            let lefts = sides.iter().flatten().filter(|&&s| s).count();
            let rights = sides.iter().flatten().filter(|&&s| !s).count();
            assert!(
                lefts == 0 || rights == 0,
                "insertion point mixes sides of the multi-row cell: {:?}",
                p
            );
        }
    }

    #[test]
    fn pruned_search_matches_exhaustive_and_prunes() {
        // A row with several gaps far from the target: the pruned search
        // must return the identical point while exactly-evaluating fewer
        // combinations than it generated.
        let (region, _, design) = setup(
            2,
            60,
            &[
                (2, 1, 5, 0),
                (2, 1, 15, 0),
                (2, 1, 25, 0),
                (2, 1, 40, 0),
                (3, 1, 10, 1),
                (3, 1, 30, 1),
            ],
        );
        let t = target(2, 1, 26, 0);
        let pruned_cfg = relaxed();
        let exhaustive_cfg = relaxed().with_prune(false);
        let mut pt = PhaseTimes::default();
        let mut et = PhaseTimes::default();
        let pruned = find_best_insertion_point_timed(&region, &design, &t, &pruned_cfg, &mut pt);
        let full = find_best_insertion_point_timed(&region, &design, &t, &exhaustive_cfg, &mut et);
        assert_eq!(pruned, full);
        assert_eq!(pt.combos_generated, et.combos_generated);
        assert_eq!(et.combos_evaluated, et.combos_generated);
        assert_eq!(et.combos_pruned, 0);
        assert_eq!(pt.combos_pruned + pt.combos_evaluated, pt.combos_generated);
        assert!(
            pt.combos_evaluated < pt.combos_generated,
            "expected pruning on this fixture: {} evaluated of {} generated",
            pt.combos_evaluated,
            pt.combos_generated
        );
    }

    #[test]
    fn pruned_search_matches_exhaustive_in_exact_mode() {
        let (region, _, design) = setup(
            2,
            40,
            &[(3, 1, 4, 0), (3, 1, 9, 0), (2, 2, 20, 0), (2, 1, 30, 1)],
        );
        let t = target(2, 2, 12, 0);
        let base = relaxed().with_eval_mode(EvalMode::Exact);
        let pruned = find_best_insertion_point(&region, &design, &t, &base.clone());
        let full = find_best_insertion_point(&region, &design, &t, &base.with_prune(false));
        assert_eq!(pruned, full);
    }

    #[test]
    fn arena_reuse_across_searches_is_clean() {
        // Two very different searches through the same arena must give the
        // same answers as fresh-arena searches.
        let (region, _, design) = setup(3, 30, &[(2, 2, 9, 0), (2, 1, 4, 2), (3, 1, 20, 1)]);
        let mut arena = ScratchArena::new();
        let mut timer = PhaseTimes::default();
        let cfg = relaxed();
        for t in [target(2, 2, 5, 0), target(3, 1, 22, 1), target(2, 3, 11, 0)] {
            let with_arena =
                find_best_insertion_point_in(&region, &design, &t, &cfg, &mut timer, &mut arena);
            let fresh = find_best_insertion_point(&region, &design, &t, &cfg);
            assert_eq!(with_arena, fresh);
        }
    }
}
