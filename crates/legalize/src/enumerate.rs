//! Valid insertion point enumeration (Sections 5.1.2–5.1.3, Figure 8).
//!
//! An *insertion point* for a target cell of height `h` is a choice of one
//! insertion interval in each of `h` vertically consecutive rows such that
//! the intervals share a common cutline (a common feasible x). When
//! multi-row local cells exist, intervals on opposite sides of such a cell
//! must not combine even if their ranges overlap (Figure 8).
//!
//! The scanline works over interval endpoints in ascending order (left
//! endpoints before right endpoints at equal x). A queue `Q[a][s]` holds
//! the currently open intervals of row `s` that may pair with intervals of
//! row `a`. Processing the left endpoint of interval `I` on row `a`:
//!
//! 1. if `I`'s left cell is a multi-row cell `M` spanning rows `S`, every
//!    `Q[a][s]` with `s ∈ S` is purged of intervals on the left side of `M`
//!    (those whose left cell is not `M`);
//! 2. all insertion points `{I} × Π_s Q[a][s]` over windows of `h`
//!    consecutive rows containing `a` are emitted (each combination is
//!    emitted exactly once, at the largest left endpoint among its
//!    intervals);
//! 3. `I` joins `Q[r][a]` for every row `r` within `h − 1` of `a`.
//!
//! Right endpoints remove the interval from all queues. Power-rail
//! filtering simply skips windows whose bottom row cannot host the target.

use crate::config::{EvalMode, LegalizerConfig, PowerRailMode};
use crate::evaluate::{evaluate, evaluate_exact, Evaluation, TargetSpec};
use crate::interval::InsInterval;
use crate::region::LocalRegion;
use crate::timing::{Phase, PhaseTimes};
use mrl_db::Design;

/// A scored valid insertion point.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertionPoint {
    /// Local row index of the bottom spanned row.
    pub bottom_row: usize,
    /// The chosen intervals, bottom-up (`target.h` of them).
    pub intervals: Vec<InsInterval>,
    /// The optimal target x and the total displacement cost.
    pub eval: Evaluation,
}

/// Enumerates and scores every valid insertion point for `target` in the
/// region. Intended for diagnostics and tests; the legalizer uses
/// [`find_best_insertion_point`] which keeps only the minimum.
pub fn enumerate_insertion_points(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
) -> Vec<InsertionPoint> {
    let mut out = Vec::new();
    let mut timer = PhaseTimes::default();
    scan(region, design, target, cfg, &mut timer, |t, combo, eval| {
        out.push(InsertionPoint {
            bottom_row: t,
            intervals: combo.iter().map(|&iv| *iv).collect(),
            eval,
        });
    });
    out
}

/// Returns the minimum-cost valid insertion point, if any exists.
pub fn find_best_insertion_point(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
) -> Option<InsertionPoint> {
    let mut timer = PhaseTimes::default();
    find_best_insertion_point_timed(region, design, target, cfg, &mut timer)
}

/// [`find_best_insertion_point`] with per-phase accounting: the whole scan
/// is attributed to [`Phase::Enumerate`], candidate scoring within it to
/// [`Phase::Evaluate`].
pub fn find_best_insertion_point_timed(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    timer: &mut PhaseTimes,
) -> Option<InsertionPoint> {
    let probe = timer.start();
    let mut best: Option<InsertionPoint> = None;
    scan(region, design, target, cfg, timer, |t, combo, eval| {
        let better = match &best {
            Some(b) => eval.cost < b.eval.cost,
            None => true,
        };
        if better {
            best = Some(InsertionPoint {
                bottom_row: t,
                intervals: combo.iter().map(|&iv| *iv).collect(),
                eval,
            });
        }
    });
    timer.stop(Phase::Enumerate, probe);
    best
}

/// The scanline core: invokes `emit(t, combo, eval)` for every valid
/// insertion point, up to the configured cap.
#[allow(clippy::needless_range_loop)] // row indices are the domain here
fn scan<F>(
    region: &LocalRegion,
    design: &Design,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    timer: &mut PhaseTimes,
    mut emit: F,
) where
    F: FnMut(usize, &[&InsInterval], Evaluation),
{
    let ht = target.h as usize;
    let hw = region.height();
    if ht == 0 || hw < ht {
        return;
    }
    let intervals = region.insertion_intervals(target.w);
    if intervals.is_empty() {
        return;
    }
    let aspect = design.grid().aspect();
    let fp = design.floorplan();
    // Precompute which windows' bottom rows pass the rail filter.
    let rail_ok: Vec<bool> = (0..hw)
        .map(|t| {
            cfg.rail_mode == PowerRailMode::Relaxed
                || fp.rail_compatible(target.rail, target.h, region.bottom_row + t as i32)
        })
        .collect();

    #[derive(Clone, Copy)]
    struct Event {
        x: i32,
        close: bool,
        idx: u32,
    }
    let mut events = Vec::with_capacity(intervals.len() * 2);
    for (i, iv) in intervals.iter().enumerate() {
        events.push(Event {
            x: iv.range.lo,
            close: false,
            idx: i as u32,
        });
        events.push(Event {
            x: iv.range.hi,
            close: true,
            idx: i as u32,
        });
    }
    // Left endpoints precede right endpoints at equal x so touching
    // intervals (zero-width common cutline) still combine.
    events.sort_by_key(|e| (e.x, e.close));

    // queues[a][s]: open interval ids of row s pairable with row a.
    let mut queues: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); hw]; hw];
    let pair_lo = |a: usize| a.saturating_sub(ht - 1);
    let pair_hi = |a: usize| (a + ht - 1).min(hw - 1);

    let mut emitted = 0usize;
    let mut combo: Vec<&InsInterval> = Vec::with_capacity(ht);

    'events: for ev in events {
        let iv = &intervals[ev.idx as usize];
        let a = iv.row;
        if ev.close {
            for r in pair_lo(a)..=pair_hi(a) {
                if r != a {
                    queues[r][a].retain(|&j| j != ev.idx);
                }
            }
            continue;
        }
        // (1) Multi-row blocking: purge intervals on the far side of the
        // left cell.
        if let Some(ci) = iv.left {
            let c = &region.cells[ci as usize];
            if c.h > 1 {
                for row in c.y..c.y + c.h {
                    let s = (row - region.bottom_row) as usize;
                    if s != a && s >= pair_lo(a) && s <= pair_hi(a) {
                        queues[a][s].retain(|&j| intervals[j as usize].left == Some(ci));
                    }
                }
            }
        }
        // (2) Emit {I} x product of queues over each window containing `a`.
        if ht == 1 {
            if rail_ok[a] {
                combo.clear();
                combo.push(iv);
                let probe = timer.start();
                let eval = score(
                    region,
                    &combo,
                    target,
                    region.bottom_row + a as i32,
                    aspect,
                    cfg,
                );
                timer.stop(Phase::Evaluate, probe);
                emit(a, &combo, eval);
                emitted += 1;
                if emitted >= cfg.max_insertion_points {
                    break 'events;
                }
            }
        } else {
            let t_lo = a.saturating_sub(ht - 1);
            let t_hi = a.min(hw - ht);
            for t in t_lo..=t_hi {
                if !rail_ok[t] {
                    continue;
                }
                // Depth-first product over rows t..t+ht.
                if !product_emit(
                    region,
                    target,
                    cfg,
                    &queues,
                    &intervals,
                    iv,
                    a,
                    t,
                    ht,
                    aspect,
                    &mut combo,
                    &mut emitted,
                    timer,
                    &mut emit,
                ) {
                    break 'events;
                }
            }
        }
        // (3) Publish the interval for future pairings.
        for r in pair_lo(a)..=pair_hi(a) {
            if r != a {
                queues[r][a].push(ev.idx);
            }
        }
    }
}

/// Emits all combinations for one window `t`; returns `false` when the cap
/// is hit.
#[allow(clippy::too_many_arguments)]
fn product_emit<'r, F>(
    region: &'r LocalRegion,
    target: &TargetSpec,
    cfg: &LegalizerConfig,
    queues: &[Vec<Vec<u32>>],
    intervals: &'r [InsInterval],
    current: &'r InsInterval,
    a: usize,
    t: usize,
    ht: usize,
    aspect: f64,
    combo: &mut Vec<&'r InsInterval>,
    emitted: &mut usize,
    timer: &mut PhaseTimes,
    emit: &mut F,
) -> bool
where
    F: FnMut(usize, &[&InsInterval], Evaluation),
{
    fn rec<'r, F>(
        region: &'r LocalRegion,
        target: &TargetSpec,
        cfg: &LegalizerConfig,
        queues: &[Vec<Vec<u32>>],
        intervals: &'r [InsInterval],
        current: &'r InsInterval,
        a: usize,
        t: usize,
        ht: usize,
        s: usize,
        aspect: f64,
        combo: &mut Vec<&'r InsInterval>,
        emitted: &mut usize,
        timer: &mut PhaseTimes,
        emit: &mut F,
    ) -> bool
    where
        F: FnMut(usize, &[&InsInterval], Evaluation),
    {
        if s == t + ht {
            // The paper's queue clearing makes pairs sharing a row with the
            // generating interval side-consistent, which is complete for
            // h ≤ 2. For taller targets a pair of *other* rows can still
            // straddle a multi-row cell (e.g. rows 1/2 of a 3-row window
            // generated from row 3), so verify explicitly.
            if ht >= 3 && !combo_is_side_consistent(region, combo) {
                return true;
            }
            let probe = timer.start();
            let eval = score(
                region,
                combo,
                target,
                region.bottom_row + t as i32,
                aspect,
                cfg,
            );
            timer.stop(Phase::Evaluate, probe);
            emit(t, combo, eval);
            *emitted += 1;
            return *emitted < cfg.max_insertion_points;
        }
        if s == a {
            combo.push(current);
            let go = rec(
                region,
                target,
                cfg,
                queues,
                intervals,
                current,
                a,
                t,
                ht,
                s + 1,
                aspect,
                combo,
                emitted,
                timer,
                emit,
            );
            combo.pop();
            return go;
        }
        for &j in &queues[a][s] {
            combo.push(&intervals[j as usize]);
            let go = rec(
                region,
                target,
                cfg,
                queues,
                intervals,
                current,
                a,
                t,
                ht,
                s + 1,
                aspect,
                combo,
                emitted,
                timer,
                emit,
            );
            combo.pop();
            if !go {
                return false;
            }
        }
        true
    }
    combo.clear();
    rec(
        region, target, cfg, queues, intervals, current, a, t, ht, t, aspect, combo, emitted,
        timer, emit,
    )
}

/// True if no multi-row local cell has combo intervals on both of its
/// sides. An interval on row `lr` is left of cell `M` (spanning `lr`) when
/// its gap index does not exceed `M`'s list position on that row.
pub(crate) fn combo_is_side_consistent(region: &LocalRegion, combo: &[&InsInterval]) -> bool {
    for iv in combo {
        for &ci in region.rows[iv.row]
            .as_ref()
            .expect("combo rows have segments")
            .cells
            .iter()
        {
            let cell = &region.cells[ci as usize];
            if cell.h <= 1 {
                continue;
            }
            let mut side: Option<bool> = None; // Some(true) = all left of cell
            for other in combo {
                let row = region.bottom_row + other.row as i32;
                if row < cell.y || row >= cell.y + cell.h {
                    continue;
                }
                let pos = cell.pos_in_row[(row - cell.y) as usize] as usize;
                let is_left = other.gap <= pos;
                match side {
                    None => side = Some(is_left),
                    Some(s) if s != is_left => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

fn score(
    region: &LocalRegion,
    combo: &[&InsInterval],
    target: &TargetSpec,
    bottom_row_global: i32,
    aspect: f64,
    cfg: &LegalizerConfig,
) -> Evaluation {
    match cfg.eval_mode {
        EvalMode::Approximate => evaluate(region, combo, target, bottom_row_global, aspect),
        EvalMode::Exact => evaluate_exact(region, combo, target, bottom_row_global, aspect),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::{CellId, DesignBuilder, PlacementState};
    use mrl_geom::{PowerRail, SitePoint, SiteRect};

    fn setup(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)],
    ) -> (LocalRegion, Vec<CellId>, Design) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            // Rails are irrelevant to these fixtures' placements.
            state
                .place_ignoring_rails(&design, id, SitePoint::new(x, y))
                .unwrap();
        }
        let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, width, rows));
        (region, ids, design)
    }

    fn target(w: i32, h: i32, x: i32, y: i32) -> TargetSpec {
        TargetSpec {
            w,
            h,
            x,
            y,
            rail: PowerRail::Vdd,
        }
    }

    fn relaxed() -> LegalizerConfig {
        LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed)
    }

    #[test]
    fn single_row_target_gets_one_point_per_interval() {
        let (region, _, design) = setup(2, 12, &[(2, 1, 4, 0), (3, 1, 2, 1)]);
        let t = target(2, 1, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        let n_intervals = region.insertion_intervals(2).len();
        assert_eq!(pts.len(), n_intervals);
    }

    #[test]
    fn double_row_target_combines_consecutive_rows() {
        // Empty 3-row region, width 10, target 2x2: windows (0,1) and (1,2),
        // one interval per row -> 2 insertion points.
        let (region, _, design) = setup(3, 10, &[]);
        let t = target(2, 2, 4, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        assert_eq!(pts.len(), 2);
        let bottoms: Vec<_> = pts.iter().map(|p| p.bottom_row).collect();
        assert!(bottoms.contains(&0) && bottoms.contains(&1));
        assert!(pts.iter().all(|p| p.intervals.len() == 2));
    }

    #[test]
    fn figure8_opposite_sides_of_multi_row_cell_do_not_combine() {
        // Two rows [0,20), multi-row a(2x2)@9 with slack on both sides.
        let (region, ids, design) = setup(2, 20, &[(2, 2, 9, 0)]);
        let a = region.local_index_of(ids[0]).unwrap();
        let t = target(2, 2, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        // Only all-left or all-right combinations are valid.
        assert_eq!(pts.len(), 2);
        for p in &pts {
            let sides: Vec<bool> = p
                .intervals
                .iter()
                .map(|iv| iv.right == Some(a)) // true = left of a
                .collect();
            assert!(
                sides.iter().all(|&s| s) || sides.iter().all(|&s| !s),
                "mixed-side insertion point {:?}",
                p
            );
        }
    }

    #[test]
    fn figure8_mixed_sides_allowed_without_multi_row_cell() {
        // Same geometry but two independent single-row cells: mixed
        // combinations are now valid.
        let (region, _, design) = setup(2, 20, &[(2, 1, 9, 0), (2, 1, 9, 1)]);
        let t = target(2, 2, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        // 2x2 gap choices, all with common cutlines.
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn rail_filter_restricts_even_height_targets() {
        let (region, _, design) = setup(4, 10, &[]);
        // VDD-bottom double-height target: bottom rows 0 and 2 only.
        let t = target(2, 2, 4, 0);
        let aligned = LegalizerConfig::default();
        let pts = enumerate_insertion_points(&region, &design, &t, &aligned);
        let bottoms: Vec<_> = pts.iter().map(|p| p.bottom_row).collect();
        assert_eq!(bottoms, vec![0, 2]);
        // VSS-bottom variant gets the complementary rows.
        let t_vss = TargetSpec {
            rail: PowerRail::Vss,
            ..t
        };
        let pts = enumerate_insertion_points(&region, &design, &t_vss, &aligned);
        let bottoms: Vec<_> = pts.iter().map(|p| p.bottom_row).collect();
        assert_eq!(bottoms, vec![1]);
        // Odd-height targets are unrestricted.
        let t_odd = target(2, 1, 4, 0);
        let pts = enumerate_insertion_points(&region, &design, &t_odd, &aligned);
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn no_insertion_point_when_target_cannot_fit() {
        // Row [0,6) fully packed by one 6-wide cell.
        let (region, _, design) = setup(1, 6, &[(6, 1, 0, 0)]);
        let t = target(2, 1, 2, 0);
        assert!(find_best_insertion_point(&region, &design, &t, &relaxed()).is_none());
    }

    #[test]
    fn best_point_prefers_zero_displacement_gap() {
        // Row [0,20): cells at 0..2 and 10..12; target w2 wants x=14 — the
        // gap right of the second cell costs nothing.
        let (region, ids, design) = setup(1, 20, &[(2, 1, 0, 0), (2, 1, 10, 0)]);
        let t = target(2, 1, 14, 0);
        let best = find_best_insertion_point(&region, &design, &t, &relaxed()).unwrap();
        assert_eq!(best.eval.cost, 0.0);
        assert_eq!(best.eval.x, 14);
        let b = region.local_index_of(ids[1]).unwrap();
        assert_eq!(best.intervals[0].left, Some(b));
    }

    #[test]
    fn taller_target_than_region_yields_nothing() {
        let (region, _, design) = setup(2, 10, &[]);
        let t = target(2, 3, 0, 0);
        assert!(enumerate_insertion_points(&region, &design, &t, &relaxed()).is_empty());
    }

    #[test]
    fn cap_limits_emissions() {
        let (region, _, design) = setup(1, 30, &[(2, 1, 5, 0), (2, 1, 10, 0), (2, 1, 15, 0)]);
        let t = target(2, 1, 8, 0);
        let mut cfg = relaxed();
        cfg.max_insertion_points = 2;
        let pts = enumerate_insertion_points(&region, &design, &t, &cfg);
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn triple_row_target_with_multi_row_cell_blocking() {
        // Figure 5 family: 4 rows, a multi-row cell on rows 1-2, target 3
        // rows tall. Combinations crossing the multi-row cell must agree on
        // side.
        let (region, ids, design) = setup(4, 20, &[(2, 2, 9, 1), (2, 1, 3, 0), (2, 1, 14, 3)]);
        let m = region.local_index_of(ids[0]).unwrap();
        let t = target(2, 3, 6, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        assert!(!pts.is_empty());
        for p in &pts {
            let sides: Vec<Option<bool>> = p
                .intervals
                .iter()
                .map(|iv| {
                    if iv.left == Some(m) {
                        Some(false) // right of m
                    } else if iv.right == Some(m) {
                        Some(true) // left of m
                    } else {
                        None
                    }
                })
                .collect();
            let lefts = sides.iter().flatten().filter(|&&s| s).count();
            let rights = sides.iter().flatten().filter(|&&s| !s).count();
            assert!(
                lefts == 0 || rights == 0,
                "insertion point mixes sides of the multi-row cell: {:?}",
                p
            );
        }
    }
}
