//! Legal placement realization (Section 5.3, Algorithm 2).
//!
//! Given a chosen insertion point and the optimal target position, the
//! target cell is placed and overlaps are resolved by two waves of minimal
//! pushes: cells overlapped on the left are shifted just far enough left
//! (recursively over their own left neighbors in every row they span), then
//! the same toward the right. The waves never move a cell past its
//! leftmost/rightmost bound because the insertion interval construction
//! already restricted the target to positions where the pushes fit.

use crate::enumerate::InsertionPoint;
use crate::evaluate::TargetSpec;
use crate::region::LocalRegion;
use mrl_db::CellId;
use std::collections::VecDeque;

/// The cell moves realizing one insertion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Realization {
    /// Local cells whose x changed, with their new x.
    pub moves: Vec<(CellId, i32)>,
    /// Final x of the target's left edge.
    pub target_x: i32,
    /// Final global bottom row of the target.
    pub target_row: i32,
    /// Total displacement of the moved local cells in site widths
    /// (excluding the target's own displacement).
    pub cell_displacement: i64,
}

/// Realizes an insertion point: returns the minimal set of horizontal
/// shifts that make room for the target at `point.eval.x`.
///
/// # Panics
///
/// Debug builds assert that no push exceeds a cell's leftmost/rightmost
/// bound, which valid insertion points guarantee.
pub fn realize(region: &LocalRegion, point: &InsertionPoint, target: &TargetSpec) -> Realization {
    let xt = point.eval.x;
    let cells = &region.cells;
    let mut xs: Vec<i32> = cells.x.clone();
    let mut queue: VecDeque<u32> = VecDeque::new();

    // Left wave: cells overlapped by the target move left.
    for iv in &point.intervals {
        if let Some(ci) = iv.left {
            let i = ci as usize;
            if xs[i] + cells.w[i] > xt {
                xs[i] = xt - cells.w[i];
                queue.push_back(ci);
            }
        }
    }
    while let Some(ci) = queue.pop_front() {
        let i = ci as usize;
        debug_assert!(xs[i] >= cells.x_left[i], "left push exceeds xL");
        for row in cells.y[i]..cells.y[i] + cells.h[i] {
            let lr = (row - region.bottom_row) as usize;
            if let Some(p) = region.left_neighbor_of(ci, lr) {
                let pi = p as usize;
                if xs[pi] + cells.w[pi] > xs[i] {
                    xs[pi] = xs[i] - cells.w[pi];
                    queue.push_back(p);
                }
            }
        }
    }

    // Right wave: cells overlapped by the target move right.
    for iv in &point.intervals {
        if let Some(ci) = iv.right {
            let i = ci as usize;
            if xs[i] < xt + target.w {
                xs[i] = xt + target.w;
                queue.push_back(ci);
            }
        }
    }
    while let Some(ci) = queue.pop_front() {
        let i = ci as usize;
        debug_assert!(xs[i] <= cells.x_right[i], "right push exceeds xR");
        for row in cells.y[i]..cells.y[i] + cells.h[i] {
            let lr = (row - region.bottom_row) as usize;
            if let Some(n) = region.right_neighbor_of(ci, lr) {
                let ni = n as usize;
                if xs[ni] < xs[i] + cells.w[i] {
                    xs[ni] = xs[i] + cells.w[i];
                    queue.push_back(n);
                }
            }
        }
    }

    let mut moves = Vec::new();
    let mut cell_displacement = 0i64;
    for (i, &x) in xs.iter().enumerate().take(cells.len()) {
        if x != cells.x[i] {
            moves.push((cells.id[i], x));
            cell_displacement += i64::from((x - cells.x[i]).abs());
        }
    }
    Realization {
        moves,
        target_x: xt,
        target_row: region.bottom_row + point.bottom_row as i32,
        cell_displacement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LegalizerConfig, PowerRailMode};
    use crate::enumerate::enumerate_insertion_points;
    use mrl_db::{CellId, Design, DesignBuilder, PlacementState};
    use mrl_geom::{PowerRail, SitePoint, SiteRect};

    fn setup(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)],
    ) -> (LocalRegion, Vec<CellId>, Design) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            state.place(&design, id, SitePoint::new(x, y)).unwrap();
        }
        let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, width, rows));
        (region, ids, design)
    }

    fn target(w: i32, h: i32, x: i32, y: i32) -> TargetSpec {
        TargetSpec {
            w,
            h,
            x,
            y,
            rail: PowerRail::Vdd,
        }
    }

    fn relaxed() -> LegalizerConfig {
        LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed)
    }

    /// Picks the enumerated insertion point with minimal cost.
    fn best(
        region: &LocalRegion,
        design: &Design,
        t: &TargetSpec,
    ) -> crate::enumerate::InsertionPoint {
        enumerate_insertion_points(region, design, t, &relaxed())
            .into_iter()
            .min_by(|a, b| a.eval.cost.total_cmp(&b.eval.cost))
            .expect("feasible point")
    }

    #[test]
    fn no_moves_when_gap_is_wide_enough() {
        let (region, _, design) = setup(1, 20, &[(2, 1, 0, 0), (2, 1, 10, 0)]);
        let t = target(2, 1, 5, 0);
        let p = best(&region, &design, &t);
        let r = realize(&region, &p, &t);
        assert!(r.moves.is_empty());
        assert_eq!(r.target_x, 5);
        assert_eq!(r.cell_displacement, 0);
    }

    #[test]
    fn single_left_push() {
        // a(w3)@2 with slack to the left; insert t(w3) overlapping a's
        // right flank: a gets pushed left.
        let (region, ids, design) = setup(1, 12, &[(3, 1, 2, 0)]);
        let t = target(3, 1, 4, 0);
        let p = best(&region, &design, &t);
        let r = realize(&region, &p, &t);
        assert_eq!(r.target_x, 4);
        assert_eq!(r.moves, vec![(ids[0], 1)]);
        assert_eq!(r.cell_displacement, 1);
    }

    #[test]
    fn chain_push_propagates() {
        // Packed chain a@0 b@3 c@6 (w3 each) against left wall, free space
        // to the right; inserting t(w3) before a... impossible (no room
        // left). Insert between c and the wall instead and push nothing.
        // For a real chain: cells at 4,7,10 (w3), wall at 20; insert t at 2
        // in gap (L, a): fits without pushes. Desired x=5 overlaps a:
        // optimum shifts right chain? Gap (L,a) range [0, xR_a-3].
        let (region, ids, design) = setup(1, 20, &[(3, 1, 4, 0), (3, 1, 7, 0), (3, 1, 10, 0)]);
        let t = target(3, 1, 5, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        // Choose specifically the gap (L, a) and force x = 5: a, b, c all
        // shift right by 1 via the chain.
        let a = region.local_index_of(ids[0]).unwrap();
        let p = pts
            .iter()
            .find(|p| p.intervals[0].right == Some(a))
            .unwrap();
        let mut forced = p.clone();
        forced.eval.x = 5;
        let r = realize(&region, &forced, &t);
        assert_eq!(r.target_x, 5);
        let mut moves = r.moves.clone();
        moves.sort_by_key(|&(id, _)| id);
        assert_eq!(moves, vec![(ids[0], 8), (ids[1], 11), (ids[2], 14)]);
        assert_eq!(r.cell_displacement, 4 + 4 + 4);
    }

    #[test]
    fn multi_row_push_propagates_across_rows() {
        // rows 0-1: m(2x2)@4; s(2x1)@6 on row 1 only. Pushing m right via a
        // row-0 insertion also pushes s.
        let (region, ids, design) = setup(2, 12, &[(2, 2, 4, 0), (2, 1, 6, 1)]);
        let t = target(4, 1, 0, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        let m = region.local_index_of(ids[0]).unwrap();
        // Gap (L, m) on row 0, forced to x = 2: m -> 6, s -> 8.
        let p = pts
            .iter()
            .find(|p| p.intervals[0].row == 0 && p.intervals[0].right == Some(m))
            .unwrap();
        let mut forced = p.clone();
        forced.eval.x = 2;
        let r = realize(&region, &forced, &t);
        let mut moves = r.moves.clone();
        moves.sort_by_key(|&(id, _)| id);
        assert_eq!(moves, vec![(ids[0], 6), (ids[1], 8)]);
    }

    #[test]
    fn both_waves_in_one_realization() {
        // a(w2)@3, b(w2)@5 tightly packed in the middle of [0,12); insert
        // t(w2) exactly between them at x=4: a -> 2, b -> 6.
        let (region, ids, design) = setup(1, 12, &[(2, 1, 3, 0), (2, 1, 5, 0)]);
        let t = target(2, 1, 4, 0);
        let pts = enumerate_insertion_points(&region, &design, &t, &relaxed());
        let a = region.local_index_of(ids[0]).unwrap();
        let b = region.local_index_of(ids[1]).unwrap();
        let p = pts
            .iter()
            .find(|p| p.intervals[0].left == Some(a) && p.intervals[0].right == Some(b))
            .unwrap();
        let mut forced = p.clone();
        forced.eval.x = 4;
        let r = realize(&region, &forced, &t);
        let mut moves = r.moves.clone();
        moves.sort_by_key(|&(id, _)| id);
        assert_eq!(moves, vec![(ids[0], 2), (ids[1], 6)]);
        assert_eq!(r.cell_displacement, 2);
    }

    #[test]
    fn realized_cost_matches_exact_evaluation() {
        // Random-ish scenario: verify the exact evaluator's cost equals
        // realized displacement + target displacement.
        let (region, _, design) = setup(
            2,
            16,
            &[(2, 1, 3, 0), (2, 2, 6, 0), (2, 1, 9, 1), (3, 1, 10, 0)],
        );
        let t = target(3, 1, 7, 0);
        let cfg = relaxed().with_eval_mode(crate::EvalMode::Exact);
        let pts = enumerate_insertion_points(&region, &design, &t, &cfg);
        for p in &pts {
            let r = realize(&region, p, &t);
            let target_disp = i64::from((r.target_x - t.x).abs());
            let vertical = f64::from((r.target_row - t.y).abs()) * design.grid().aspect();
            let realized = r.cell_displacement as f64 + target_disp as f64 + vertical;
            assert!(
                (realized - p.eval.cost).abs() < 1e-9,
                "exact eval {} != realized {} for {:?}",
                p.eval.cost,
                realized,
                p
            );
        }
    }
}
