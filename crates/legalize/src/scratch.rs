//! Reusable per-worker scratch memory for the MLL kernel.
//!
//! One MLL attempt runs extract → enumerate → evaluate over buffers whose
//! sizes are bounded by the local window, and the drivers run millions of
//! attempts back to back. A [`ScratchArena`] owns every transient buffer
//! the enumeration/evaluation kernel needs — interval lists, scanline
//! events, pairing queues, combination stacks, the branch-and-bound
//! candidate pool, and the critical-position vectors — so that after the
//! first few attempts warm the capacities, the steady-state kernel performs
//! **zero heap allocations**.
//!
//! Ownership rules (also documented in DESIGN.md §6):
//!
//! * One arena per thread. The sequential driver owns one for its whole
//!   run; each parallel-stripe worker owns one for the stripes it claims;
//!   the retry loop reuses the driver's arena. Arenas are never shared.
//! * The arena carries no results: every buffer is dead between kernel
//!   calls and is cleared (not shrunk) on entry. Callers must not read an
//!   arena after the call that filled it returns.
//! * Convenience entry points (`mll`, `find_best_insertion_point`, …)
//!   construct a fresh arena internally; only the drivers thread a
//!   long-lived one through [`crate::mll::mll_transacted_in`].

use crate::interval::InsInterval;
use crate::region::{ExtractScratch, LocalRegion};
use std::cmp::Ordering;

/// One scanline event: an interval endpoint.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ScanEvent {
    /// Endpoint x-coordinate.
    pub x: i32,
    /// True for a right (closing) endpoint.
    pub close: bool,
    /// Index of the interval in the arena's interval buffer.
    pub idx: u32,
}

/// A generated insertion-point combination awaiting exact evaluation,
/// keyed by its admissible displacement lower bound.
///
/// `Ord` is **reversed** so that [`std::collections::BinaryHeap`] (a
/// max-heap) pops the smallest `(bound, emit_idx)` first; `emit_idx` is the
/// scanline emission rank and makes the order — and therefore the search
/// result — fully deterministic.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    /// Admissible lower bound on the combination's total cost.
    pub bound: f64,
    /// Rank in scanline emission order (the exhaustive tie-break order).
    pub emit_idx: u32,
    /// Local bottom row of the spanned window.
    pub bottom_row: u32,
    /// Start of the combination's `target.h` interval ids in
    /// [`ScratchArena::pool`].
    pub pool_start: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.emit_idx.cmp(&self.emit_idx))
    }
}

/// Scratch buffers for [`crate::evaluate`]: hinge breakpoints and the
/// chain-propagation state of the exact evaluator.
#[derive(Debug, Default)]
pub(crate) struct EvalScratch {
    /// Left-side critical positions (`x^a`), plus the target term.
    pub a: Vec<i64>,
    /// Right-side critical positions (`x^b`), plus the target term.
    pub b: Vec<i64>,
    /// Per-local-cell membership of the left push set.
    pub in_left: Vec<bool>,
    /// Per-local-cell membership of the right push set.
    pub in_right: Vec<bool>,
    /// DFS stack for the neighbor-DAG closures.
    pub stack: Vec<u32>,
    /// Resolved `x^a` per local cell (`i64::MIN` = unresolved).
    pub xa: Vec<i64>,
    /// Resolved `x^b` per local cell (`i64::MAX` = unresolved).
    pub xb: Vec<i64>,
}

/// Reusable buffers for one thread's MLL kernel calls. See the module docs
/// for the ownership rules.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Insertion intervals of the current region/target.
    pub(crate) intervals: Vec<InsInterval>,
    /// Scanline endpoint events over `intervals`.
    pub(crate) events: Vec<ScanEvent>,
    /// Per-window-bottom-row power-rail feasibility.
    pub(crate) rail_ok: Vec<bool>,
    /// Pairing queues `Q[a][s]`, flattened to `a * height + s`. Inner
    /// vectors keep their capacity across calls.
    pub(crate) queues: Vec<Vec<u32>>,
    /// DFS stack of interval ids forming the combination under
    /// construction.
    pub(crate) combo: Vec<u32>,
    /// The current combination materialized for the evaluators.
    pub(crate) combo_buf: Vec<InsInterval>,
    /// Flat storage of generated combinations (`target.h` ids each).
    pub(crate) pool: Vec<u32>,
    /// Branch-and-bound candidates; doubles as the binary heap's backing
    /// storage so the heap itself allocates nothing in steady state.
    pub(crate) cands: Vec<Candidate>,
    /// The incumbent best combination's interval ids.
    pub(crate) best_combo: Vec<u32>,
    /// Evaluator scratch.
    pub(crate) eval: EvalScratch,
    /// The reusable local region (SoA buffers kept warm across MLL calls).
    pub(crate) region: LocalRegion,
    /// Extraction scratch (inside-cell map, interval buffers, chosen runs).
    pub(crate) extract: ExtractScratch,
}

impl ScratchArena {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn cand(bound: f64, emit_idx: u32) -> Candidate {
        Candidate {
            bound,
            emit_idx,
            bottom_row: 0,
            pool_start: 0,
        }
    }

    #[test]
    fn heap_pops_smallest_bound_then_earliest_emission() {
        let mut heap =
            BinaryHeap::from(vec![cand(2.0, 0), cand(1.0, 3), cand(1.0, 1), cand(0.5, 7)]);
        let order: Vec<(f64, u32)> = std::iter::from_fn(|| heap.pop())
            .map(|c| (c.bound, c.emit_idx))
            .collect();
        assert_eq!(order, vec![(0.5, 7), (1.0, 1), (1.0, 3), (2.0, 0)]);
    }

    #[test]
    fn arena_buffers_keep_capacity_after_clear() {
        let mut arena = ScratchArena::new();
        arena.pool.extend_from_slice(&[1, 2, 3, 4]);
        let cap = arena.pool.capacity();
        arena.pool.clear();
        assert!(arena.pool.capacity() >= cap);
        assert!(arena.pool.is_empty());
    }
}
