//! Optimal fixed-order single-row re-packing (the classic detailed
//! placement primitive of refs. \[8\]/\[9\] of the paper: "solving a fixed
//! order single row placement problem optimally").
//!
//! For a run of single-row cells in fixed order, minimizing total
//! displacement `Σ |x_i − x*_i|` subject to non-overlap is solved exactly
//! by *clumping*: place each cell at its target, and while two neighbours
//! overlap merge them into a cluster positioned at the weighted median of
//! its members' (offset-adjusted) targets.
//!
//! The paper's Section 1 observes that this technique "cannot be modified
//! easily to handle multi-row height cells" — an overlap-free solution in
//! one row may create overlaps in the rows above or below. The sound
//! adaptation implemented here therefore treats every multi-row cell as a
//! fixed barrier and re-packs only the single-row runs between barriers,
//! which is optimal per run and provably cannot disturb other rows. Used
//! as a cheap displacement-recovery pass after MLL legalization.

use mrl_db::{CellId, DbError, Design, PlacementState};

/// Statistics of one refinement pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RefineStats {
    /// Cells whose position changed.
    pub moved: usize,
    /// Total displacement (site widths) against the input positions,
    /// before the pass.
    pub disp_before: f64,
    /// Total displacement after the pass.
    pub disp_after: f64,
}

/// One clumping cluster.
struct Cluster {
    /// Cells in order with their widths.
    cells: Vec<(CellId, i32)>,
    /// Offset-adjusted targets (x*_i − prefix width before i in cluster).
    targets: Vec<f64>,
    /// Total width.
    width: i32,
    /// Current optimal x (unclamped median, then clamped).
    x: i32,
}

impl Cluster {
    fn optimal_x(&mut self, lo: i32, hi: i32) -> i32 {
        // Lower median minimizes the sum of absolute deviations.
        let mut t = self.targets.clone();
        t.sort_by(f64::total_cmp);
        let med = t[(t.len() - 1) / 2].round() as i32;
        self.x = med.clamp(lo, (hi - self.width).max(lo));
        self.x
    }
}

/// Optimally re-packs every maximal run of single-row cells between
/// multi-row cells, segment boundaries, and blockages, minimizing total
/// displacement to the design's input positions while keeping cell order.
/// Never moves multi-row cells. Returns per-pass statistics.
///
/// # Errors
///
/// Propagates database errors from committing the moves (cannot occur for
/// legal inputs; the computed positions respect order and bounds).
pub fn refine_rows(design: &Design, state: &mut PlacementState) -> Result<RefineStats, DbError> {
    let fp = design.floorplan();
    let mut stats = RefineStats::default();
    let mut moves: Vec<(CellId, i32)> = Vec::new();

    for row in 0..fp.num_rows() {
        // Fence x-intervals crossing this row, sorted: run boundaries in
        // addition to multi-row cells (fences are exclusive, so a run may
        // never clump across a fence edge in either direction).
        let mut fences: Vec<(i32, i32)> = design
            .regions()
            .iter()
            .flat_map(|r| r.rects())
            .filter(|r| r.y <= row && row < r.top())
            .map(|r| (r.x, r.right()))
            .collect();
        fences.sort_unstable();
        // Zone of an x position: Some(k) inside fence k, None outside —
        // plus the bin between fences so free zones on either side differ.
        let zone_of = |x: i32| -> (usize, bool) {
            let idx = fences.partition_point(|&(_, b)| b <= x);
            match fences.get(idx) {
                Some(&(a, _)) if x >= a => (idx, true), // inside fence idx
                _ => (idx, false),                      // free gap before fence idx
            }
        };
        for (si, seg) in fp.segments_in_row(row).iter().enumerate() {
            let base = fp.row_segment_base(row).expect("row exists");
            let seg_id = mrl_db::SegId::from_usize(base + si);
            // Split the ordered list into runs of single-row cells bounded
            // by multi-row cells and fence-zone changes.
            let list: Vec<CellId> = state.segment_cells(seg_id).to_vec();
            let mut run: Vec<CellId> = Vec::new();
            let mut run_lo = seg.x;
            let mut run_zone: Option<(usize, bool)> = None;
            let zone_bounds = |zone: (usize, bool)| -> (i32, i32) {
                let (idx, inside) = zone;
                if inside {
                    (fences[idx].0, fences[idx].1)
                } else {
                    let lo = if idx == 0 {
                        i32::MIN
                    } else {
                        fences[idx - 1].1
                    };
                    let hi = fences.get(idx).map(|&(a, _)| a).unwrap_or(i32::MAX);
                    (lo, hi)
                }
            };
            let flush = |run: &mut Vec<CellId>,
                         run_lo: i32,
                         run_hi: i32,
                         zone: Option<(usize, bool)>,
                         moves: &mut Vec<(CellId, i32)>| {
                if !run.is_empty() {
                    let (zlo, zhi) = zone.map(&zone_bounds).unwrap_or((i32::MIN, i32::MAX));
                    repack_run(run_lo.max(zlo), run_hi.min(zhi), design, run, moves);
                }
                run.clear();
            };
            for &cell in &list {
                let c = design.cell(cell);
                let p = state.position(cell).expect("listed cell placed");
                if c.height() > 1 {
                    flush(&mut run, run_lo, p.x, run_zone, &mut moves);
                    run_lo = p.x + c.width();
                    run_zone = None;
                    continue;
                }
                let zone = zone_of(p.x);
                if run_zone.is_some() && run_zone != Some(zone) {
                    // Zone change: close the previous run at the current
                    // cell's zone boundary.
                    flush(&mut run, run_lo, i32::MAX, run_zone, &mut moves);
                    run_lo = seg.x.max(zone_bounds(zone).0);
                }
                run_zone = Some(zone);
                run.push(cell);
            }
            flush(&mut run, run_lo, seg.right(), run_zone, &mut moves);
        }
    }

    // Measure, commit, re-measure.
    let aspect = design.grid().aspect();
    let disp = |state: &PlacementState| -> f64 {
        design
            .movable_cells()
            .filter_map(|c| {
                let p = state.position(c)?;
                let (ix, iy) = design.input_position(c);
                Some((f64::from(p.x) - ix).abs() + (f64::from(p.y) - iy).abs() * aspect)
            })
            .sum()
    };
    stats.disp_before = disp(state);
    let moves: Vec<(CellId, i32)> = moves
        .into_iter()
        .filter(|&(c, x)| state.position(c).map(|p| p.x) != Some(x))
        .collect();
    stats.moved = moves.len();
    state.shift_batch(design, &moves)?;
    stats.disp_after = disp(state);
    debug_assert!(stats.disp_after <= stats.disp_before + 1e-9);
    Ok(stats)
}

/// Clumps one run of single-row cells into `[lo, hi)` and records moves.
/// The caller guarantees the bounds respect segments, multi-row barriers,
/// and fence zones.
fn repack_run(lo: i32, hi: i32, design: &Design, run: &[CellId], moves: &mut Vec<(CellId, i32)>) {
    let mut clusters: Vec<Cluster> = Vec::new();
    for &cell in run {
        let c = design.cell(cell);
        let (tx, _) = design.input_position(cell);
        let mut cur = Cluster {
            cells: vec![(cell, c.width())],
            targets: vec![tx],
            width: c.width(),
            x: 0,
        };
        cur.optimal_x(lo, hi);
        // Merge with predecessors while overlapping.
        while let Some(prev) = clusters.last_mut() {
            if prev.x + prev.width <= cur.x {
                break;
            }
            let prev = clusters.pop().expect("non-empty");
            // Prepend prev: adjust cur's targets by prev.width.
            let mut targets = prev.targets;
            targets.extend(cur.targets.iter().map(|t| t - f64::from(prev.width)));
            let mut cells = prev.cells;
            cells.extend(cur.cells);
            cur = Cluster {
                width: prev.width + cur.width,
                cells,
                targets,
                x: 0,
            };
            cur.optimal_x(lo, hi);
        }
        clusters.push(cur);
    }
    for cluster in &clusters {
        let mut x = cluster.x;
        for &(cell, w) in &cluster.cells {
            moves.push((cell, x));
            x += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Legalizer, LegalizerConfig};
    use mrl_db::DesignBuilder;
    use mrl_geom::SitePoint;
    use mrl_metrics::{check_legal, displacement_stats, RailCheck};

    #[test]
    fn repacks_single_row_toward_targets() {
        // Cells legalized away from their targets; refinement recovers.
        let mut b = DesignBuilder::new(1, 30);
        let c0 = b.add_cell("a", 3, 1);
        let c1 = b.add_cell("b", 3, 1);
        b.set_input_position(c0, 10.0, 0.0);
        b.set_input_position(c1, 13.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, c0, SitePoint::new(0, 0)).unwrap();
        state.place(&design, c1, SitePoint::new(20, 0)).unwrap();
        let stats = refine_rows(&design, &mut state).unwrap();
        assert_eq!(stats.moved, 2);
        assert_eq!(state.position(c0), Some(SitePoint::new(10, 0)));
        assert_eq!(state.position(c1), Some(SitePoint::new(13, 0)));
        assert!(stats.disp_after < stats.disp_before);
    }

    #[test]
    fn clumps_overlapping_targets_at_median() {
        // Three cells all wanting x = 10: optimal packing centers the
        // clump so the median cell hits its target.
        let mut b = DesignBuilder::new(1, 30);
        let ids: Vec<_> = (0..3).map(|i| b.add_cell(format!("c{i}"), 2, 1)).collect();
        for &c in &ids {
            b.set_input_position(c, 10.0, 0.0);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (i, &c) in ids.iter().enumerate() {
            state
                .place(&design, c, SitePoint::new(i as i32 * 9, 0))
                .unwrap();
        }
        refine_rows(&design, &mut state).unwrap();
        // Total width 6; optimal cluster x minimizes |x-10|+|x+2-10|+|x+4-10|
        // -> median of {10, 8, 6} = 8.
        assert_eq!(state.position(ids[0]), Some(SitePoint::new(8, 0)));
        assert_eq!(state.position(ids[1]), Some(SitePoint::new(10, 0)));
        assert_eq!(state.position(ids[2]), Some(SitePoint::new(12, 0)));
    }

    #[test]
    fn multi_row_cells_are_barriers() {
        let mut b = DesignBuilder::new(2, 20);
        let s0 = b.add_cell("s0", 2, 1);
        let m = b.add_cell("m", 2, 2);
        let s1 = b.add_cell("s1", 2, 1);
        b.set_input_position(s0, 15.0, 0.0); // wants to cross the barrier
        b.set_input_position(s1, 0.0, 0.0); // wants to cross back
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, s0, SitePoint::new(0, 0)).unwrap();
        state.place(&design, m, SitePoint::new(8, 0)).unwrap();
        state.place(&design, s1, SitePoint::new(14, 0)).unwrap();
        refine_rows(&design, &mut state).unwrap();
        // The barrier never moves; runs stay on their side of it.
        assert_eq!(state.position(m), Some(SitePoint::new(8, 0)));
        assert_eq!(state.position(s0), Some(SitePoint::new(6, 0)));
        assert_eq!(state.position(s1), Some(SitePoint::new(10, 0)));
        check_legal(&design, &state, RailCheck::Enforce).unwrap();
    }

    #[test]
    fn never_worsens_displacement_after_legalization() {
        use mrl_synth::{generate, BenchmarkSpec, GeneratorConfig};
        let spec = BenchmarkSpec::new("refine_e2e", 600, 60, 0.6, 0.0);
        let design = generate(&spec, &GeneratorConfig::default()).unwrap();
        let mut state = PlacementState::new(&design);
        Legalizer::new(LegalizerConfig::default())
            .legalize(&design, &mut state)
            .unwrap();
        let before = displacement_stats(&design, &state).avg_sites;
        let stats = refine_rows(&design, &mut state).unwrap();
        let after = displacement_stats(&design, &state).avg_sites;
        assert!(after <= before + 1e-9, "{before} -> {after}");
        assert!(stats.disp_after <= stats.disp_before);
        check_legal(&design, &state, RailCheck::Enforce).unwrap();
    }

    #[test]
    fn respects_fence_bounds() {
        let mut b = DesignBuilder::new(2, 40);
        let f = b.add_region("f", vec![mrl_geom::SiteRect::new(10, 0, 10, 2)]);
        let m0 = b.add_cell("m0", 3, 1);
        b.assign_region(m0, f);
        // Target far left of the fence; refinement must stop at the edge.
        b.set_input_position(m0, 0.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, m0, SitePoint::new(15, 0)).unwrap();
        refine_rows(&design, &mut state).unwrap();
        assert_eq!(state.position(m0), Some(SitePoint::new(10, 0)));
        check_legal(&design, &state, RailCheck::Enforce).unwrap();
    }

    #[test]
    fn idempotent_on_refined_placement() {
        let mut b = DesignBuilder::new(1, 30);
        let c0 = b.add_cell("a", 3, 1);
        b.set_input_position(c0, 7.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, c0, SitePoint::new(0, 0)).unwrap();
        refine_rows(&design, &mut state).unwrap();
        let stats = refine_rows(&design, &mut state).unwrap();
        assert_eq!(stats.moved, 0);
    }
}
