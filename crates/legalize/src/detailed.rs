//! Wirelength-driven detailed placement with instant legalization — the
//! application the paper's abstract and introduction motivate MLL with
//! (and the style of refs. [11] and [12]: every intermediate placement is
//! legal because each cell move is an MLL insertion).
//!
//! Each pass visits every movable cell, computes its wirelength-optimal
//! position (the median of its nets' other-pin bounding boxes), rips the
//! cell up, and re-inserts it near the optimum via one [`mll_transacted`]
//! call. The move is kept only when the half-perimeter wirelength of the
//! affected nets improves; otherwise the transaction rolls back and the
//! cell returns to its previous spot — try-and-revert at zero risk, which
//! is exactly what local legalization buys.

use crate::config::LegalizerConfig;
use crate::legalizer::Legalizer;
use crate::mll::mll_transacted;
use mrl_db::{CellId, DbError, Design, NetId, PinLocation, PlacementState};
use std::collections::HashMap;

/// Detailed placement statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DetailedStats {
    /// Cell moves attempted (cells whose optimal region was far enough).
    pub tried: usize,
    /// Moves kept.
    pub accepted: usize,
    /// Total HPWL before, in microns.
    pub hpwl_before_um: f64,
    /// Total HPWL after, in microns.
    pub hpwl_after_um: f64,
}

impl DetailedStats {
    /// Relative HPWL improvement (positive = better).
    pub fn improvement(&self) -> f64 {
        if self.hpwl_before_um == 0.0 {
            0.0
        } else {
            1.0 - self.hpwl_after_um / self.hpwl_before_um
        }
    }
}

/// Configuration of the detailed placer.
#[derive(Clone, Debug)]
pub struct DetailedConfig {
    /// Legalizer settings used for the per-move MLL calls.
    pub legalizer: LegalizerConfig,
    /// Number of passes over all cells.
    pub passes: usize,
    /// Skip cells whose optimal position is closer than this (site
    /// widths), they have nothing to gain.
    pub min_move_sites: f64,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self {
            legalizer: LegalizerConfig::default(),
            passes: 1,
            min_move_sites: 1.0,
        }
    }
}

/// The MLL-based detailed placer.
///
/// # Examples
///
/// ```
/// use mrl_db::{DesignBuilder, PlacementState};
/// use mrl_legalize::{DetailedConfig, DetailedPlacer, Legalizer};
///
/// let mut b = DesignBuilder::new(4, 40);
/// let cells: Vec<_> = (0..8).map(|i| b.add_cell(format!("c{i}"), 2, 1)).collect();
/// let net = b.add_net("n");
/// for (i, &c) in cells.iter().enumerate() {
///     b.set_input_position(c, 4.0 * i as f64, (i % 4) as f64);
///     b.add_cell_pin(net, c, 1.0, 0.5);
/// }
/// let design = b.finish()?;
/// let mut state = PlacementState::new(&design);
/// Legalizer::default().legalize(&design, &mut state)?;
/// let stats = DetailedPlacer::new(DetailedConfig::default()).improve(&design, &mut state)?;
/// assert!(stats.hpwl_after_um <= stats.hpwl_before_um);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct DetailedPlacer {
    cfg: DetailedConfig,
}

impl DetailedPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(cfg: DetailedConfig) -> Self {
        Self { cfg }
    }

    /// Improves the wirelength of a fully placed design in place. Every
    /// intermediate placement is legal.
    ///
    /// # Errors
    ///
    /// Propagates database errors (e.g. cells expected to be placed).
    pub fn improve(
        &self,
        design: &Design,
        state: &mut PlacementState,
    ) -> Result<DetailedStats, DbError> {
        let legalizer = Legalizer::new(self.cfg.legalizer.clone());
        let mut stats = DetailedStats {
            hpwl_before_um: design.hpwl_um(|c| state.position_or_input(design, c)),
            ..DetailedStats::default()
        };
        let aspect = design.grid().aspect();
        for _ in 0..self.cfg.passes {
            for cell in design.movable_cells().collect::<Vec<_>>() {
                let Some(cur) = state.position(cell) else {
                    continue;
                };
                let Some((ox, oy)) = optimal_position(design, state, cell) else {
                    continue;
                };
                let dist = (ox - f64::from(cur.x)).abs() + (oy - f64::from(cur.y)).abs() * aspect;
                if dist < self.cfg.min_move_sites {
                    continue;
                }
                stats.tried += 1;
                // Rip up and try to re-insert near the optimum.
                let old = state.remove(design, cell)?;
                let snapped = legalizer.snap(design, cell, ox, oy);
                let Some(tx) = mll_transacted(design, state, &self.cfg.legalizer, cell, snapped)?
                else {
                    // No room near the optimum: put the cell back.
                    restore(design, state, cell, old, &self.cfg.legalizer)?;
                    continue;
                };
                // HPWL of affected nets, before (override resolver) vs now.
                let mut overrides: HashMap<CellId, (f64, f64)> = tx
                    .undo_moves
                    .iter()
                    .map(|&(c, old_x)| {
                        let p = state.position(c).expect("shifted cell placed");
                        (c, (f64::from(old_x), f64::from(p.y)))
                    })
                    .collect();
                overrides.insert(cell, (f64::from(old.x), f64::from(old.y)));
                let nets = affected_nets(design, tx.touched_cells());
                let before = nets_hpwl_um(design, &nets, |c| {
                    overrides
                        .get(&c)
                        .copied()
                        .unwrap_or_else(|| state.position_or_input(design, c))
                });
                let after = nets_hpwl_um(design, &nets, |c| state.position_or_input(design, c));
                if after < before {
                    stats.accepted += 1;
                } else {
                    tx.rollback(design, state)?;
                    restore(design, state, cell, old, &self.cfg.legalizer)?;
                }
            }
        }
        stats.hpwl_after_um = design.hpwl_um(|c| state.position_or_input(design, c));
        Ok(stats)
    }
}

fn restore(
    design: &Design,
    state: &mut PlacementState,
    cell: CellId,
    at: mrl_geom::SitePoint,
    cfg: &LegalizerConfig,
) -> Result<(), DbError> {
    if cfg.rail_mode.is_aligned() {
        state.place(design, cell, at)
    } else {
        state.place_ignoring_rails(design, cell, at)
    }
}

/// The wirelength-optimal lower-left position of `cell`: the median of its
/// nets' other-pin bounding box edges, shifted by the cell's mean pin
/// offset. `None` when the cell has no connected pins.
fn optimal_position(design: &Design, state: &PlacementState, cell: CellId) -> Option<(f64, f64)> {
    let netlist = design.netlist();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut off_x = 0.0;
    let mut off_y = 0.0;
    let mut own_pins = 0usize;
    for net in netlist.nets_of_cell(cell) {
        let mut lo_x = f64::INFINITY;
        let mut hi_x = f64::NEG_INFINITY;
        let mut lo_y = f64::INFINITY;
        let mut hi_y = f64::NEG_INFINITY;
        let mut others = 0;
        for &pin in netlist.net(net).pins() {
            match netlist.pin(pin).location {
                PinLocation::OnCell { cell: c, dx, dy } if c == cell => {
                    off_x += dx;
                    off_y += dy;
                    own_pins += 1;
                }
                PinLocation::OnCell { cell: c, dx, dy } => {
                    let (x, y) = state.position_or_input(design, c);
                    lo_x = lo_x.min(x + dx);
                    hi_x = hi_x.max(x + dx);
                    lo_y = lo_y.min(y + dy);
                    hi_y = hi_y.max(y + dy);
                    others += 1;
                }
                PinLocation::Fixed { x, y } => {
                    lo_x = lo_x.min(x);
                    hi_x = hi_x.max(x);
                    lo_y = lo_y.min(y);
                    hi_y = hi_y.max(y);
                    others += 1;
                }
            }
        }
        if others > 0 {
            xs.push(lo_x);
            xs.push(hi_x);
            ys.push(lo_y);
            ys.push(hi_y);
        }
    }
    if xs.is_empty() || own_pins == 0 {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let med = |v: &[f64]| v[(v.len() - 1) / 2];
    Some((
        med(&xs) - off_x / own_pins as f64,
        med(&ys) - off_y / own_pins as f64,
    ))
}

fn affected_nets(design: &Design, cells: impl Iterator<Item = CellId>) -> Vec<NetId> {
    let mut nets: Vec<NetId> = cells
        .flat_map(|c| design.netlist().nets_of_cell(c))
        .collect();
    nets.sort_unstable();
    nets.dedup();
    nets
}

fn nets_hpwl_um<F>(design: &Design, nets: &[NetId], mut pos: F) -> f64
where
    F: FnMut(CellId) -> (f64, f64),
{
    let grid = design.grid();
    let netlist = design.netlist();
    let mut total = 0.0;
    for &net in nets {
        let pins = netlist.net(net).pins();
        if pins.len() < 2 {
            continue;
        }
        let mut lo_x = f64::INFINITY;
        let mut hi_x = f64::NEG_INFINITY;
        let mut lo_y = f64::INFINITY;
        let mut hi_y = f64::NEG_INFINITY;
        for &pin in pins {
            let (x, y) = match netlist.pin(pin).location {
                PinLocation::Fixed { x, y } => (x, y),
                PinLocation::OnCell { cell, dx, dy } => {
                    let (cx, cy) = pos(cell);
                    (cx + dx, cy + dy)
                }
            };
            lo_x = lo_x.min(x);
            hi_x = hi_x.max(x);
            lo_y = lo_y.min(y);
            hi_y = hi_y.max(y);
        }
        total += (hi_x - lo_x) * grid.site_width_um() + (hi_y - lo_y) * grid.row_height_um();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PowerRailMode;
    use mrl_db::DesignBuilder;
    use mrl_geom::SitePoint;

    /// Two connected cells placed far apart; detailed placement should
    /// pull one toward the other.
    #[test]
    fn pulls_connected_cells_together() {
        let mut b = DesignBuilder::new(2, 60);
        let a = b.add_cell("a", 2, 1);
        let c = b.add_cell("c", 2, 1);
        // Pad the design so a has somewhere to go.
        let net = b.add_net("n");
        b.add_cell_pin(net, a, 1.0, 0.5);
        b.add_cell_pin(net, c, 1.0, 0.5);
        // Anchor c with a fixed pin so it stays put.
        let anchor = b.add_net("anchor");
        b.add_cell_pin(anchor, c, 1.0, 0.5);
        b.add_fixed_pin(anchor, 51.0, 0.5);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(0, 0)).unwrap();
        state.place(&design, c, SitePoint::new(50, 0)).unwrap();
        let before = design.hpwl_um(|x| state.position_or_input(&design, x));
        let cfg = DetailedConfig {
            legalizer: LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed),
            ..DetailedConfig::default()
        };
        let stats = DetailedPlacer::new(cfg)
            .improve(&design, &mut state)
            .unwrap();
        assert!(stats.accepted >= 1, "{stats:?}");
        assert!(stats.hpwl_after_um < before);
        // a moved toward c.
        assert!(state.position(a).unwrap().x > 30);
    }

    #[test]
    fn never_worsens_total_hpwl() {
        let mut b = DesignBuilder::new(4, 40);
        let cells: Vec<_> = (0..10).map(|i| b.add_cell(format!("c{i}"), 2, 1)).collect();
        for chunk in cells.chunks(3) {
            let n = b.add_net("n");
            for &c in chunk {
                b.add_cell_pin(n, c, 1.0, 0.5);
            }
        }
        for (i, &c) in cells.iter().enumerate() {
            b.set_input_position(c, (i as f64 * 3.7) % 36.0, (i % 4) as f64);
        }
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        Legalizer::default().legalize(&design, &mut state).unwrap();
        let cfg = DetailedConfig {
            passes: 2,
            ..DetailedConfig::default()
        };
        let stats = DetailedPlacer::new(cfg)
            .improve(&design, &mut state)
            .unwrap();
        assert!(
            stats.hpwl_after_um <= stats.hpwl_before_um + 1e-9,
            "{stats:?}"
        );
    }

    #[test]
    fn unconnected_cells_are_skipped() {
        let mut b = DesignBuilder::new(1, 20);
        let a = b.add_cell("a", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(0, 0)).unwrap();
        let stats = DetailedPlacer::default()
            .improve(&design, &mut state)
            .unwrap();
        assert_eq!(stats.tried, 0);
        assert_eq!(state.position(a), Some(SitePoint::new(0, 0)));
    }

    #[test]
    fn rejected_moves_restore_positions() {
        // A cell already at its optimum: any trial is rejected and the
        // placement must be byte-identical afterwards.
        let mut b = DesignBuilder::new(1, 30);
        let a = b.add_cell("a", 2, 1);
        let c = b.add_cell("c", 2, 1);
        let n = b.add_net("n");
        b.add_cell_pin(n, a, 1.0, 0.5);
        b.add_cell_pin(n, c, 1.0, 0.5);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(10, 0)).unwrap();
        state.place(&design, c, SitePoint::new(12, 0)).unwrap();
        let cfg = DetailedConfig {
            min_move_sites: 0.0, // force trials
            ..DetailedConfig::default()
        };
        let before: Vec<_> = state.iter_placed().collect();
        DetailedPlacer::new(cfg)
            .improve(&design, &mut state)
            .unwrap();
        let mut after: Vec<_> = state.iter_placed().collect();
        let mut before = before;
        before.sort();
        after.sort();
        // Positions may legitimately change if HPWL strictly improved;
        // for two abutting cells on one net it cannot, so state is intact.
        assert_eq!(before, after);
    }
}
