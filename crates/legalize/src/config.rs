//! Configuration of the legalizer.

use std::fmt;

/// Whether the power-rail alignment constraint is enforced.
///
/// The paper's second experiment (Section 6) relaxes the constraint to
/// quantify its displacement cost: relaxed mode lets every cell sit on any
/// row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PowerRailMode {
    /// Enforce rail parity: even-height cells only on alternate rows
    /// (constraint 4 of the problem formulation).
    #[default]
    Aligned,
    /// Ignore rail parity entirely.
    Relaxed,
}

impl PowerRailMode {
    /// True for [`PowerRailMode::Aligned`].
    pub const fn is_aligned(self) -> bool {
        matches!(self, PowerRailMode::Aligned)
    }
}

/// How insertion points are scored (Section 5.2 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// The paper's fast approximation: only the ≤ 2·h cells adjacent to the
    /// chosen gaps contribute critical positions.
    #[default]
    Approximate,
    /// Exact O(|C_W|) evaluation: critical positions of every local cell
    /// are derived by propagating push chains through the neighbor DAG.
    Exact,
}

/// The order in which Algorithm 1 visits cells ("an arbitrary order" in the
/// paper; exposed for the cell-order ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CellOrder {
    /// The order cells were added to the design.
    #[default]
    Input,
    /// Ascending global-placement x (classic left-to-right sweep).
    ByX,
    /// Descending cell area, so large multi-row cells claim space first.
    ByAreaDesc,
    /// A seeded random shuffle.
    Shuffled,
}

/// Tuning knobs of the escalation ladder that engages when the MLL +
/// random-offset retry loop keeps failing a cell (ROADMAP item 1: break
/// the 0.78-utilization ceiling).
///
/// The ladder has three tiers, each individually switchable:
///
/// 1. **Ripple chains** — bounded-depth chains of displacements of
///    already-placed cells, applied transactionally and rolled back in
///    full when the chain fails or exceeds its displacement budget.
/// 2. **Height-binned repack** — rip up a congested subwindow and
///    re-insert its cells per height class, tallest first (the
///    `MultirowAbacus` idea), all-or-nothing.
/// 3. **ILP-local** — a window MILP on an enlarged frozen neighborhood
///    for the last residue cells.
///
/// All tiers are RNG-free and run from the deterministic retry loop, so
/// the pipeline stays bit-identical across thread counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EscalationConfig {
    /// Master switch. When `false`, the retry loop behaves exactly as it
    /// did before escalation existed (bit-identical output).
    pub enabled: bool,
    /// Retry round at which the ladder first engages for still-failing
    /// cells, and the period at which it re-engages afterwards. Small
    /// enough that dense designs escalate before the random offsets
    /// saturate the floorplan, large enough that easy cells never pay
    /// for it.
    pub after_rounds: u32,
    /// Tier 1 switch.
    pub ripple: bool,
    /// Maximum ripple chain depth (1 = displace direct victims only).
    pub ripple_depth: u32,
    /// Victim candidates considered per chain link.
    pub ripple_candidates: usize,
    /// Budget on the total Manhattan displacement (sites + rows) a chain
    /// may inflict on already-placed cells; chains over budget roll back.
    pub ripple_max_disp: i64,
    /// Tier 2 switch.
    pub repack: bool,
    /// Subwindow scale for the repack, as a multiple of (`rx`, `ry`).
    pub repack_scale: i32,
    /// Skip repack when the subwindow holds more placed cells than this
    /// (rip-up cost is quadratic-ish in window population).
    pub repack_max_cells: usize,
    /// Tier 3 switch.
    pub ilp: bool,
    /// Window scale for the ILP neighborhood, as a multiple of
    /// (`rx`, `ry`).
    pub ilp_scale: i32,
    /// Skip the MILP when the enlarged region holds more cells than this
    /// (keeps the branch-and-bound over disjunction binaries tractable).
    pub ilp_max_cells: usize,
}

impl Default for EscalationConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            after_rounds: 8,
            ripple: true,
            ripple_depth: 2,
            ripple_candidates: 8,
            ripple_max_disp: 70,
            repack: true,
            repack_scale: 2,
            repack_max_cells: 48,
            ilp: true,
            ilp_scale: 2,
            ilp_max_cells: 64,
        }
    }
}

impl EscalationConfig {
    /// A fully disabled ladder: the retry loop is byte-for-byte the
    /// pre-escalation algorithm.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Whether any tier can run.
    pub const fn engages(&self) -> bool {
        self.enabled && (self.ripple || self.repack || self.ilp)
    }

    /// Returns `self` with the engagement round/period replaced.
    pub fn with_after_rounds(mut self, after_rounds: u32) -> Self {
        self.after_rounds = after_rounds.max(1);
        self
    }

    /// Returns `self` with individual tiers switched on or off.
    pub fn with_tiers(mut self, ripple: bool, repack: bool, ilp: bool) -> Self {
        self.ripple = ripple;
        self.repack = repack;
        self.ilp = ilp;
        self
    }

    /// Returns `self` with the ripple displacement budget replaced.
    pub fn with_ripple_max_disp(mut self, ripple_max_disp: i64) -> Self {
        self.ripple_max_disp = ripple_max_disp;
        self
    }
}

impl fmt::Display for EscalationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled {
            return write!(f, "off");
        }
        write!(
            f,
            "after={} ripple={} repack={} ilp={}",
            self.after_rounds, self.ripple, self.repack, self.ilp
        )
    }
}

/// Tuning knobs of the MLL legalizer.
///
/// The defaults replicate the paper's implementation: `Rx = 30`, `Ry = 5`,
/// approximate insertion-point evaluation, power rails aligned.
#[derive(Clone, Debug, PartialEq)]
pub struct LegalizerConfig {
    /// Horizontal half-extent of the local window, in sites (`Rx`).
    pub rx: i32,
    /// Vertical half-extent of the local window, in rows (`Ry`).
    pub ry: i32,
    /// Power-rail constraint handling.
    pub rail_mode: PowerRailMode,
    /// Insertion-point scoring mode.
    pub eval_mode: EvalMode,
    /// Cell visit order for the driver loop.
    pub order: CellOrder,
    /// Seed for the retry offsets (`Rand_x`, `Rand_y`) and shuffling.
    pub seed: u64,
    /// Upper bound on retry iterations before the driver gives up. The
    /// paper loops until success; a bound keeps pathological inputs from
    /// hanging and is never reached on sane densities.
    pub max_retry_iters: u32,
    /// Safety cap on insertion points examined per MLL call; `usize::MAX`
    /// disables the cap. Only very tall targets in dense regions can hit
    /// combinatorial blow-up.
    pub max_insertion_points: usize,
    /// Best-first branch-and-bound pruning of the insertion-point search
    /// (on by default). When disabled, every generated combination is
    /// scored exhaustively in scanline order; both modes return the same
    /// insertion point (ties broken by the scanline emission order), so
    /// this knob only trades evaluation work for a bound computation.
    pub prune: bool,
    /// Windowed occupancy-index queries during region extraction (on by
    /// default). When disabled, extraction scans each segment's full gap
    /// list — the original O(segment) path, kept as the oracle the index
    /// is validated against and for before/after measurement. Both paths
    /// extract bit-identical regions, so this knob never changes results.
    pub spatial_index: bool,
    /// Escalation ladder engaged when the retry loop keeps failing a cell
    /// (enabled by default; [`EscalationConfig::disabled`] restores the
    /// pre-escalation retry loop bit-for-bit).
    pub escalation: EscalationConfig,
}

impl Default for LegalizerConfig {
    fn default() -> Self {
        Self {
            rx: 30,
            ry: 5,
            rail_mode: PowerRailMode::Aligned,
            eval_mode: EvalMode::Approximate,
            order: CellOrder::Input,
            seed: 0x9E37_79B9_7F4A_7C15,
            max_retry_iters: 4096,
            max_insertion_points: usize::MAX,
            prune: true,
            spatial_index: true,
            escalation: EscalationConfig::default(),
        }
    }
}

impl LegalizerConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Returns `self` with the window half-extents replaced.
    pub fn with_window(mut self, rx: i32, ry: i32) -> Self {
        self.rx = rx;
        self.ry = ry;
        self
    }

    /// Returns `self` with the rail mode replaced.
    pub fn with_rail_mode(mut self, mode: PowerRailMode) -> Self {
        self.rail_mode = mode;
        self
    }

    /// Returns `self` with the evaluation mode replaced.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Returns `self` with the cell order replaced.
    pub fn with_order(mut self, order: CellOrder) -> Self {
        self.order = order;
        self
    }

    /// Returns `self` with the RNG seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with branch-and-bound pruning switched on or off.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Returns `self` with the extraction spatial index switched on or
    /// off (off = linear gap-list scan, the measurement oracle).
    pub fn with_spatial_index(mut self, spatial_index: bool) -> Self {
        self.spatial_index = spatial_index;
        self
    }

    /// Returns `self` with the retry-iteration cap replaced. Differential
    /// harnesses lower it so a genuinely stuck case fails fast instead of
    /// burning the full default budget.
    pub fn with_max_retries(mut self, max_retry_iters: u32) -> Self {
        self.max_retry_iters = max_retry_iters;
        self
    }

    /// Returns `self` with the escalation ladder replaced.
    pub fn with_escalation(mut self, escalation: EscalationConfig) -> Self {
        self.escalation = escalation;
        self
    }
}

impl fmt::Display for LegalizerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rx={} Ry={} rails={:?} eval={:?} order={:?} prune={} index={} escalation=[{}]",
            self.rx,
            self.ry,
            self.rail_mode,
            self.eval_mode,
            self.order,
            self.prune,
            self.spatial_index,
            self.escalation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LegalizerConfig::default();
        assert_eq!(c.rx, 30);
        assert_eq!(c.ry, 5);
        assert_eq!(c.rail_mode, PowerRailMode::Aligned);
        assert_eq!(c.eval_mode, EvalMode::Approximate);
        assert!(c.prune, "pruning is on by default");
        assert_eq!(LegalizerConfig::paper(), c);
    }

    #[test]
    fn prune_setter_round_trips() {
        let c = LegalizerConfig::default().with_prune(false);
        assert!(!c.prune);
        assert!(c.to_string().contains("prune=false"));
    }

    #[test]
    fn builder_style_setters() {
        let c = LegalizerConfig::default()
            .with_window(10, 2)
            .with_rail_mode(PowerRailMode::Relaxed)
            .with_eval_mode(EvalMode::Exact)
            .with_order(CellOrder::ByX)
            .with_seed(7);
        assert_eq!((c.rx, c.ry, c.seed), (10, 2, 7));
        assert!(!c.rail_mode.is_aligned());
        assert_eq!(c.eval_mode, EvalMode::Exact);
        assert_eq!(c.order, CellOrder::ByX);
    }

    #[test]
    fn display_mentions_window() {
        let s = LegalizerConfig::default().to_string();
        assert!(s.contains("Rx=30"));
        assert!(s.contains("Ry=5"));
        assert!(s.contains("escalation=[after=8"));
    }

    #[test]
    fn escalation_defaults_and_switches() {
        let e = EscalationConfig::default();
        assert!(e.enabled && e.ripple && e.repack && e.ilp);
        assert!(e.engages());
        assert!(!EscalationConfig::disabled().engages());
        assert!(!e.with_tiers(false, false, false).engages());
        assert_eq!(EscalationConfig::disabled().to_string(), "off");
        // The period floor: 0 would divide-by-zero the engagement check.
        assert_eq!(e.with_after_rounds(0).after_rounds, 1);
        let c = LegalizerConfig::default().with_escalation(EscalationConfig::disabled());
        assert!(!c.escalation.enabled);
        assert!(c.to_string().contains("escalation=[off]"));
    }
}
