//! Configuration of the legalizer.

use std::fmt;

/// Whether the power-rail alignment constraint is enforced.
///
/// The paper's second experiment (Section 6) relaxes the constraint to
/// quantify its displacement cost: relaxed mode lets every cell sit on any
/// row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PowerRailMode {
    /// Enforce rail parity: even-height cells only on alternate rows
    /// (constraint 4 of the problem formulation).
    #[default]
    Aligned,
    /// Ignore rail parity entirely.
    Relaxed,
}

impl PowerRailMode {
    /// True for [`PowerRailMode::Aligned`].
    pub const fn is_aligned(self) -> bool {
        matches!(self, PowerRailMode::Aligned)
    }
}

/// How insertion points are scored (Section 5.2 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// The paper's fast approximation: only the ≤ 2·h cells adjacent to the
    /// chosen gaps contribute critical positions.
    #[default]
    Approximate,
    /// Exact O(|C_W|) evaluation: critical positions of every local cell
    /// are derived by propagating push chains through the neighbor DAG.
    Exact,
}

/// The order in which Algorithm 1 visits cells ("an arbitrary order" in the
/// paper; exposed for the cell-order ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CellOrder {
    /// The order cells were added to the design.
    #[default]
    Input,
    /// Ascending global-placement x (classic left-to-right sweep).
    ByX,
    /// Descending cell area, so large multi-row cells claim space first.
    ByAreaDesc,
    /// A seeded random shuffle.
    Shuffled,
}

/// Tuning knobs of the MLL legalizer.
///
/// The defaults replicate the paper's implementation: `Rx = 30`, `Ry = 5`,
/// approximate insertion-point evaluation, power rails aligned.
#[derive(Clone, Debug, PartialEq)]
pub struct LegalizerConfig {
    /// Horizontal half-extent of the local window, in sites (`Rx`).
    pub rx: i32,
    /// Vertical half-extent of the local window, in rows (`Ry`).
    pub ry: i32,
    /// Power-rail constraint handling.
    pub rail_mode: PowerRailMode,
    /// Insertion-point scoring mode.
    pub eval_mode: EvalMode,
    /// Cell visit order for the driver loop.
    pub order: CellOrder,
    /// Seed for the retry offsets (`Rand_x`, `Rand_y`) and shuffling.
    pub seed: u64,
    /// Upper bound on retry iterations before the driver gives up. The
    /// paper loops until success; a bound keeps pathological inputs from
    /// hanging and is never reached on sane densities.
    pub max_retry_iters: u32,
    /// Safety cap on insertion points examined per MLL call; `usize::MAX`
    /// disables the cap. Only very tall targets in dense regions can hit
    /// combinatorial blow-up.
    pub max_insertion_points: usize,
    /// Best-first branch-and-bound pruning of the insertion-point search
    /// (on by default). When disabled, every generated combination is
    /// scored exhaustively in scanline order; both modes return the same
    /// insertion point (ties broken by the scanline emission order), so
    /// this knob only trades evaluation work for a bound computation.
    pub prune: bool,
    /// Windowed occupancy-index queries during region extraction (on by
    /// default). When disabled, extraction scans each segment's full gap
    /// list — the original O(segment) path, kept as the oracle the index
    /// is validated against and for before/after measurement. Both paths
    /// extract bit-identical regions, so this knob never changes results.
    pub spatial_index: bool,
}

impl Default for LegalizerConfig {
    fn default() -> Self {
        Self {
            rx: 30,
            ry: 5,
            rail_mode: PowerRailMode::Aligned,
            eval_mode: EvalMode::Approximate,
            order: CellOrder::Input,
            seed: 0x9E37_79B9_7F4A_7C15,
            max_retry_iters: 4096,
            max_insertion_points: usize::MAX,
            prune: true,
            spatial_index: true,
        }
    }
}

impl LegalizerConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Returns `self` with the window half-extents replaced.
    pub fn with_window(mut self, rx: i32, ry: i32) -> Self {
        self.rx = rx;
        self.ry = ry;
        self
    }

    /// Returns `self` with the rail mode replaced.
    pub fn with_rail_mode(mut self, mode: PowerRailMode) -> Self {
        self.rail_mode = mode;
        self
    }

    /// Returns `self` with the evaluation mode replaced.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Returns `self` with the cell order replaced.
    pub fn with_order(mut self, order: CellOrder) -> Self {
        self.order = order;
        self
    }

    /// Returns `self` with the RNG seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with branch-and-bound pruning switched on or off.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Returns `self` with the extraction spatial index switched on or
    /// off (off = linear gap-list scan, the measurement oracle).
    pub fn with_spatial_index(mut self, spatial_index: bool) -> Self {
        self.spatial_index = spatial_index;
        self
    }

    /// Returns `self` with the retry-iteration cap replaced. Differential
    /// harnesses lower it so a genuinely stuck case fails fast instead of
    /// burning the full default budget.
    pub fn with_max_retries(mut self, max_retry_iters: u32) -> Self {
        self.max_retry_iters = max_retry_iters;
        self
    }
}

impl fmt::Display for LegalizerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rx={} Ry={} rails={:?} eval={:?} order={:?} prune={} index={}",
            self.rx,
            self.ry,
            self.rail_mode,
            self.eval_mode,
            self.order,
            self.prune,
            self.spatial_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LegalizerConfig::default();
        assert_eq!(c.rx, 30);
        assert_eq!(c.ry, 5);
        assert_eq!(c.rail_mode, PowerRailMode::Aligned);
        assert_eq!(c.eval_mode, EvalMode::Approximate);
        assert!(c.prune, "pruning is on by default");
        assert_eq!(LegalizerConfig::paper(), c);
    }

    #[test]
    fn prune_setter_round_trips() {
        let c = LegalizerConfig::default().with_prune(false);
        assert!(!c.prune);
        assert!(c.to_string().contains("prune=false"));
    }

    #[test]
    fn builder_style_setters() {
        let c = LegalizerConfig::default()
            .with_window(10, 2)
            .with_rail_mode(PowerRailMode::Relaxed)
            .with_eval_mode(EvalMode::Exact)
            .with_order(CellOrder::ByX)
            .with_seed(7);
        assert_eq!((c.rx, c.ry, c.seed), (10, 2, 7));
        assert!(!c.rail_mode.is_aligned());
        assert_eq!(c.eval_mode, EvalMode::Exact);
        assert_eq!(c.order, CellOrder::ByX);
    }

    #[test]
    fn display_mentions_window() {
        let s = LegalizerConfig::default().to_string();
        assert!(s.contains("Rx=30"));
        assert!(s.contains("Ry=5"));
    }
}
