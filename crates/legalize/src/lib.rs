//! Multi-row Local Legalization (MLL) — the algorithm of Chow, Pui &
//! Young, *"Legalization Algorithm for Multiple-Row Height Standard Cell
//! Design"*, DAC 2016.
//!
//! Standard legalizers (Abacus, Tetris, …) assume cell overlaps are
//! independent between rows; multi-row height cells break that assumption.
//! MLL legalizes one cell at a time within a small window around its target
//! position:
//!
//! 1. **Local region extraction** ([`LocalRegion`], Section 2.1.3): pick
//!    one continuous run of free sites per row around the target; cells
//!    fully inside those runs are *local* and may shift horizontally, all
//!    other cells are frozen.
//! 2. **Insertion interval construction** ([`region::LocalRegion::insertion_intervals`],
//!    Section 5.1.1): from the leftmost/rightmost placements of the local
//!    cells, compute for every gap the feasible x-range of the target cell.
//! 3. **Insertion point enumeration** ([`enumerate_insertion_points`],
//!    Section 5.1.3): a scanline over interval endpoints with pairwise
//!    segment queues yields every valid combination of `h` gaps in `h`
//!    consecutive rows with a common cutline, skipping combinations split
//!    by a multi-row cell and rows with incompatible power rails.
//! 4. **Insertion point evaluation** ([`evaluate`], Section 5.2): each
//!    cell's displacement is a one-sided hinge of the target position; the
//!    optimal position is a clamped median of critical positions. Both the
//!    paper's neighbor-only approximation and an exact O(|C_W|)
//!    chain-propagation evaluator are provided ([`EvalMode`]).
//! 5. **Realization** ([`realize`], Section 5.3, Algorithm 2): place the
//!    target and resolve overlaps by minimal left/right push waves.
//!
//! The top-level driver [`Legalizer`] (Algorithm 1) runs MLL for every cell
//! of a global placement, retrying failed cells at randomly perturbed
//! positions with a growing radius.
//!
//! # Examples
//!
//! Legalize a small overlapping placement:
//!
//! ```
//! use mrl_db::{DesignBuilder, PlacementState};
//! use mrl_legalize::{Legalizer, LegalizerConfig};
//!
//! let mut b = DesignBuilder::new(4, 30);
//! for i in 0..8 {
//!     let c = b.add_cell(format!("c{i}"), 3, 1 + (i % 2));
//!     b.set_input_position(c, 10.0 + 0.3 * i as f64, 1.2);
//! }
//! let design = b.finish()?;
//! let legalizer = Legalizer::new(LegalizerConfig::default());
//! let mut state = PlacementState::new(&design);
//! let stats = legalizer.legalize(&design, &mut state)?;
//! assert_eq!(stats.placed, 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod detailed;
mod enumerate;
mod escalate;
mod evaluate;
mod interval;
mod legalizer;
mod mll;
mod parallel;
mod realize;
mod refine;
pub mod region;
mod scratch;
pub mod timing;

pub use config::{CellOrder, EscalationConfig, EvalMode, LegalizerConfig, PowerRailMode};
pub use detailed::{DetailedConfig, DetailedPlacer, DetailedStats};
pub use enumerate::{
    enumerate_insertion_points, find_best_insertion_point, find_best_insertion_point_in,
    find_best_insertion_point_timed, find_best_insertion_point_traced, InsertionPoint,
};
pub use escalate::{ilp_place_window, solve_window_milp};
pub use evaluate::{evaluate, evaluate_exact, Evaluation, TargetSpec};
pub use interval::InsInterval;
pub use legalizer::{LegalizeError, LegalizeStats, Legalizer};
pub use mll::{
    mll, mll_in, mll_timed, mll_transacted, mll_transacted_in, mll_transacted_timed,
    mll_transacted_traced, MllOutcome, MllTransaction,
};
// Structured-event layer (see the `mrl-trace` crate): the sink trait, the
// concrete sinks, and the failure taxonomy used across the drivers.
pub use mrl_trace::{
    AttemptOutcome, AttemptRecord, EscalationCounters, FailCounts, FailReason, MetricsSummary,
    NoopSink, RingSink, Sink, TraceBuf, TraceEvent,
};
pub use realize::{realize, Realization};
pub use refine::{refine_rows, RefineStats};
pub use region::{ExtractScratch, LocalCells, LocalRegion, LocalSeg};
pub use scratch::ScratchArena;
pub use timing::{Phase, PhaseTimes};
