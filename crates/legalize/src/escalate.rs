//! Escalation tiers for cells the MLL + random-offset retry loop cannot
//! place (ROADMAP item 1: break the 0.78-utilization ceiling).
//!
//! The retry loop perturbs the *target* cell and re-runs MLL; at high
//! utilization the window around every perturbed position is often locally
//! full while capacity exists a few moves away. The ladder here engages for
//! a cell that keeps failing ([`crate::EscalationConfig::after_rounds`])
//! and spends increasing effort per tier:
//!
//! 1. **Ripple chains** ([`Legalizer::tier1_ripple`]): displace an
//!    already-placed victim to free the target's window, then re-place the
//!    victim — recursively displacing at most
//!    [`crate::EscalationConfig::ripple_depth`] cells. The whole chain is
//!    one transaction: it either commits with a bounded total displacement
//!    or rolls back via one [`mrl_db::PlacementState::displace_batch`]
//!    call, leaving the placement logically identical.
//! 2. **Height-binned repack** ([`Legalizer::tier2_repack`]): rip up every
//!    cell in a scaled subwindow and re-insert them per height class,
//!    tallest first — the `MultirowAbacus` discipline, which stops short
//!    cells from fragmenting the rows multi-row cells need. All-or-nothing
//!    with the same rollback.
//! 3. **ILP-local** ([`ilp_place_window`]): solve the window problem to
//!    optimality with a MILP on an *enlarged* frozen neighborhood. On the
//!    same window the MILP optimum equals exhaustive-exact MLL, so the
//!    added power is entirely the larger window; a region-size cap keeps
//!    the branch-and-bound tractable.
//!
//! Every tier is RNG-free and runs from the (sequential, deterministically
//! ordered) retry loop, so escalated runs stay bit-identical across thread
//! counts and prune settings. Chains only touch cells inside MLL-sized
//! windows of positions derived from the target, so escalated moves stay
//! within the same halo radius the stripe scheduler already assumes —
//! escalation never runs inside stripes regardless, only in the residue
//! pass.

use crate::config::LegalizerConfig;
use crate::legalizer::{LegalizeError, LegalizeStats, Legalizer};
use crate::mll::{mll_transacted_traced, MllTransaction};
use crate::region::LocalRegion;
use crate::scratch::ScratchArena;
use crate::timing::Phase;
use mrl_db::{CellId, Design, PlacementState};
use mrl_geom::{SitePoint, SiteRect};
use mrl_ilp::{Model, Op, SolveError, VarId};
use mrl_trace::Sink;
use std::cmp::Reverse;
use std::collections::VecDeque;

/// First-touch position log of one escalation attempt: every cell the
/// attempt moved, with its position *before* the attempt. The log doubles
/// as the rollback plan (one `displace_batch` call restores everything)
/// and as the displacement meter for the ripple budget.
struct ChainCtx {
    target: CellId,
    orig: Vec<(CellId, Option<SitePoint>)>,
}

impl ChainCtx {
    fn new(state: &PlacementState, target: CellId) -> Self {
        ChainCtx {
            target,
            orig: vec![(target, state.position(target))],
        }
    }

    /// Records `cell`'s current position unless it is already tracked.
    fn note(&mut self, state: &PlacementState, cell: CellId) {
        if !self.orig.iter().any(|&(c, _)| c == cell) {
            self.orig.push((cell, state.position(cell)));
        }
    }

    /// Records the pre-shift positions of every cell an MLL transaction
    /// moved (shifts preserve the row, so the current y is the old y).
    fn note_tx(&mut self, state: &PlacementState, tx: &MllTransaction) {
        for &(moved, old_x) in &tx.undo_moves {
            if !self.orig.iter().any(|&(c, _)| c == moved) {
                let y = state.position(moved).expect("shifted cell is placed").y;
                self.orig.push((moved, Some(SitePoint::new(old_x, y))));
            }
        }
    }

    /// Restores every tracked cell to its pre-attempt position in one
    /// transactional batch.
    fn rollback(&self, design: &Design, state: &mut PlacementState) -> Result<(), LegalizeError> {
        state
            .displace_batch(design, &self.orig)
            .map(|_| ())
            .map_err(LegalizeError::Db)
    }

    /// Total Manhattan displacement (sites + rows) inflicted on already
    /// placed cells, excluding the target. `None` if a tracked cell is
    /// still unplaced (the chain is incomplete).
    fn induced_disp(&self, state: &PlacementState) -> Option<i64> {
        let mut total = 0i64;
        for &(c, orig) in &self.orig {
            if c == self.target {
                continue;
            }
            let was = orig.expect("non-target tracked cells start placed");
            let now = state.position(c)?;
            total += i64::from((now.x - was.x).abs()) + i64::from((now.y - was.y).abs());
        }
        Some(total)
    }
}

impl Legalizer {
    /// Runs the escalation ladder for one unplaced cell at its snapped
    /// input position, regardless of the engagement schedule. Returns
    /// whether the cell is now placed; on `false` the placement is
    /// logically identical to entry (every displaced cell restored).
    /// `round` is diagnostic (stamped into trace records).
    ///
    /// The retry loop calls this automatically every
    /// [`crate::EscalationConfig::after_rounds`] rounds; it is public so
    /// harnesses can drive and property-test individual tiers.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::Db`] on database inconsistencies (indicates a
    /// bug), including a rollback that cannot restore the entry state.
    #[allow(clippy::too_many_arguments)]
    pub fn escalate_cell<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cell: CellId,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<bool, LegalizeError> {
        stats.escalation.engaged += 1;
        let probe = stats.phases.start();
        if S::ENABLED {
            sink.begin(Phase::Escalate);
        }
        let result = self.run_tiers(design, state, cell, stats, arena, sink, round);
        if S::ENABLED {
            sink.end(Phase::Escalate);
        }
        stats.phases.stop(Phase::Escalate, probe);
        if matches!(result, Ok(true)) {
            stats.placed += 1;
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_tiers<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        cell: CellId,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<bool, LegalizeError> {
        let e = self.config().escalation;
        let (fx, fy) = design.input_position(cell);
        let pos = self.snap(design, cell, fx, fy);
        if e.ripple && self.tier1_ripple(design, state, cell, pos, stats, arena, sink, round)? {
            return Ok(true);
        }
        if e.repack && self.tier2_repack(design, state, cell, pos, stats, arena, sink, round)? {
            return Ok(true);
        }
        if e.ilp {
            stats.escalation.ilp_solves += 1;
            let rx = self.config().rx * e.ilp_scale;
            let ry = self.config().ry * e.ilp_scale;
            if ilp_place_window(
                design,
                state,
                self.config(),
                rx,
                ry,
                Some(e.ilp_max_cells),
                cell,
                pos,
            )? {
                stats.escalation.ilp_placed += 1;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Tier 1: for each of the nearest victim candidates, try one greedy
    /// displacement chain. A chain commits only if it places the target,
    /// re-places every displaced cell, and keeps the induced displacement
    /// within budget; otherwise it rolls back completely before the next
    /// candidate is tried.
    #[allow(clippy::too_many_arguments)]
    fn tier1_ripple<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        target: CellId,
        pos: SitePoint,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<bool, LegalizeError> {
        let e = self.config().escalation;
        let first = victim_candidates(
            design,
            state,
            self.config(),
            target,
            pos,
            e.ripple_candidates,
            &[target],
        );
        for victim in first {
            stats.escalation.ripple_chains += 1;
            let mut ctx = ChainCtx::new(state, target);
            let done = self.try_chain(
                design, state, &mut ctx, target, pos, victim, stats, arena, sink, round,
            )?;
            let within_budget = done
                && ctx
                    .induced_disp(state)
                    .is_some_and(|d| d <= e.ripple_max_disp);
            if within_budget {
                stats.escalation.ripple_placed += 1;
                return Ok(true);
            }
            stats.escalation.ripple_rolled_back += 1;
            ctx.rollback(design, state)?;
        }
        Ok(false)
    }

    /// One greedy chain: displace `victim`, place the target, then drain
    /// the queue of displaced cells — re-placing each at its old position,
    /// displacing at most `ripple_depth` cells in total. Returns whether
    /// every cell ended up placed (the caller checks the budget and rolls
    /// back on failure).
    #[allow(clippy::too_many_arguments)]
    fn try_chain<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        ctx: &mut ChainCtx,
        target: CellId,
        pos: SitePoint,
        victim: CellId,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<bool, LegalizeError> {
        let e = self.config().escalation;
        let mut visited = vec![target, victim];
        let mut queue: VecDeque<(CellId, SitePoint)> = VecDeque::new();
        ctx.note(state, victim);
        let at = state.remove(design, victim).map_err(LegalizeError::Db)?;
        queue.push_back((victim, at));
        if !self.chain_place(design, state, ctx, target, pos, stats, arena, sink, round)? {
            return Ok(false);
        }
        let mut links = 1u32;
        while let Some((cell, back_at)) = queue.pop_front() {
            if self.chain_place(design, state, ctx, cell, back_at, stats, arena, sink, round)? {
                continue;
            }
            if links >= e.ripple_depth {
                return Ok(false);
            }
            // Displace the nearest unvisited neighbour and retry once.
            let next = victim_candidates(design, state, self.config(), cell, back_at, 1, &visited);
            let Some(&further) = next.first() else {
                return Ok(false);
            };
            ctx.note(state, further);
            visited.push(further);
            let f_at = state.remove(design, further).map_err(LegalizeError::Db)?;
            queue.push_back((further, f_at));
            links += 1;
            if !self.chain_place(design, state, ctx, cell, back_at, stats, arena, sink, round)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Tier 2: rip up every placed movable cell fully inside a scaled
    /// subwindow around the target and re-insert them (plus the target) in
    /// height-class-descending order, each at its prior position. All cells
    /// must re-place for the repack to commit.
    #[allow(clippy::too_many_arguments)]
    fn tier2_repack<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        target: CellId,
        pos: SitePoint,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<bool, LegalizeError> {
        let cfg = self.config();
        let e = cfg.escalation;
        let c = design.cell(target);
        let (sx, sy) = (cfg.rx * e.repack_scale, cfg.ry * e.repack_scale);
        let win = SiteRect::new(
            pos.x - sx,
            pos.y - sy,
            2 * sx + c.width(),
            2 * sy + c.height(),
        );
        let victims = cells_fully_inside(design, state, win);
        if victims.is_empty() || victims.len() > e.repack_max_cells {
            return Ok(false);
        }
        stats.escalation.repack_windows += 1;
        let mut ctx = ChainCtx::new(state, target);
        for &(v, _) in &victims {
            ctx.note(state, v);
        }
        let rip: Vec<(CellId, Option<SitePoint>)> =
            victims.iter().map(|&(v, _)| (v, None)).collect();
        state
            .displace_batch(design, &rip)
            .map_err(LegalizeError::Db)?;
        let mut items = victims;
        items.push((target, pos));
        // Tallest class first; within a class left-to-right, then by id.
        // Earlier insertions are "fixed" from the perspective of later
        // ones exactly as in MultirowAbacus's per-height passes.
        items.sort_by_key(|&(cell, at)| {
            (
                Reverse(design.cell(cell).height()),
                at.x,
                at.y,
                cell.index(),
            )
        });
        for (cell, at) in items {
            if !self.chain_place(
                design,
                state,
                ctx.by_ref(),
                cell,
                at,
                stats,
                arena,
                sink,
                round,
            )? {
                ctx.rollback(design, state)?;
                return Ok(false);
            }
        }
        stats.escalation.repack_placed += 1;
        Ok(true)
    }

    /// Places one unplaced cell at `at`: directly if the footprint is
    /// free, else via MLL around `at`. Every move is recorded into `ctx`
    /// so the attempt stays rollback-able.
    #[allow(clippy::too_many_arguments)]
    fn chain_place<S: Sink>(
        &self,
        design: &Design,
        state: &mut PlacementState,
        ctx: &mut ChainCtx,
        cell: CellId,
        at: SitePoint,
        stats: &mut LegalizeStats,
        arena: &mut ScratchArena,
        sink: &mut S,
        round: u32,
    ) -> Result<bool, LegalizeError> {
        ctx.note(state, cell);
        let cfg = self.config();
        let direct = if cfg.rail_mode.is_aligned() {
            state.place(design, cell, at)
        } else {
            state.place_ignoring_rails(design, cell, at)
        };
        if direct.is_ok() {
            return Ok(true);
        }
        stats.mll_calls += 1;
        match mll_transacted_traced(
            design,
            state,
            cfg,
            cell,
            at,
            &mut stats.phases,
            arena,
            sink,
            round,
        )
        .map_err(LegalizeError::Db)?
        {
            Ok(tx) => {
                ctx.note_tx(state, &tx);
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }
}

impl ChainCtx {
    /// Reborrow helper so call sites can thread the context through
    /// `chain_place` while keeping it for the rollback branch.
    fn by_ref(&mut self) -> &mut Self {
        self
    }
}

/// Placed movable cells intersecting the window of `cell` snapped at
/// `pos`, nearest (Manhattan) first, ties by id, capped at `limit`,
/// excluding `exclude`.
fn victim_candidates(
    design: &Design,
    state: &PlacementState,
    cfg: &LegalizerConfig,
    cell: CellId,
    pos: SitePoint,
    limit: usize,
    exclude: &[CellId],
) -> Vec<CellId> {
    let c = design.cell(cell);
    let x0 = pos.x - cfg.rx;
    let x1 = pos.x + cfg.rx + c.width();
    let y0 = (pos.y - cfg.ry).max(0);
    let y1 = (pos.y + cfg.ry + c.height()).min(design.floorplan().num_rows());
    let fp = design.floorplan();
    let mut found: Vec<CellId> = Vec::new();
    for row in y0..y1 {
        let Some(base) = fp.row_segment_base(row) else {
            continue;
        };
        for (i, seg) in fp.segments_in_row(row).iter().enumerate() {
            if seg.right() <= x0 || seg.x >= x1 {
                continue;
            }
            let seg_id = mrl_db::SegId::from_usize(base + i);
            for &v in state.cells_intersecting(design, seg_id, x0, x1) {
                if design.cell(v).is_movable() && !exclude.contains(&v) {
                    found.push(v);
                }
            }
        }
    }
    found.sort_unstable();
    found.dedup();
    found.sort_by_key(|&v| {
        let p = state.position(v).expect("candidate is placed");
        ((p.x - pos.x).abs() + (p.y - pos.y).abs(), v.index())
    });
    found.truncate(limit);
    found
}

/// Placed movable cells whose footprint lies fully inside `win`, with
/// their positions, ordered by id.
fn cells_fully_inside(
    design: &Design,
    state: &PlacementState,
    win: SiteRect,
) -> Vec<(CellId, SitePoint)> {
    let fp = design.floorplan();
    let y0 = win.y.max(0);
    let y1 = win.top().min(fp.num_rows());
    let mut found: Vec<CellId> = Vec::new();
    for row in y0..y1 {
        let Some(base) = fp.row_segment_base(row) else {
            continue;
        };
        for (i, seg) in fp.segments_in_row(row).iter().enumerate() {
            if seg.right() <= win.x || seg.x >= win.right() {
                continue;
            }
            let seg_id = mrl_db::SegId::from_usize(base + i);
            for &v in state.cells_intersecting(design, seg_id, win.x, win.right()) {
                if design.cell(v).is_movable() {
                    found.push(v);
                }
            }
        }
    }
    found.sort_unstable();
    found.dedup();
    found
        .into_iter()
        .filter_map(|v| {
            let r = state.rect_of(design, v).expect("candidate is placed");
            (r.x >= win.x && r.right() <= win.right() && r.y >= win.y && r.top() <= win.top())
                .then(|| (v, SitePoint::new(r.x, r.y)))
        })
        .collect()
}

/// Solves the local problem around `pos` to optimality with a window MILP
/// and commits the best solution. `rx`/`ry` override the configured window
/// half-extents (the escalation tier enlarges them); `max_cells` skips the
/// solve when the extracted region is too populous for the MILP's
/// branch-and-bound. Returns whether the target was placed.
///
/// This is the engine behind both the ILP escalation tier and the
/// `mrl-baselines` optimal local legalizer.
///
/// # Errors
///
/// [`LegalizeError::Db`] on database inconsistencies or solver failures.
#[allow(clippy::too_many_arguments)]
pub fn ilp_place_window(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    rx: i32,
    ry: i32,
    max_cells: Option<usize>,
    target: CellId,
    pos: SitePoint,
) -> Result<bool, LegalizeError> {
    let cell = design.cell(target);
    let (w_t, h_t) = (cell.width(), cell.height());
    let window = SiteRect::new(pos.x - rx, pos.y - ry, 2 * rx + w_t, 2 * ry + h_t);
    let region = LocalRegion::extract_masked(design, state, window, design.region_of(target));
    if max_cells.is_some_and(|cap| region.cells.len() > cap) {
        return Ok(false);
    }
    let hw = region.height();
    let ht = h_t as usize;
    if hw < ht {
        return Ok(false);
    }
    let aspect = design.grid().aspect();
    let fp = design.floorplan();
    let mut best: Option<(f64, usize, Vec<i32>, i32)> = None; // cost, t, xs, xt
    for t in 0..=(hw - ht) {
        let rows = t..t + ht;
        if rows.clone().any(|r| region.rows[r].is_none()) {
            continue;
        }
        let bottom_global = region.bottom_row + t as i32;
        if cfg.rail_mode.is_aligned() && !fp.rail_compatible(cell.rail(), h_t, bottom_global) {
            continue;
        }
        match solve_window_milp(&region, t, ht, w_t, pos.x) {
            Ok(Some((hcost, xs, xt))) => {
                let cost = hcost + f64::from((bottom_global - pos.y).abs()) * aspect;
                if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
                    best = Some((cost, t, xs, xt));
                }
            }
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
    let Some((_, t, xs, xt)) = best else {
        return Ok(false);
    };
    let moves: Vec<(CellId, i32)> = (0..region.cells.len())
        .filter(|&i| region.cells.x[i] != xs[i])
        .map(|i| (region.cells.id[i], xs[i]))
        .collect();
    state
        .shift_batch(design, &moves)
        .map_err(LegalizeError::Db)?;
    let at = SitePoint::new(xt, region.bottom_row + t as i32);
    let placed = if cfg.rail_mode.is_aligned() {
        state.place(design, target, at)
    } else {
        state.place_ignoring_rails(design, target, at)
    };
    placed.map_err(LegalizeError::Db)?;
    Ok(true)
}

/// Builds and solves the MILP for one candidate window of `region`:
/// target bottom at local row `t`, target height `ht` rows and width
/// `w_t` sites, desired x `desired_x`. Returns `(horizontal cost, local
/// cell xs, target x)` or `None` if infeasible.
///
/// Continuous positions for every local cell and the target, per-row
/// ordering constraints, big-M disjunction binaries with chain
/// monotonicity, hinge-linearized displacement objective. With the
/// binaries fixed the LP is a system of difference constraints — totally
/// unimodular — so branch-and-bound over the binaries yields integral
/// optima.
///
/// # Errors
///
/// [`LegalizeError::Db`] on solver failures other than infeasibility.
pub fn solve_window_milp(
    region: &LocalRegion,
    t: usize,
    ht: usize,
    w_t: i32,
    desired_x: i32,
) -> Result<Option<(f64, Vec<i32>, i32)>, LegalizeError> {
    let mut model = Model::new();
    let n = region.cells.len();
    // Position variables for local cells, bounded by their segments.
    let mut x_vars: Vec<VarId> = Vec::with_capacity(n);
    for i in 0..n {
        let mut lo = i32::MIN;
        let mut hi = i32::MAX;
        for row in region.cells.y[i]..region.cells.y[i] + region.cells.h[i] {
            let lr = (row - region.bottom_row) as usize;
            let seg = region.rows[lr].as_ref().expect("local cell rows exist");
            lo = lo.max(seg.x0);
            hi = hi.min(seg.x1 - region.cells.w[i]);
        }
        x_vars.push(model.add_var(f64::from(lo), f64::from(hi), 0.0));
    }
    // Target position, bounded by the window rows.
    let (mut t_lo, mut t_hi) = (i32::MIN, i32::MAX);
    for r in t..t + ht {
        let seg = region.rows[r].as_ref().expect("window rows checked");
        t_lo = t_lo.max(seg.x0);
        t_hi = t_hi.min(seg.x1 - w_t);
    }
    if t_lo > t_hi {
        return Ok(None);
    }
    let x_t = model.add_var(f64::from(t_lo), f64::from(t_hi), 0.0);

    // Per-row ordering constraints between consecutive local cells.
    for seg in region.rows.iter().flatten() {
        for pair in seg.cells.windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            let w_a = f64::from(region.cells.w[a]);
            model.add_constraint(&[(x_vars[a], 1.0), (x_vars[b], -1.0)], Op::Le, -w_a);
        }
    }

    // Disjunction binaries for cells sharing a row with the target.
    let span_width: i32 = region
        .rows
        .iter()
        .flatten()
        .map(|s| s.x1 - s.x0)
        .max()
        .unwrap_or(0);
    let big_m = f64::from(span_width + w_t + 1);
    let mut delta: Vec<Option<VarId>> = vec![None; n];
    for r in t..t + ht {
        let seg = region.rows[r].as_ref().expect("window rows checked");
        let mut prev: Option<usize> = None;
        for &ci in &seg.cells {
            let ci = ci as usize;
            let d = *delta[ci].get_or_insert_with(|| model.add_binary_var(0.0));
            // δ = 1 -> target left of cell: x_t + w_t <= x_i.
            model.add_constraint(
                &[(x_t, 1.0), (x_vars[ci], -1.0), (d, big_m)],
                Op::Le,
                big_m - f64::from(w_t),
            );
            // δ = 0 -> cell left of target: x_i + w_i <= x_t.
            model.add_constraint(
                &[(x_vars[ci], 1.0), (x_t, -1.0), (d, -big_m)],
                Op::Le,
                -f64::from(region.cells.w[ci]),
            );
            // Monotone along the row: left cell's δ ≤ right cell's δ.
            if let Some(p) = prev {
                if let (Some(dp), Some(dc)) = (delta[p], delta[ci]) {
                    model.add_constraint(&[(dp, 1.0), (dc, -1.0)], Op::Le, 0.0);
                }
            }
            prev = Some(ci);
        }
    }

    // Displacement hinges: d_i >= |x_i - x_i0|, d_t >= |x_t - desired|.
    let mut objective_vars = Vec::with_capacity(n + 1);
    for (i, &xv) in x_vars.iter().enumerate().take(n) {
        let cx = region.cells.x[i];
        let d = model.add_var(0.0, f64::INFINITY, 1.0);
        model.add_constraint(&[(d, 1.0), (xv, -1.0)], Op::Ge, -f64::from(cx));
        model.add_constraint(&[(d, 1.0), (xv, 1.0)], Op::Ge, f64::from(cx));
        objective_vars.push(d);
    }
    let d_t = model.add_var(0.0, f64::INFINITY, 1.0);
    model.add_constraint(&[(d_t, 1.0), (x_t, -1.0)], Op::Ge, -f64::from(desired_x));
    model.add_constraint(&[(d_t, 1.0), (x_t, 1.0)], Op::Ge, f64::from(desired_x));
    objective_vars.push(d_t);

    match model.solve() {
        Ok(sol) => {
            let xs: Vec<i32> = x_vars.iter().map(|&v| sol[v].round() as i32).collect();
            let xt = sol[x_t].round() as i32;
            Ok(Some((sol.objective, xs, xt)))
        }
        Err(SolveError::Infeasible) => Ok(None),
        Err(e) => Err(LegalizeError::Db(mrl_db::DbError::Invalid(format!(
            "milp solver failure: {e}"
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EscalationConfig, PowerRailMode};
    use mrl_db::DesignBuilder;
    use mrl_trace::NoopSink;

    fn relaxed_escalating() -> LegalizerConfig {
        LegalizerConfig::default()
            .with_rail_mode(PowerRailMode::Relaxed)
            .with_window(6, 1)
    }

    /// One row of 12 sites holding a(4) and c(4) with 4 free; target t(4)
    /// fits only if something moves out of its way — but here everything
    /// fits on the row, so tier 1 should succeed by shifting.
    #[test]
    fn ripple_places_target_in_tight_row() {
        let mut b = DesignBuilder::new(2, 12);
        let a = b.add_cell("a", 4, 1);
        let c = b.add_cell("c", 4, 1);
        let t = b.add_cell("t", 4, 1);
        b.set_input_position(t, 4.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(0, 0)).unwrap();
        state.place(&design, c, SitePoint::new(5, 0)).unwrap();
        let lg = Legalizer::new(relaxed_escalating());
        let mut stats = LegalizeStats::default();
        let mut arena = ScratchArena::new();
        let placed = lg
            .escalate_cell(
                &design,
                &mut state,
                t,
                &mut stats,
                &mut arena,
                &mut NoopSink,
                8,
            )
            .unwrap();
        assert!(placed);
        assert!(state.is_placed(t));
        assert_eq!(state.num_placed(), 3);
        assert_eq!(stats.escalation.engaged, 1);
        assert!(stats.escalation.placed() == 1);
    }

    #[test]
    fn escalate_failure_leaves_state_logically_identical() {
        // Only row 1 is free (rows 0 and 2 are blocked); a double-height
        // VDD cell is rail-incompatible with every remaining window under
        // aligned mode, so all three tiers fail — and each must roll back
        // to exactly the entry placement (the placed single-height cell is
        // displaced and restored along the way).
        let mut b = DesignBuilder::new(3, 10);
        let a = b.add_cell("a", 3, 1);
        let d = b.add_cell("d", 2, 2);
        b.set_input_position(d, 4.0, 0.0);
        b.add_blockage(mrl_geom::SiteRect::new(0, 0, 10, 1));
        b.add_blockage(mrl_geom::SiteRect::new(0, 2, 10, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(2, 1)).unwrap();
        let before: Vec<_> = state.iter_placed().collect();
        let lg = Legalizer::new(LegalizerConfig::default().with_window(6, 1));
        let mut stats = LegalizeStats::default();
        let mut arena = ScratchArena::new();
        let placed = lg
            .escalate_cell(
                &design,
                &mut state,
                d,
                &mut stats,
                &mut arena,
                &mut NoopSink,
                8,
            )
            .unwrap();
        assert!(!placed);
        assert!(!state.is_placed(d));
        let after: Vec<_> = state.iter_placed().collect();
        assert_eq!(before, after);
        assert_eq!(state.position(a), Some(SitePoint::new(2, 1)));
    }

    #[test]
    fn ilp_tier_places_when_chains_cannot() {
        // Ripple is disabled; the ILP window (scale 2) sees far enough to
        // shift the wall of cells left and admit the target.
        let mut b = DesignBuilder::new(1, 20);
        let mut wall = Vec::new();
        for i in 0..4 {
            let c = b.add_cell(format!("w{i}"), 4, 1);
            wall.push(c);
        }
        let t = b.add_cell("t", 4, 1);
        b.set_input_position(t, 8.0, 0.0);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (i, &c) in wall.iter().enumerate() {
            state
                .place(&design, c, SitePoint::new(1 + 4 * i as i32, 0))
                .unwrap();
        }
        let cfg = LegalizerConfig::default()
            .with_rail_mode(PowerRailMode::Relaxed)
            .with_window(4, 1)
            .with_escalation(EscalationConfig::default().with_tiers(false, false, true));
        let lg = Legalizer::new(cfg);
        let mut stats = LegalizeStats::default();
        let mut arena = ScratchArena::new();
        let placed = lg
            .escalate_cell(
                &design,
                &mut state,
                t,
                &mut stats,
                &mut arena,
                &mut NoopSink,
                8,
            )
            .unwrap();
        assert!(placed, "ILP window should solve the packed row");
        assert_eq!(stats.escalation.ilp_placed, 1);
        assert_eq!(state.num_placed(), 5);
    }

    #[test]
    fn milp_window_engine_matches_baseline_behaviour() {
        // Direct engine check: a 2-cell wall with slack solves to the
        // 2-push optimum, mirroring the mrl-baselines cross-validation.
        let mut b = DesignBuilder::new(1, 30);
        let a = b.add_cell("a", 2, 1);
        let c = b.add_cell("c", 2, 1);
        let t = b.add_cell("t", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(10, 0)).unwrap();
        state.place(&design, c, SitePoint::new(12, 0)).unwrap();
        let cfg = LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed);
        let placed = ilp_place_window(
            &design,
            &mut state,
            &cfg,
            cfg.rx,
            cfg.ry,
            None,
            t,
            SitePoint::new(11, 0),
        )
        .unwrap();
        assert!(placed);
        assert_eq!(state.position(t), Some(SitePoint::new(11, 0)));
        assert_eq!(state.position(a), Some(SitePoint::new(9, 0)));
        assert_eq!(state.position(c), Some(SitePoint::new(13, 0)));
    }
}
