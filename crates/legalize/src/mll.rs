//! The MLL entry point (Section 4): extract → enumerate → evaluate →
//! realize → commit.

use crate::config::LegalizerConfig;
use crate::enumerate::find_best_insertion_point_traced;
use crate::evaluate::{Evaluation, TargetSpec};
use crate::realize::realize;
use crate::region::LocalRegion;
use crate::scratch::ScratchArena;
use crate::timing::{Phase, PhaseTimes};
use mrl_db::{CellId, DbError, Design, PlacementState};
use mrl_geom::{SitePoint, SiteRect};
use mrl_trace::{AttemptOutcome, AttemptRecord, FailReason, NoopSink, Sink};

/// Result of one MLL invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MllOutcome {
    /// The target was placed; the evaluation holds the chosen x and the
    /// total displacement cost of the insertion.
    Placed(Evaluation),
    /// No valid insertion point exists in the local region; the placement
    /// was left untouched.
    NoInsertionPoint,
}

impl MllOutcome {
    /// True if the target was placed.
    pub const fn is_placed(&self) -> bool {
        matches!(self, MllOutcome::Placed(_))
    }
}

/// Runs Multi-row Local Legalization for one unplaced `target` cell at the
/// site-aligned `pos`, committing the result to `state` on success.
///
/// A window of `2·Rx + w` by `2·Ry + h` sites centered on `pos` is
/// extracted (Section 3); the minimum-cost valid insertion point within it
/// is realized. On failure the placement is unchanged.
///
/// # Errors
///
/// Returns [`DbError::AlreadyPlaced`] if `target` is already placed. Other
/// database errors indicate an internal inconsistency and are propagated.
pub fn mll(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
) -> Result<MllOutcome, DbError> {
    let mut timer = PhaseTimes::default();
    mll_timed(design, state, cfg, target, pos, &mut timer)
}

/// [`mll`] with per-phase wall-clock accounting into `timer`.
///
/// # Errors
///
/// Same as [`mll`].
pub fn mll_timed(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
    timer: &mut PhaseTimes,
) -> Result<MllOutcome, DbError> {
    mll_in(
        design,
        state,
        cfg,
        target,
        pos,
        timer,
        &mut ScratchArena::new(),
    )
}

/// [`mll_timed`] against a caller-owned [`ScratchArena`] — the drivers'
/// steady-state entry point.
///
/// # Errors
///
/// Same as [`mll`].
pub fn mll_in(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
    timer: &mut PhaseTimes,
    arena: &mut ScratchArena,
) -> Result<MllOutcome, DbError> {
    Ok(
        match mll_transacted_in(design, state, cfg, target, pos, timer, arena)? {
            Some(tx) => MllOutcome::Placed(tx.eval),
            None => MllOutcome::NoInsertionPoint,
        },
    )
}

/// A committed MLL insertion with enough information to undo it —
/// the primitive detailed placement needs for try-and-revert moves.
#[derive(Clone, Debug, PartialEq)]
pub struct MllTransaction {
    /// The inserted cell.
    pub target: CellId,
    /// Where it was placed.
    pub placed_at: SitePoint,
    /// The chosen insertion point's evaluation.
    pub eval: Evaluation,
    /// Cells the realization shifted, with their *previous* x.
    pub undo_moves: Vec<(CellId, i32)>,
}

impl MllTransaction {
    /// Cells whose position changed (the shifted neighbours plus the
    /// target itself).
    pub fn touched_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.undo_moves
            .iter()
            .map(|&(c, _)| c)
            .chain(std::iter::once(self.target))
    }

    /// Reverts the insertion: removes the target and shifts every moved
    /// neighbour back.
    ///
    /// # Errors
    ///
    /// Propagates database errors if the placement was modified since the
    /// transaction committed (callers must roll back before other moves).
    pub fn rollback(&self, design: &Design, state: &mut PlacementState) -> Result<(), DbError> {
        state.remove(design, self.target)?;
        state.shift_batch(design, &self.undo_moves)
    }
}

/// Like [`mll`] but returns an undoable [`MllTransaction`] on success.
///
/// # Errors
///
/// Same as [`mll`].
pub fn mll_transacted(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
) -> Result<Option<MllTransaction>, DbError> {
    let mut timer = PhaseTimes::default();
    mll_transacted_timed(design, state, cfg, target, pos, &mut timer)
}

/// [`mll_transacted`] with per-phase wall-clock accounting into `timer`.
///
/// # Errors
///
/// Same as [`mll`].
pub fn mll_transacted_timed(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
    timer: &mut PhaseTimes,
) -> Result<Option<MllTransaction>, DbError> {
    mll_transacted_in(
        design,
        state,
        cfg,
        target,
        pos,
        timer,
        &mut ScratchArena::new(),
    )
}

/// [`mll_transacted_timed`] against a caller-owned [`ScratchArena`].
///
/// # Errors
///
/// Same as [`mll`].
pub fn mll_transacted_in(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
    timer: &mut PhaseTimes,
    arena: &mut ScratchArena,
) -> Result<Option<MllTransaction>, DbError> {
    mll_transacted_traced(
        design,
        state,
        cfg,
        target,
        pos,
        timer,
        arena,
        &mut NoopSink,
        0,
    )
    .map(|r| r.ok())
}

/// [`mll_transacted_in`] with a structured-event [`Sink`] and an explicit
/// failure taxonomy. Emits an `extract` span around region extraction, a
/// `realize` span around the commit, and one [`AttemptRecord`] per call
/// carrying the window, the combo counters this invocation contributed,
/// and the outcome. The inner `Err(FailReason)` distinguishes an empty
/// extraction window from a window with free space but no valid insertion
/// point; the placement is untouched in both cases.
///
/// `retry_round` is purely diagnostic (stamped into the attempt record):
/// 0 for first-pass calls, `k` for retry-loop round `k`.
///
/// # Errors
///
/// Same as [`mll`].
#[allow(clippy::too_many_arguments)]
pub fn mll_transacted_traced<S: Sink>(
    design: &Design,
    state: &mut PlacementState,
    cfg: &LegalizerConfig,
    target: CellId,
    pos: SitePoint,
    timer: &mut PhaseTimes,
    arena: &mut ScratchArena,
    sink: &mut S,
    retry_round: u32,
) -> Result<Result<MllTransaction, FailReason>, DbError> {
    if state.is_placed(target) {
        return Err(DbError::AlreadyPlaced(target));
    }
    let cell = design.cell(target);
    let window = SiteRect::new(
        pos.x - cfg.rx,
        pos.y - cfg.ry,
        2 * cfg.rx + cell.width(),
        2 * cfg.ry + cell.height(),
    );
    let probe = timer.start();
    if S::ENABLED {
        sink.begin(Phase::Extract);
    }
    // The region lives in the arena so its SoA buffers stay warm across
    // calls; it is taken out for the duration of this call because the
    // enumeration kernel borrows the arena mutably alongside it. With the
    // spatial index disabled the old path is reproduced faithfully —
    // linear gap scans and cold buffers every call — so `--no-spatial-index`
    // measures what the scaling work actually bought. Both paths produce
    // bit-identical regions.
    let mut region = std::mem::take(&mut arena.region);
    if cfg.spatial_index {
        region.extract_masked_into(
            &mut arena.extract,
            design,
            state,
            window,
            design.region_of(target),
            true,
        );
    } else {
        region = LocalRegion::extract_with_options(
            design,
            state,
            window,
            design.region_of(target),
            false,
        );
    }
    if S::ENABLED {
        sink.end(Phase::Extract);
    }
    timer.stop(Phase::Extract, probe);
    // Snapshot the combo counters so the attempt record can report this
    // invocation's contribution rather than the running totals.
    let combos_before = (
        timer.combos_generated,
        timer.combos_pruned,
        timer.combos_evaluated,
    );
    let attempt =
        |timer: &PhaseTimes, region: &LocalRegion, outcome: AttemptOutcome| AttemptRecord {
            cell: target.index() as u32,
            height: cell.height() as u8,
            retry_round,
            window: [window.x, window.y, window.w, window.h],
            region_cells: region.cells.len() as u32,
            combos_generated: timer.combos_generated - combos_before.0,
            combos_pruned: timer.combos_pruned - combos_before.1,
            combos_evaluated: timer.combos_evaluated - combos_before.2,
            outcome,
        };
    // An extraction with no usable row at all (or fewer rows than the target
    // is tall) can never host the cell — record it as a distinct failure so
    // "window landed outside every region" is visible in diagnostics.
    if region.height() < cell.height() as usize || region.rows.iter().all(|r| r.is_none()) {
        let reason = FailReason::RegionExtractionEmpty;
        if S::ENABLED {
            sink.attempt(attempt(timer, &region, AttemptOutcome::Fail(reason)));
        }
        arena.region = region;
        return Ok(Err(reason));
    }
    let spec = TargetSpec {
        w: cell.width(),
        h: cell.height(),
        x: pos.x,
        y: pos.y,
        rail: cell.rail(),
    };
    let Some(point) =
        find_best_insertion_point_traced(&region, design, &spec, cfg, timer, arena, sink)
    else {
        let reason = FailReason::NoInsertionPoint;
        if S::ENABLED {
            sink.attempt(attempt(timer, &region, AttemptOutcome::Fail(reason)));
        }
        arena.region = region;
        return Ok(Err(reason));
    };
    let probe = timer.start();
    if S::ENABLED {
        sink.begin(Phase::Realize);
    }
    let realization = realize(&region, &point, &spec);
    let undo_moves: Vec<(CellId, i32)> = realization
        .moves
        .iter()
        .map(|&(id, _)| {
            let i = region.local_index_of(id).expect("moved cell is local");
            (id, region.cells.x[i as usize])
        })
        .collect();
    state.shift_batch(design, &realization.moves)?;
    let at = SitePoint::new(realization.target_x, realization.target_row);
    if cfg.rail_mode.is_aligned() {
        state.place(design, target, at)?;
    } else {
        state.place_ignoring_rails(design, target, at)?;
    }
    if S::ENABLED {
        sink.end(Phase::Realize);
        sink.attempt(attempt(
            timer,
            &region,
            AttemptOutcome::Mll {
                x: at.x,
                y: at.y,
                cost: point.eval.cost,
            },
        ));
    }
    timer.stop(Phase::Realize, probe);
    arena.region = region;
    Ok(Ok(MllTransaction {
        target,
        placed_at: at,
        eval: point.eval,
        undo_moves,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PowerRailMode;
    use mrl_db::DesignBuilder;

    fn relaxed() -> LegalizerConfig {
        LegalizerConfig::default().with_rail_mode(PowerRailMode::Relaxed)
    }

    #[test]
    fn mll_places_into_free_space_without_moves() {
        let mut b = DesignBuilder::new(2, 40);
        let a = b.add_cell("a", 3, 1);
        let t = b.add_cell("t", 3, 2);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(10, 0)).unwrap();
        let out = mll(&design, &mut state, &relaxed(), t, SitePoint::new(20, 0)).unwrap();
        assert!(out.is_placed());
        assert_eq!(state.position(t), Some(SitePoint::new(20, 0)));
        assert_eq!(state.position(a), Some(SitePoint::new(10, 0)));
    }

    #[test]
    fn mll_pushes_neighbors_to_make_room() {
        let mut b = DesignBuilder::new(1, 12);
        let a = b.add_cell("a", 4, 1);
        let c = b.add_cell("c", 4, 1);
        let t = b.add_cell("t", 4, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(2, 0)).unwrap();
        state.place(&design, c, SitePoint::new(7, 0)).unwrap();
        // Only 12 sites; t must squeeze in, pushing a to 0 and c to 8.
        let out = mll(&design, &mut state, &relaxed(), t, SitePoint::new(4, 0)).unwrap();
        assert!(out.is_placed());
        assert_eq!(state.position(a), Some(SitePoint::new(0, 0)));
        assert_eq!(state.position(t), Some(SitePoint::new(4, 0)));
        assert_eq!(state.position(c), Some(SitePoint::new(8, 0)));
    }

    #[test]
    fn mll_fails_when_free_space_is_fragmented() {
        // Segments [0,5) and [7,14); the free sites (1 + 3) are split so a
        // 4-wide target fits nowhere even though total capacity suffices.
        let mut b = DesignBuilder::new(1, 14);
        let a = b.add_cell("a", 4, 1);
        let c = b.add_cell("c", 4, 1);
        let t = b.add_cell("t", 4, 1);
        b.add_blockage(mrl_geom::SiteRect::new(5, 0, 2, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(0, 0)).unwrap();
        state.place(&design, c, SitePoint::new(7, 0)).unwrap();
        let result = mll(&design, &mut state, &relaxed(), t, SitePoint::new(3, 0)).unwrap();
        assert_eq!(result, MllOutcome::NoInsertionPoint);
        // Placement untouched.
        assert_eq!(state.position(a), Some(SitePoint::new(0, 0)));
        assert_eq!(state.position(c), Some(SitePoint::new(7, 0)));
        assert!(!state.is_placed(t));
    }

    #[test]
    fn mll_respects_rail_alignment() {
        let mut b = DesignBuilder::new(4, 20);
        let t = b.add_cell("t", 2, 2); // VDD bottom: rows 0 and 2 only
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let cfg = LegalizerConfig::default();
        let out = mll(&design, &mut state, &cfg, t, SitePoint::new(5, 1)).unwrap();
        assert!(out.is_placed());
        let p = state.position(t).unwrap();
        assert!(p.y == 0 || p.y == 2, "even-height cell on row {}", p.y);
    }

    #[test]
    fn mll_relaxed_allows_any_row() {
        let mut b = DesignBuilder::new(4, 20);
        let t = b.add_cell("t", 2, 2);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let out = mll(&design, &mut state, &relaxed(), t, SitePoint::new(5, 1)).unwrap();
        assert!(out.is_placed());
        assert_eq!(state.position(t).unwrap().y, 1);
    }

    #[test]
    fn mll_on_placed_cell_is_an_error() {
        let mut b = DesignBuilder::new(1, 10);
        let a = b.add_cell("a", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(0, 0)).unwrap();
        assert!(matches!(
            mll(&design, &mut state, &relaxed(), a, SitePoint::new(5, 0)),
            Err(DbError::AlreadyPlaced(_))
        ));
    }

    #[test]
    fn transaction_rollback_restores_exact_state() {
        let mut b = DesignBuilder::new(1, 12);
        let a = b.add_cell("a", 4, 1);
        let c = b.add_cell("c", 4, 1);
        let t = b.add_cell("t", 4, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(2, 0)).unwrap();
        state.place(&design, c, SitePoint::new(7, 0)).unwrap();
        let tx = mll_transacted(&design, &mut state, &relaxed(), t, SitePoint::new(4, 0))
            .unwrap()
            .expect("feasible");
        assert!(state.is_placed(t));
        assert_eq!(tx.undo_moves.len(), 2);
        assert!(tx.touched_cells().count() == 3);
        tx.rollback(&design, &mut state).unwrap();
        assert!(!state.is_placed(t));
        assert_eq!(state.position(a), Some(SitePoint::new(2, 0)));
        assert_eq!(state.position(c), Some(SitePoint::new(7, 0)));
    }

    #[test]
    fn transaction_without_moves_rolls_back_cleanly() {
        let mut b = DesignBuilder::new(1, 20);
        let t = b.add_cell("t", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        let tx = mll_transacted(&design, &mut state, &relaxed(), t, SitePoint::new(5, 0))
            .unwrap()
            .expect("feasible");
        assert!(tx.undo_moves.is_empty());
        tx.rollback(&design, &mut state).unwrap();
        assert_eq!(state.num_placed(), 0);
    }

    #[test]
    fn mll_prefers_minimal_displacement_insertion() {
        // A tight spot at the desired position vs free space further away:
        // MLL should compare push cost vs target displacement.
        let mut b = DesignBuilder::new(1, 30);
        let a = b.add_cell("a", 2, 1);
        let c = b.add_cell("c", 2, 1);
        let t = b.add_cell("t", 2, 1);
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, a, SitePoint::new(10, 0)).unwrap();
        state.place(&design, c, SitePoint::new(12, 0)).unwrap();
        // Desired x = 11 sits inside the a|c wall; inserting between them
        // costs 2 pushes of 1 + 0 target displacement... depends; placing
        // at 14 (right of c) costs 3 of target displacement. The optimum
        // (cost 2) splits a and c.
        let out = mll(&design, &mut state, &relaxed(), t, SitePoint::new(11, 0)).unwrap();
        let MllOutcome::Placed(eval) = out else {
            panic!("expected placement")
        };
        assert_eq!(eval.cost, 2.0);
        assert_eq!(state.position(t), Some(SitePoint::new(11, 0)));
        assert_eq!(state.position(a), Some(SitePoint::new(9, 0)));
        assert_eq!(state.position(c), Some(SitePoint::new(13, 0)));
    }
}
