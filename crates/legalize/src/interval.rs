//! Insertion intervals (Section 5.1.1, Figure 7).
//!
//! For a target cell of width `w_t`, every gap between consecutive local
//! cells of a row (or between a cell and the local-segment boundary) induces
//! an *insertion interval* `(r, i, j, x_i, x_j)`: the closed range of
//! x-coordinates the target could occupy in that gap, derived from the
//! leftmost placement of the left cell and the rightmost placement of the
//! right cell. Negative-length intervals (Figure 7(f)) are discarded at
//! construction.

use crate::region::LocalRegion;
use mrl_geom::Interval;

/// One insertion interval: a gap on a local row with the feasible x-range
/// for the target cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsInterval {
    /// Local row index of the segment the gap lies on.
    pub row: usize,
    /// Gap index: the target would be inserted before the `gap`-th cell of
    /// the row's ordered list (`gap == len` means after the last cell).
    pub gap: usize,
    /// Local index of the cell on the left (`None` = segment boundary, the
    /// paper's `L`).
    pub left: Option<u32>,
    /// Local index of the cell on the right (`None` = segment boundary,
    /// the paper's `R`).
    pub right: Option<u32>,
    /// Feasible x-range `[x_i, x_j]` for the target's left edge.
    pub range: Interval,
}

impl LocalRegion {
    /// Builds all feasible insertion intervals for a target cell of width
    /// `target_w`, in (row, gap) order.
    ///
    /// Following Section 5.1.1: for a gap between cells `i` and `j`,
    /// `x_i = xL_i + w_i` and `x_j = xR_j − w_t`; segment boundaries
    /// substitute the segment ends. Intervals with `x_j < x_i` cannot host
    /// the target and are dropped.
    pub fn insertion_intervals(&self, target_w: i32) -> Vec<InsInterval> {
        let mut out = Vec::new();
        self.insertion_intervals_into(target_w, &mut out);
        out
    }

    /// [`insertion_intervals`](LocalRegion::insertion_intervals) into a
    /// caller-owned buffer (cleared first), so the kernel's steady state
    /// reuses one allocation across MLL calls.
    pub fn insertion_intervals_into(&self, target_w: i32, out: &mut Vec<InsInterval>) {
        out.clear();
        for (row, seg) in self.rows.iter().enumerate() {
            let Some(seg) = seg else { continue };
            for gap in 0..=seg.cells.len() {
                let (left, lo) = match gap.checked_sub(1).map(|k| seg.cells[k]) {
                    Some(ci) => {
                        let i = ci as usize;
                        (Some(ci), self.cells.x_left[i] + self.cells.w[i])
                    }
                    None => (None, seg.x0),
                };
                let (right, hi) = match seg.cells.get(gap).copied() {
                    Some(ci) => (Some(ci), self.cells.x_right[ci as usize] - target_w),
                    None => (None, seg.x1 - target_w),
                };
                let range = Interval::new(lo, hi);
                if !range.is_empty() {
                    out.push(InsInterval {
                        row,
                        gap,
                        left,
                        right,
                        range,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::{CellId, Design, DesignBuilder, PlacementState};
    use mrl_geom::{SitePoint, SiteRect};

    fn region_for(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)],
    ) -> (LocalRegion, Vec<CellId>, Design) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            state.place(&design, id, SitePoint::new(x, y)).unwrap();
        }
        let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, width, rows));
        (region, ids, design)
    }

    #[test]
    fn empty_row_has_single_boundary_interval() {
        let (region, _, _) = region_for(1, 10, &[]);
        let ivs = region.insertion_intervals(3);
        assert_eq!(ivs.len(), 1);
        let iv = ivs[0];
        assert_eq!((iv.left, iv.right), (None, None));
        assert_eq!(iv.range, Interval::new(0, 7));
        assert_eq!(iv.gap, 0);
    }

    #[test]
    fn gaps_between_cells_use_leftmost_and_rightmost() {
        // Row [0,12): a(w2)@3, b(w3)@7. Target w2.
        let (region, ids, _) = region_for(1, 12, &[(2, 1, 3, 0), (3, 1, 7, 0)]);
        let ivs = region.insertion_intervals(2);
        // Gaps: (L,a), (a,b), (b,R).
        assert_eq!(ivs.len(), 3);
        let a = region.local_index_of(ids[0]).unwrap();
        let b = region.local_index_of(ids[1]).unwrap();
        // (L, a): [seg.x0, xR_a - 2] = [0, 7 - 2] = [0, 5].
        assert_eq!(ivs[0].left, None);
        assert_eq!(ivs[0].right, Some(a));
        assert_eq!(ivs[0].range, Interval::new(0, 5));
        // (a, b): [xL_a + 2, xR_b - 2] = [0 + 2, 9 - 2] = [2, 7].
        assert_eq!(ivs[1].range, Interval::new(2, 7));
        assert_eq!((ivs[1].left, ivs[1].right), (Some(a), Some(b)));
        // (b, R): [xL_b + 3, 12 - 2] = [2 + 3, 10] = [5, 10].
        assert_eq!(ivs[2].range, Interval::new(5, 10));
        assert_eq!((ivs[2].left, ivs[2].right), (Some(b), None));
    }

    #[test]
    fn figure7_negative_length_interval_discarded() {
        // Row [0,8): a(w3)@0, b(w3)@5 leave a 2-site gap; a target of
        // width 3 cannot fit anywhere: total free = 2.
        let (region, _, _) = region_for(1, 8, &[(3, 1, 0, 0), (3, 1, 5, 0)]);
        let ivs = region.insertion_intervals(3);
        assert!(ivs.is_empty());
    }

    #[test]
    fn figure7_zero_length_interval_kept() {
        // Row [0,9): a(w3)@0, b(w3)@6; target w3 fits exactly between
        // leftmost-a (0..3) and rightmost-b (6..9): the middle interval is
        // the single point [3,3]. The two boundary gaps are also single
        // points (cells shift as a block).
        let (region, ids, _) = region_for(1, 9, &[(3, 1, 0, 0), (3, 1, 6, 0)]);
        let ivs = region.insertion_intervals(3);
        assert_eq!(ivs.len(), 3);
        let a = region.local_index_of(ids[0]).unwrap();
        let b = region.local_index_of(ids[1]).unwrap();
        let mid = ivs
            .iter()
            .find(|iv| iv.left == Some(a) && iv.right == Some(b))
            .unwrap();
        assert_eq!(mid.range, Interval::new(3, 3));
        assert_eq!(mid.range.len(), 0);
    }

    #[test]
    fn figure7_positive_length_interval() {
        // Row [0,12): a(w2)@0, b(w2)@10; target w4 between them: [2, 6].
        let (region, ids, _) = region_for(1, 12, &[(2, 1, 0, 0), (2, 1, 10, 0)]);
        let ivs = region.insertion_intervals(4);
        let a = region.local_index_of(ids[0]).unwrap();
        let b = region.local_index_of(ids[1]).unwrap();
        let mid = ivs
            .iter()
            .find(|iv| iv.left == Some(a) && iv.right == Some(b))
            .unwrap();
        assert_eq!(mid.range, Interval::new(2, 6));
        assert!(!mid.range.is_empty());
    }

    #[test]
    fn rows_without_segment_produce_no_intervals() {
        let mut b = DesignBuilder::new(2, 10);
        b.add_blockage(SiteRect::new(0, 1, 10, 1));
        let design = b.finish().unwrap();
        let state = PlacementState::new(&design);
        let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 10, 2));
        let ivs = region.insertion_intervals(2);
        assert!(ivs.iter().all(|iv| iv.row == 0));
    }

    #[test]
    fn multi_row_cells_bound_gaps_on_each_row() {
        // rows 0-1, width 10: m(2x2)@4. Target w2.
        let (region, ids, _) = region_for(2, 10, &[(2, 2, 4, 0)]);
        let ivs = region.insertion_intervals(2);
        let m = region.local_index_of(ids[0]).unwrap();
        // Each row: (L, m) and (m, R).
        assert_eq!(ivs.len(), 4);
        assert!(ivs
            .iter()
            .all(|iv| iv.left == Some(m) || iv.right == Some(m)));
        let row0: Vec<_> = ivs.iter().filter(|iv| iv.row == 0).collect();
        // (L,m): [0, xR_m - 2] = [0, 8 - 2]; (m,R): [xL_m + 2, 8] = [2, 8].
        assert_eq!(row0[0].range, Interval::new(0, 6));
        assert_eq!(row0[1].range, Interval::new(2, 8));
    }
}
