//! Local region extraction (Section 2.1.3) and the leftmost/rightmost
//! placements (Section 5.1.1, Figure 6).
//!
//! Given a window `W` around the target position, the extraction freezes
//! every cell that is not completely inside `W`, splits each row of `W` at
//! frozen cells and blockages, keeps per row the one free run closest to the
//! window center (the *local segment*), and finally keeps as *local cells*
//! exactly those cells fully contained in the local segments of **all** rows
//! they span. A cell inside `W` that violates the last condition (e.g. a
//! multi-row cell sticking into a non-chosen run — cells `i`/`c` of
//! Figure 3) is itself frozen, which may split segments further; extraction
//! therefore iterates to a fixpoint.
//!
//! The paper leaves this procedure unspecified ("due to page limit"); the
//! fixpoint above is the minimal procedure consistent with every property
//! the paper states.
//!
//! # Scaling architecture (DESIGN.md §9)
//!
//! Extraction is the dominant phase at scale, so it is structured to be
//! independent of design size and allocation-free in steady state:
//!
//! * Free space per row comes from the occupancy index through
//!   [`PlacementState::free_gaps_in`] — two binary searches returning only
//!   the gaps intersecting the window, O(log n + window) instead of a
//!   linear scan of the segment's whole gap list. The linear path is kept
//!   behind `use_index = false` as a test oracle and for `--no-spatial-index`
//!   measurement.
//! * Local cells are stored in a struct-of-arrays layout ([`LocalCells`]):
//!   the enumeration/evaluation kernels touch `x`/`w` (or `y`/`h`) in tight
//!   loops, and separate arrays keep those loops on dense cache lines. The
//!   per-row list positions live in one flattened pool instead of a `Vec`
//!   per cell, eliminating the per-cell allocations of the old layout.
//! * All transient extraction state lives in an [`ExtractScratch`] owned by
//!   the caller's `ScratchArena`, and the region itself is reused across
//!   MLL calls (`extract_masked_into` clears, never shrinks).

use mrl_db::{CellId, Design, PlacementState, RegionId, SegId};
use mrl_geom::SiteRect;

/// The local cells of a region in struct-of-arrays layout: one entry per
/// cell across all arrays, indexed by the local cell index (`u32`).
///
/// Cells are ordered by `(x, y, id)`; the order is a topological order of
/// the left-neighbor DAG (a left neighbor always has strictly smaller x).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalCells {
    /// Design-level cell ids.
    pub id: Vec<CellId>,
    /// Current x (site units).
    pub x: Vec<i32>,
    /// Global bottom row.
    pub y: Vec<i32>,
    /// Width in sites.
    pub w: Vec<i32>,
    /// Height in rows.
    pub h: Vec<i32>,
    /// x in the leftmost placement (`xL` in the paper).
    pub x_left: Vec<i32>,
    /// x in the rightmost placement (`xR` in the paper).
    pub x_right: Vec<i32>,
    /// Start of each cell's slice in `pos_pool` (prefix sum of heights;
    /// `len() + 1` entries).
    pos_start: Vec<u32>,
    /// Flattened per-row list positions: entry `pos_start[ci] + k` is cell
    /// `ci`'s index in the ordered cell list of its `k`-th spanned row
    /// (bottom up).
    pos_pool: Vec<u32>,
}

impl LocalCells {
    /// Number of local cells.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when the region has no local cells.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Cell `ci`'s index in the ordered list of its `k`-th spanned row
    /// (`k = 0` is the cell's bottom row).
    pub fn pos_in_row(&self, ci: u32, k: usize) -> u32 {
        self.pos_pool[self.pos_start[ci as usize] as usize + k]
    }

    fn clear(&mut self) {
        self.id.clear();
        self.x.clear();
        self.y.clear();
        self.w.clear();
        self.h.clear();
        self.x_left.clear();
        self.x_right.clear();
        self.pos_start.clear();
        self.pos_pool.clear();
    }

    fn push(&mut self, id: CellId, rect: SiteRect) {
        self.id.push(id);
        self.x.push(rect.x);
        self.y.push(rect.y);
        self.w.push(rect.w);
        self.h.push(rect.h);
        self.x_left.push(rect.x);
        self.x_right.push(rect.x);
    }
}

/// The local segment of one row: a contiguous run of free sites bounded by
/// frozen cells, blockages, or the window.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalSeg {
    /// Global segment the run lies on.
    pub seg: Option<SegId>,
    /// Leftmost site of the run.
    pub x0: i32,
    /// Exclusive right end of the run.
    pub x1: i32,
    /// Local cells on the run, ordered by x.
    pub cells: Vec<u32>,
}

impl LocalSeg {
    /// Width of the run in sites.
    pub const fn width(&self) -> i32 {
        self.x1 - self.x0
    }
}

/// An extracted local region: the sub-problem MLL solves.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalRegion {
    /// Global row index of local row 0.
    pub bottom_row: i32,
    /// One entry per row of the (clipped) window; `None` when the row has
    /// no free run inside the window.
    pub rows: Vec<Option<LocalSeg>>,
    /// The local cells (struct-of-arrays).
    pub cells: LocalCells,
}

/// A chosen free run on one row: global segment id plus `[x0, x1)`.
type ChosenRun = (Option<SegId>, i32, i32);

/// Reusable transient state for [`LocalRegion::extract_masked_into`]: the
/// inside-cell map, per-row interval buffers, and the fixpoint's chosen
/// runs. Owned by the `ScratchArena` so steady-state extraction performs no
/// heap allocations.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    // A flat vector, not a hash map: the inside set is a few dozen cells,
    // and the hot loop iterates it once per segment per fixpoint pass —
    // contiguous iteration beats bucket walking, and the extract kernel
    // stays free of hashing entirely.
    inside: Vec<(CellId, SiteRect)>,
    free: Vec<(i32, i32)>,
    blocked: Vec<(i32, i32)>,
    allowed: Vec<(i32, i32)>,
    merged: Vec<(i32, i32)>,
    chosen: Vec<Option<ChosenRun>>,
    sorted: Vec<(SiteRect, CellId)>,
}

impl LocalRegion {
    /// Extracts the local region for `window` from the current placement,
    /// for a target cell that belongs to no fence region.
    ///
    /// The returned region has leftmost/rightmost placements already
    /// computed. Rows of the window outside the floorplan are clipped.
    pub fn extract(design: &Design, state: &PlacementState, window: SiteRect) -> LocalRegion {
        Self::extract_masked(design, state, window, None)
    }

    /// Like [`LocalRegion::extract`] but for a target with the given fence
    /// membership: for a member the local segments are clipped to its
    /// region's rectangles, otherwise every fence area is excluded. Cells
    /// not fully inside the clipped runs are frozen, so only cells with
    /// compatible membership become local.
    pub fn extract_masked(
        design: &Design,
        state: &PlacementState,
        window: SiteRect,
        target_region: Option<RegionId>,
    ) -> LocalRegion {
        Self::extract_with_options(design, state, window, target_region, true)
    }

    /// [`LocalRegion::extract_masked`] with an explicit choice of free-gap
    /// query: `use_index = true` uses the windowed occupancy-index query
    /// ([`PlacementState::free_gaps_in`]), `false` the linear scan over the
    /// full gap list — kept as the oracle the spatial index is validated
    /// against (results are always identical).
    pub fn extract_with_options(
        design: &Design,
        state: &PlacementState,
        window: SiteRect,
        target_region: Option<RegionId>,
        use_index: bool,
    ) -> LocalRegion {
        let mut region = LocalRegion::default();
        let mut scratch = ExtractScratch::default();
        region.extract_masked_into(
            &mut scratch,
            design,
            state,
            window,
            target_region,
            use_index,
        );
        region
    }

    /// The steady-state extraction entry point: rebuilds `self` in place
    /// from `window`, reusing both the region's own buffers and the
    /// caller's [`ExtractScratch`] — zero heap allocations once warm.
    pub fn extract_masked_into(
        &mut self,
        scratch: &mut ExtractScratch,
        design: &Design,
        state: &PlacementState,
        window: SiteRect,
        target_region: Option<RegionId>,
        use_index: bool,
    ) {
        self.rows.clear();
        self.cells.clear();
        self.bottom_row = 0;
        let fp = design.floorplan();
        let r0 = window.y.max(0);
        let r1 = window.top().min(fp.num_rows());
        if r0 >= r1 || window.w <= 0 {
            return;
        }
        let h_w = (r1 - r0) as usize;
        // Doubled window-center x, for exact nearest-run comparisons.
        let center2 = 2 * window.x + window.w;

        // Candidate cells: placed cells intersecting the clipped window,
        // classified once as inside/outside. `cells_intersecting` is a
        // binary-search subslice of the segment's ordered list, so this
        // touches only cells near the window.
        let inside = &mut scratch.inside;
        inside.clear();
        for row in r0..r1 {
            let base = fp.row_segment_base(row).expect("row in range");
            for (idx, seg) in fp.segments_in_row(row).iter().enumerate() {
                let x0 = seg.x.max(window.x);
                let x1 = seg.right().min(window.right());
                if x0 >= x1 {
                    continue;
                }
                let seg_id = SegId::from_usize(base + idx);
                for &cell in state.cells_intersecting(design, seg_id, x0, x1) {
                    let rect = state.rect_of(design, cell).expect("listed cell placed");
                    // A multi-row cell is listed on every row it spans;
                    // count it only on the first scanned row so the set
                    // needs no dedup structure.
                    if rect.y.max(r0) != row {
                        continue;
                    }
                    if window.contains_rect(&rect) {
                        inside.push((cell, rect));
                    }
                }
            }
        }

        // Fixpoint: choose runs, demote violating inside-cells to frozen.
        loop {
            scratch.chosen.clear();
            scratch.chosen.resize(h_w, None);
            for row in r0..r1 {
                let mut best: Option<(i64, ChosenRun)> = None;
                for (idx, seg) in fp.segments_in_row(row).iter().enumerate() {
                    let sx0 = seg.x.max(window.x);
                    let sx1 = seg.right().min(window.right());
                    if sx0 >= sx1 {
                        continue;
                    }
                    let base = fp.row_segment_base(row).expect("row in range");
                    let seg_id = SegId::from_usize(base + idx);
                    // Free space on this row from the occupancy index:
                    // the segment's gaps clipped to the window, unioned
                    // with the footprints of still-inside (movable) cells.
                    // Frozen cells are exactly the placed cells in neither
                    // set, so the merged union is bounded by them — no
                    // rescan of `seg_cells` needed.
                    let gaps = if use_index {
                        state.free_gaps_in(seg_id, sx0, sx1)
                    } else {
                        state.free_gaps(seg_id)
                    };
                    let free = &mut scratch.free;
                    free.clear();
                    free.extend(gaps.iter().filter_map(|&(g0, g1)| {
                        let (a, b) = (g0.max(sx0), g1.min(sx1));
                        (a < b).then_some((a, b))
                    }));
                    for &(_, rect) in inside.iter() {
                        if rect.y <= row && row < rect.top() {
                            let (a, b) = (rect.x.max(sx0), rect.right().min(sx1));
                            if a < b {
                                free.push((a, b));
                            }
                        }
                    }
                    free.sort_unstable();
                    // Blocked spans on this row (fences only; frozen cells
                    // are already excluded from `free`).
                    let blocked = &mut scratch.blocked;
                    blocked.clear();
                    // Fence clipping: members may only use their region's
                    // area, everyone else must avoid every fence.
                    match target_region {
                        Some(r) => {
                            // Block the complement of the region's rects.
                            let allowed = &mut scratch.allowed;
                            allowed.clear();
                            allowed.extend(
                                design
                                    .region(r)
                                    .rects()
                                    .iter()
                                    .filter(|fr| fr.y <= row && row < fr.top())
                                    .map(|fr| (fr.x.max(sx0), fr.right().min(sx1)))
                                    .filter(|(a, b)| a < b),
                            );
                            allowed.sort_unstable();
                            let mut cursor = sx0;
                            for &(a, b) in allowed.iter() {
                                if a > cursor {
                                    blocked.push((cursor, a));
                                }
                                cursor = cursor.max(b);
                            }
                            if cursor < sx1 {
                                blocked.push((cursor, sx1));
                            }
                        }
                        None => {
                            for fr in design.regions() {
                                for fr_rect in fr.rects() {
                                    if fr_rect.y <= row && row < fr_rect.top() {
                                        let a = fr_rect.x.max(sx0);
                                        let b = fr_rect.right().min(sx1);
                                        if a < b {
                                            blocked.push((a, b));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Merge free intervals into maximal runs (gaps and
                    // inside-cell spans abut), then subtract fence spans,
                    // scoring each resulting run against the window center
                    // as it appears.
                    let merged = &mut scratch.merged;
                    merged.clear();
                    for &(a, b) in scratch.free.iter() {
                        match merged.last_mut() {
                            Some((_, e)) if *e >= a => *e = (*e).max(b),
                            _ => merged.push((a, b)),
                        }
                    }
                    blocked.sort_unstable();
                    let mut consider = |x0: i32, x1: i32| {
                        // Distance of the run to the (doubled) center.
                        let d = if 2 * x0 <= center2 && center2 <= 2 * x1 {
                            0
                        } else if 2 * x1 < center2 {
                            i64::from(center2) - i64::from(2 * x1)
                        } else {
                            i64::from(2 * x0) - i64::from(center2)
                        };
                        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                            best = Some((d, (Some(seg_id), x0, x1)));
                        }
                    };
                    for &(mut a, b) in merged.iter() {
                        for &(ba, bb) in scratch.blocked.iter() {
                            if bb <= a {
                                continue;
                            }
                            if ba >= b {
                                break;
                            }
                            if ba > a {
                                consider(a, ba);
                            }
                            a = a.max(bb);
                            if a >= b {
                                break;
                            }
                        }
                        if a < b {
                            consider(a, b);
                        }
                    }
                }
                scratch.chosen[(row - r0) as usize] = best.map(|(_, run)| run);
            }

            // Demote any inside-cell not contained in the chosen runs of all
            // rows it spans: demoted cells leave `inside`, their footprints
            // stop contributing to the free-run union, and they act as
            // frozen blockers on the next fixpoint round.
            let before = inside.len();
            let chosen = &scratch.chosen;
            inside.retain(|&(_, rect)| {
                rect.rows().all(|row| {
                    if row < r0 || row >= r1 {
                        return false;
                    }
                    match &chosen[(row - r0) as usize] {
                        Some((_, x0, x1)) => *x0 <= rect.x && rect.right() <= *x1,
                        None => false,
                    }
                })
            });
            if inside.len() == before {
                break;
            }
        }

        // Assemble: local cells (SoA, sorted by (x, y, id)) and per-row
        // ordered lists.
        scratch.sorted.clear();
        scratch
            .sorted
            .extend(inside.iter().map(|&(id, rect)| (rect, id)));
        scratch
            .sorted
            .sort_unstable_by_key(|&(rect, id)| (rect.x, rect.y, id));
        for &(rect, id) in scratch.sorted.iter() {
            self.cells.push(id, rect);
        }
        self.rows.extend(scratch.chosen.drain(..).map(|run| {
            run.map(|(seg, x0, x1)| LocalSeg {
                seg,
                x0,
                x1,
                cells: Vec::new(),
            })
        }));
        // Populate row lists bottom-up; cells are x-sorted so lists are too.
        for i in 0..self.cells.len() {
            let (y, h) = (self.cells.y[i], self.cells.h[i]);
            for row in y..y + h {
                let lr = (row - r0) as usize;
                self.rows[lr]
                    .as_mut()
                    .expect("local cell rows have chosen runs")
                    .cells
                    .push(i as u32);
            }
        }
        // Record each cell's index within every row list it belongs to,
        // into the flattened position pool (prefix-summed by height).
        let mut start = 0u32;
        for i in 0..self.cells.len() {
            self.cells.pos_start.push(start);
            start += self.cells.h[i] as u32;
        }
        self.cells.pos_start.push(start);
        self.cells.pos_pool.resize(start as usize, 0);
        for (lr, row) in self.rows.iter().enumerate() {
            let Some(row) = row else { continue };
            for (pos, &ci) in row.cells.iter().enumerate() {
                let k = lr - (self.cells.y[ci as usize] - r0) as usize;
                let slot = self.cells.pos_start[ci as usize] as usize + k;
                self.cells.pos_pool[slot] = pos as u32;
            }
        }
        self.bottom_row = r0;
        self.compute_leftmost_rightmost();
    }

    /// Number of (clipped) window rows.
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Local row index of cell `ci`'s bottom row.
    pub fn local_bottom(&self, ci: u32) -> usize {
        (self.cells.y[ci as usize] - self.bottom_row) as usize
    }

    /// The local row list a cell occupies on local row `lr`, with the
    /// cell's index in it.
    fn row_cells(&self, lr: usize) -> &[u32] {
        self.rows[lr]
            .as_ref()
            .map(|s| s.cells.as_slice())
            .unwrap_or(&[])
    }

    /// The immediate left neighbor of local cell `ci` on local row `lr`.
    pub fn left_neighbor_of(&self, ci: u32, lr: usize) -> Option<u32> {
        let k = self.cells.pos_in_row(ci, lr - self.local_bottom(ci)) as usize;
        k.checked_sub(1).map(|k| self.row_cells(lr)[k])
    }

    /// The immediate right neighbor of local cell `ci` on local row `lr`.
    pub fn right_neighbor_of(&self, ci: u32, lr: usize) -> Option<u32> {
        let k = self.cells.pos_in_row(ci, lr - self.local_bottom(ci)) as usize;
        self.row_cells(lr).get(k + 1).copied()
    }

    /// Computes `xL` and `xR` for every local cell (Figure 6): the legal
    /// placements with every cell as far left (right) as possible while
    /// keeping the current relative order in every row.
    pub fn compute_leftmost_rightmost(&mut self) {
        // Cells are x-sorted, which is a topological order of the
        // left-neighbor DAG (a left neighbor always has strictly smaller x).
        let n = self.cells.len() as u32;
        for ci in 0..n {
            let (y, h) = (self.cells.y[ci as usize], self.cells.h[ci as usize]);
            let mut x_left = i32::MIN;
            for row in y..y + h {
                let lr = (row - self.bottom_row) as usize;
                let bound = match self.left_neighbor_of(ci, lr) {
                    Some(p) => self.cells.x_left[p as usize] + self.cells.w[p as usize],
                    None => self.rows[lr].as_ref().expect("occupied row").x0,
                };
                x_left = x_left.max(bound);
            }
            self.cells.x_left[ci as usize] = x_left;
            debug_assert!(x_left <= self.cells.x[ci as usize]);
        }
        for ci in (0..n).rev() {
            let (y, h, w) = (
                self.cells.y[ci as usize],
                self.cells.h[ci as usize],
                self.cells.w[ci as usize],
            );
            let mut x_right = i32::MAX;
            for row in y..y + h {
                let lr = (row - self.bottom_row) as usize;
                let bound = match self.right_neighbor_of(ci, lr) {
                    Some(n) => self.cells.x_right[n as usize],
                    None => self.rows[lr].as_ref().expect("occupied row").x1,
                };
                x_right = x_right.min(bound);
            }
            self.cells.x_right[ci as usize] = x_right - w;
            debug_assert!(self.cells.x_right[ci as usize] >= self.cells.x[ci as usize]);
        }
    }

    /// Looks up a local cell by design id (linear; test/diagnostic use).
    pub fn local_index_of(&self, id: CellId) -> Option<u32> {
        self.cells
            .id
            .iter()
            .position(|&c| c == id)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::DesignBuilder;
    use mrl_geom::SitePoint;

    /// Builds a design with the given movable cells `(w, h)` placed at the
    /// given positions on a `rows x width` floorplan.
    fn placed_design(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)], // (w, h, x, y)
    ) -> (Design, PlacementState, Vec<CellId>) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            state.place(&design, id, SitePoint::new(x, y)).unwrap();
        }
        (design, state, ids)
    }

    #[test]
    fn empty_window_yields_empty_region() {
        let (design, state, _) = placed_design(2, 10, &[]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 5, 4, 2));
        assert!(r.rows.is_empty());
        assert!(r.cells.is_empty());
    }

    #[test]
    fn fully_inside_cells_are_local() {
        let (design, state, ids) = placed_design(3, 20, &[(3, 1, 5, 1), (2, 2, 9, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(2, 0, 14, 3));
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.bottom_row, 0);
        assert!(r.local_index_of(ids[0]).is_some());
        assert!(r.local_index_of(ids[1]).is_some());
        // Row 1 contains both cells ordered by x.
        let row1 = r.rows[1].as_ref().unwrap();
        assert_eq!(row1.cells.len(), 2);
        assert_eq!(r.cells.id[row1.cells[0] as usize], ids[0]);
    }

    #[test]
    fn straddling_cell_is_frozen_and_splits_row() {
        // Cell at x=8..14 sticks out of the window (window right edge 12).
        let (design, state, ids) = placed_design(1, 30, &[(6, 1, 8, 0), (2, 1, 2, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 1));
        // The frozen cell bounds the local segment on the right.
        let seg = r.rows[0].as_ref().unwrap();
        assert_eq!((seg.x0, seg.x1), (0, 8));
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells.id[0], ids[1]);
    }

    #[test]
    fn figure3_like_cell_beyond_divider_is_excluded() {
        // Window [0, 20); a frozen straddler at x=18..24 splits row 0 into
        // [0,18). A second run would exist only if another divider existed;
        // here, place a divider in the middle: frozen cell c_mid is taller
        // than the window so it is not fully inside (y-span).
        let (design, state, ids) = placed_design(
            3,
            40,
            &[
                (4, 3, 8, 0),  // tall divider, fully inside in x, spans all rows
                (2, 1, 3, 0),  // left of divider
                (2, 1, 14, 0), // right of divider
            ],
        );
        // Window covers rows 0..2 only, so the 3-row divider is frozen.
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 20, 2));
        let seg = r.rows[0].as_ref().unwrap();
        // Center x = 10; runs are [0,8) and [12,20); distance of [0,8) is
        // 2*10-16 = 4, of [12,20) is 24-20 = 4 — tie broken to the first,
        // i.e. [0,8).
        assert_eq!((seg.x0, seg.x1), (0, 8));
        // The cell on the non-chosen run is excluded despite being inside W.
        assert!(r.local_index_of(ids[2]).is_none());
        assert!(r.local_index_of(ids[1]).is_some());
    }

    #[test]
    fn multi_row_cell_in_non_chosen_run_is_demoted_fixpoint() {
        // Row 0 has a frozen divider; row 1 does not. A double-row cell to
        // the right of the divider is inside W and inside row 1's chosen
        // run but outside row 0's chosen run -> must be demoted, and its
        // footprint then bounds row 1's run.
        let (design, state, ids) = placed_design(
            3,
            40,
            &[
                (4, 3, 8, 0),  // tall frozen divider (rows 0..3)
                (2, 2, 14, 0), // double-row cell right of divider
                (2, 1, 3, 1),  // plain local cell left of divider on row 1
            ],
        );
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 20, 2));
        assert!(r.local_index_of(ids[1]).is_none(), "demoted");
        assert!(r.local_index_of(ids[2]).is_some());
        // Row 1's run is bounded by the divider (the demoted cell lies
        // right of it, beyond the chosen run).
        let seg1 = r.rows[1].as_ref().unwrap();
        assert_eq!((seg1.x0, seg1.x1), (0, 8));
    }

    #[test]
    fn window_clips_to_floorplan_rows() {
        let (design, state, _) = placed_design(2, 10, &[]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, -3, 10, 8));
        assert_eq!(r.bottom_row, 0);
        assert_eq!(r.height(), 2);
    }

    #[test]
    fn figure6_leftmost_rightmost_single_row() {
        // Segment [0, 12); cells at 3 (w2) and 7 (w3).
        let (design, state, ids) = placed_design(1, 12, &[(2, 1, 3, 0), (3, 1, 7, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 1));
        let a = r.local_index_of(ids[0]).unwrap() as usize;
        let b = r.local_index_of(ids[1]).unwrap() as usize;
        assert_eq!((r.cells.x_left[a], r.cells.x_right[a]), (0, 12 - 3 - 2));
        assert_eq!((r.cells.x_left[b], r.cells.x_right[b]), (2, 12 - 3));
    }

    #[test]
    fn figure6_leftmost_rightmost_with_multi_row_coupling() {
        // Rows 0-1, width 12.
        // row1:  m(2x2)@4  s(2x1)@8
        // row0:  a(3x1)@0  m
        let (design, state, ids) =
            placed_design(2, 12, &[(2, 2, 4, 0), (2, 1, 8, 1), (3, 1, 0, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 2));
        let m = r.local_index_of(ids[0]).unwrap() as usize;
        let s = r.local_index_of(ids[1]).unwrap() as usize;
        let a = r.local_index_of(ids[2]).unwrap() as usize;
        // Leftmost: a -> 0, m -> max(seg0 after a = 3, seg1 start 0) = 3,
        // s -> m.xL + 2 = 5.
        assert_eq!(r.cells.x_left[a], 0);
        assert_eq!(r.cells.x_left[m], 3);
        assert_eq!(r.cells.x_left[s], 5);
        // Rightmost: s -> 10, m -> min(12, s.xR = 10) - 2 = 8, a -> m.xR - 3 = 5.
        assert_eq!(r.cells.x_right[s], 10);
        assert_eq!(r.cells.x_right[m], 8);
        assert_eq!(r.cells.x_right[a], 5);
    }

    #[test]
    fn neighbors_follow_row_lists() {
        let (design, state, ids) =
            placed_design(2, 12, &[(2, 2, 4, 0), (2, 1, 8, 1), (3, 1, 0, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 2));
        let m = r.local_index_of(ids[0]).unwrap();
        let s = r.local_index_of(ids[1]).unwrap();
        let a = r.local_index_of(ids[2]).unwrap();
        assert_eq!(r.left_neighbor_of(m, 0), Some(a));
        assert_eq!(r.left_neighbor_of(m, 1), None);
        assert_eq!(r.right_neighbor_of(m, 1), Some(s));
        assert_eq!(r.right_neighbor_of(m, 0), None);
        assert_eq!(r.left_neighbor_of(s, 1), Some(m));
    }

    #[test]
    fn blockages_bound_local_segments() {
        let mut b = DesignBuilder::new(1, 20);
        let c = b.add_cell("c", 2, 1);
        b.add_blockage(SiteRect::new(10, 0, 2, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, c, SitePoint::new(2, 0)).unwrap();
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 20, 1));
        // Center 10 falls on the blockage; runs [0,10) and [12,20):
        // distance of [0,10) is 0 (2*10 <= 20 <= 2*10? 20 == 20 yes).
        let seg = r.rows[0].as_ref().unwrap();
        assert_eq!((seg.x0, seg.x1), (0, 10));
        assert_eq!(r.cells.len(), 1);
    }

    #[test]
    fn indexed_and_linear_extraction_agree() {
        let (design, state, _) = placed_design(
            3,
            40,
            &[
                (4, 3, 8, 0),
                (2, 2, 14, 0),
                (2, 1, 3, 1),
                (3, 1, 20, 2),
                (2, 1, 30, 0),
            ],
        );
        for window in [
            SiteRect::new(0, 0, 20, 2),
            SiteRect::new(5, 0, 18, 3),
            SiteRect::new(12, 1, 25, 2),
            SiteRect::new(-4, -1, 50, 6),
        ] {
            let fast = LocalRegion::extract_with_options(&design, &state, window, None, true);
            let slow = LocalRegion::extract_with_options(&design, &state, window, None, false);
            assert_eq!(fast, slow, "window {window:?}");
        }
    }

    #[test]
    fn region_reuse_matches_fresh_extraction() {
        let (design, state, _) = placed_design(
            2,
            30,
            &[(2, 2, 4, 0), (2, 1, 8, 1), (3, 1, 0, 0), (2, 1, 20, 0)],
        );
        let mut region = LocalRegion::default();
        let mut scratch = ExtractScratch::default();
        for window in [
            SiteRect::new(0, 0, 12, 2),
            SiteRect::new(15, 0, 10, 1),
            SiteRect::new(0, 0, 30, 2),
            SiteRect::new(25, 1, 4, 1),
        ] {
            region.extract_masked_into(&mut scratch, &design, &state, window, None, true);
            let fresh = LocalRegion::extract(&design, &state, window);
            assert_eq!(region, fresh, "window {window:?}");
        }
    }
}
