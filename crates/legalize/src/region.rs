//! Local region extraction (Section 2.1.3) and the leftmost/rightmost
//! placements (Section 5.1.1, Figure 6).
//!
//! Given a window `W` around the target position, the extraction freezes
//! every cell that is not completely inside `W`, splits each row of `W` at
//! frozen cells and blockages, keeps per row the one free run closest to the
//! window center (the *local segment*), and finally keeps as *local cells*
//! exactly those cells fully contained in the local segments of **all** rows
//! they span. A cell inside `W` that violates the last condition (e.g. a
//! multi-row cell sticking into a non-chosen run — cells `i`/`c` of
//! Figure 3) is itself frozen, which may split segments further; extraction
//! therefore iterates to a fixpoint.
//!
//! The paper leaves this procedure unspecified ("due to page limit"); the
//! fixpoint above is the minimal procedure consistent with every property
//! the paper states.

use mrl_db::{CellId, Design, PlacementState, RegionId, SegId};
use mrl_geom::SiteRect;
use std::collections::HashMap;

/// A local cell: a movable cell that MLL may shift horizontally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalCell {
    /// The design-level cell id.
    pub id: CellId,
    /// Current x (site units).
    pub x: i32,
    /// Global bottom row.
    pub y: i32,
    /// Width in sites.
    pub w: i32,
    /// Height in rows.
    pub h: i32,
    /// x in the leftmost placement (`xL` in the paper).
    pub x_left: i32,
    /// x in the rightmost placement (`xR` in the paper).
    pub x_right: i32,
    /// For each spanned local row (bottom up), this cell's index in that
    /// row's ordered cell list.
    pub pos_in_row: Vec<u32>,
}

impl LocalCell {
    /// Local row index of the cell's bottom row within a region whose
    /// lowest row is `bottom_row`.
    pub fn local_bottom(&self, bottom_row: i32) -> usize {
        (self.y - bottom_row) as usize
    }
}

/// The local segment of one row: a contiguous run of free sites bounded by
/// frozen cells, blockages, or the window.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalSeg {
    /// Global segment the run lies on.
    pub seg: Option<SegId>,
    /// Leftmost site of the run.
    pub x0: i32,
    /// Exclusive right end of the run.
    pub x1: i32,
    /// Local cells on the run, ordered by x.
    pub cells: Vec<u32>,
}

impl LocalSeg {
    /// Width of the run in sites.
    pub const fn width(&self) -> i32 {
        self.x1 - self.x0
    }
}

/// An extracted local region: the sub-problem MLL solves.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalRegion {
    /// Global row index of local row 0.
    pub bottom_row: i32,
    /// One entry per row of the (clipped) window; `None` when the row has
    /// no free run inside the window.
    pub rows: Vec<Option<LocalSeg>>,
    /// The local cells.
    pub cells: Vec<LocalCell>,
}

/// A chosen free run on one row: global segment id plus `[x0, x1)`.
type ChosenRun = (Option<SegId>, i32, i32);

impl LocalRegion {
    /// Extracts the local region for `window` from the current placement,
    /// for a target cell that belongs to no fence region.
    ///
    /// The returned region has leftmost/rightmost placements already
    /// computed. Rows of the window outside the floorplan are clipped.
    pub fn extract(design: &Design, state: &PlacementState, window: SiteRect) -> LocalRegion {
        Self::extract_masked(design, state, window, None)
    }

    /// Like [`LocalRegion::extract`] but for a target with the given fence
    /// membership: for a member the local segments are clipped to its
    /// region's rectangles, otherwise every fence area is excluded. Cells
    /// not fully inside the clipped runs are frozen, so only cells with
    /// compatible membership become local.
    pub fn extract_masked(
        design: &Design,
        state: &PlacementState,
        window: SiteRect,
        target_region: Option<RegionId>,
    ) -> LocalRegion {
        let fp = design.floorplan();
        let r0 = window.y.max(0);
        let r1 = window.top().min(fp.num_rows());
        if r0 >= r1 || window.w <= 0 {
            return LocalRegion::default();
        }
        let h_w = (r1 - r0) as usize;
        // Doubled window-center x, for exact nearest-run comparisons.
        let center2 = 2 * window.x + window.w;

        // Candidate cells: placed cells intersecting the clipped window,
        // classified once as inside/outside.
        let mut inside: HashMap<CellId, SiteRect> = HashMap::new();
        let mut seen: HashMap<CellId, ()> = HashMap::new();
        for row in r0..r1 {
            let base = fp.row_segment_base(row).expect("row in range");
            for (idx, seg) in fp.segments_in_row(row).iter().enumerate() {
                let x0 = seg.x.max(window.x);
                let x1 = seg.right().min(window.right());
                if x0 >= x1 {
                    continue;
                }
                let seg_id = SegId::from_usize(base + idx);
                for &cell in state.cells_intersecting(design, seg_id, x0, x1) {
                    if seen.insert(cell, ()).is_some() {
                        continue;
                    }
                    let rect = state.rect_of(design, cell).expect("listed cell placed");
                    if window.contains_rect(&rect) {
                        inside.insert(cell, rect);
                    }
                }
            }
        }

        // Fixpoint: choose runs, demote violating inside-cells to frozen.
        let chosen: Vec<Option<ChosenRun>> = loop {
            let mut chosen: Vec<Option<ChosenRun>> = vec![None; h_w];
            for row in r0..r1 {
                let mut best: Option<(i64, ChosenRun)> = None;
                for (idx, seg) in fp.segments_in_row(row).iter().enumerate() {
                    let sx0 = seg.x.max(window.x);
                    let sx1 = seg.right().min(window.right());
                    if sx0 >= sx1 {
                        continue;
                    }
                    let base = fp.row_segment_base(row).expect("row in range");
                    let seg_id = SegId::from_usize(base + idx);
                    // Free space on this row from the occupancy index:
                    // the segment's gaps clipped to the window, unioned
                    // with the footprints of still-inside (movable) cells.
                    // Frozen cells are exactly the placed cells in neither
                    // set, so the merged union is bounded by them — no
                    // rescan of `seg_cells` needed.
                    let mut free: Vec<(i32, i32)> = state
                        .free_gaps(seg_id)
                        .iter()
                        .filter_map(|&(g0, g1)| {
                            let (a, b) = (g0.max(sx0), g1.min(sx1));
                            (a < b).then_some((a, b))
                        })
                        .collect();
                    for rect in inside.values() {
                        if rect.y <= row && row < rect.top() {
                            let (a, b) = (rect.x.max(sx0), rect.right().min(sx1));
                            if a < b {
                                free.push((a, b));
                            }
                        }
                    }
                    free.sort_unstable();
                    // Blocked spans on this row (fences only; frozen cells
                    // are already excluded from `free`).
                    let mut blocked: Vec<(i32, i32)> = Vec::new();
                    // Fence clipping: members may only use their region's
                    // area, everyone else must avoid every fence.
                    match target_region {
                        Some(r) => {
                            // Block the complement of the region's rects.
                            let mut allowed: Vec<(i32, i32)> = design
                                .region(r)
                                .rects()
                                .iter()
                                .filter(|fr| fr.y <= row && row < fr.top())
                                .map(|fr| (fr.x.max(sx0), fr.right().min(sx1)))
                                .filter(|(a, b)| a < b)
                                .collect();
                            allowed.sort_unstable();
                            let mut cursor = sx0;
                            for (a, b) in allowed {
                                if a > cursor {
                                    blocked.push((cursor, a));
                                }
                                cursor = cursor.max(b);
                            }
                            if cursor < sx1 {
                                blocked.push((cursor, sx1));
                            }
                        }
                        None => {
                            for fr in design.regions() {
                                for fr_rect in fr.rects() {
                                    if fr_rect.y <= row && row < fr_rect.top() {
                                        let a = fr_rect.x.max(sx0);
                                        let b = fr_rect.right().min(sx1);
                                        if a < b {
                                            blocked.push((a, b));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Merge free intervals into maximal runs (gaps and
                    // inside-cell spans abut), then subtract fence spans.
                    let mut merged: Vec<(i32, i32)> = Vec::new();
                    for (a, b) in free {
                        match merged.last_mut() {
                            Some((_, e)) if *e >= a => *e = (*e).max(b),
                            _ => merged.push((a, b)),
                        }
                    }
                    blocked.sort_unstable();
                    let mut runs: Vec<(i32, i32)> = Vec::new();
                    for (mut a, b) in merged {
                        for &(ba, bb) in &blocked {
                            if bb <= a {
                                continue;
                            }
                            if ba >= b {
                                break;
                            }
                            if ba > a {
                                runs.push((a, ba));
                            }
                            a = a.max(bb);
                            if a >= b {
                                break;
                            }
                        }
                        if a < b {
                            runs.push((a, b));
                        }
                    }
                    for (x0, x1) in runs {
                        // Distance of the run to the (doubled) center.
                        let d = if 2 * x0 <= center2 && center2 <= 2 * x1 {
                            0
                        } else if 2 * x1 < center2 {
                            i64::from(center2) - i64::from(2 * x1)
                        } else {
                            i64::from(2 * x0) - i64::from(center2)
                        };
                        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                            best = Some((d, (Some(seg_id), x0, x1)));
                        }
                    }
                }
                chosen[(row - r0) as usize] = best.map(|(_, run)| run);
            }

            // Demote any inside-cell not contained in the chosen runs of all
            // rows it spans.
            let mut newly_frozen = Vec::new();
            for (&cell, rect) in &inside {
                let ok = rect.rows().all(|row| {
                    if row < r0 || row >= r1 {
                        return false;
                    }
                    match &chosen[(row - r0) as usize] {
                        Some((_, x0, x1)) => *x0 <= rect.x && rect.right() <= *x1,
                        None => false,
                    }
                });
                if !ok {
                    newly_frozen.push(cell);
                }
            }
            if newly_frozen.is_empty() {
                break chosen;
            }
            for cell in newly_frozen {
                // Demoted cells leave `inside`; their footprints stop
                // contributing to the free-run union and thus act as
                // frozen blockers on the next fixpoint round.
                inside.remove(&cell).expect("was inside");
            }
        };

        // Assemble: local cells and per-row ordered lists.
        let mut cells: Vec<LocalCell> = inside
            .iter()
            .map(|(&id, rect)| LocalCell {
                id,
                x: rect.x,
                y: rect.y,
                w: rect.w,
                h: rect.h,
                x_left: rect.x,
                x_right: rect.x,
                pos_in_row: Vec::new(),
            })
            .collect();
        cells.sort_by_key(|c| (c.x, c.y, c.id));
        let mut rows: Vec<Option<LocalSeg>> = chosen
            .into_iter()
            .map(|run| {
                run.map(|(seg, x0, x1)| LocalSeg {
                    seg,
                    x0,
                    x1,
                    cells: Vec::new(),
                })
            })
            .collect();
        // Populate row lists bottom-up; `cells` is x-sorted so lists are too.
        for (i, cell) in cells.iter().enumerate() {
            for row in cell.y..cell.y + cell.h {
                let lr = (row - r0) as usize;
                rows[lr]
                    .as_mut()
                    .expect("local cell rows have chosen runs")
                    .cells
                    .push(i as u32);
            }
        }
        // Record each cell's index within every row list it belongs to.
        let mut pos_map: Vec<Vec<u32>> = vec![Vec::new(); cells.len()];
        for row in rows.iter().flatten() {
            for (pos, &ci) in row.cells.iter().enumerate() {
                pos_map[ci as usize].push(pos as u32);
            }
        }
        for (cell, poses) in cells.iter_mut().zip(pos_map) {
            cell.pos_in_row = poses;
        }
        let mut region = LocalRegion {
            bottom_row: r0,
            rows,
            cells,
        };
        region.compute_leftmost_rightmost();
        region
    }

    /// Number of (clipped) window rows.
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// The local row list a cell occupies on local row `lr`, with the
    /// cell's index in it.
    fn row_cells(&self, lr: usize) -> &[u32] {
        self.rows[lr]
            .as_ref()
            .map(|s| s.cells.as_slice())
            .unwrap_or(&[])
    }

    /// The immediate left neighbor of local cell `ci` on local row `lr`.
    pub fn left_neighbor_of(&self, ci: u32, lr: usize) -> Option<u32> {
        let cell = &self.cells[ci as usize];
        let k = cell.pos_in_row[lr - cell.local_bottom(self.bottom_row)] as usize;
        k.checked_sub(1).map(|k| self.row_cells(lr)[k])
    }

    /// The immediate right neighbor of local cell `ci` on local row `lr`.
    pub fn right_neighbor_of(&self, ci: u32, lr: usize) -> Option<u32> {
        let cell = &self.cells[ci as usize];
        let k = cell.pos_in_row[lr - cell.local_bottom(self.bottom_row)] as usize;
        self.row_cells(lr).get(k + 1).copied()
    }

    /// Computes `xL` and `xR` for every local cell (Figure 6): the legal
    /// placements with every cell as far left (right) as possible while
    /// keeping the current relative order in every row.
    pub fn compute_leftmost_rightmost(&mut self) {
        // Cells are x-sorted, which is a topological order of the
        // left-neighbor DAG (a left neighbor always has strictly smaller x).
        let order: Vec<u32> = (0..self.cells.len() as u32).collect();
        for &ci in &order {
            let (y, h) = {
                let c = &self.cells[ci as usize];
                (c.y, c.h)
            };
            let mut x_left = i32::MIN;
            for row in y..y + h {
                let lr = (row - self.bottom_row) as usize;
                let bound = match self.left_neighbor_of(ci, lr) {
                    Some(p) => {
                        let p = &self.cells[p as usize];
                        p.x_left + p.w
                    }
                    None => self.rows[lr].as_ref().expect("occupied row").x0,
                };
                x_left = x_left.max(bound);
            }
            self.cells[ci as usize].x_left = x_left;
            debug_assert!(x_left <= self.cells[ci as usize].x);
        }
        for &ci in order.iter().rev() {
            let (y, h, w) = {
                let c = &self.cells[ci as usize];
                (c.y, c.h, c.w)
            };
            let mut x_right = i32::MAX;
            for row in y..y + h {
                let lr = (row - self.bottom_row) as usize;
                let bound = match self.right_neighbor_of(ci, lr) {
                    Some(n) => self.cells[n as usize].x_right,
                    None => self.rows[lr].as_ref().expect("occupied row").x1,
                };
                x_right = x_right.min(bound);
            }
            self.cells[ci as usize].x_right = x_right - w;
            debug_assert!(self.cells[ci as usize].x_right >= self.cells[ci as usize].x);
        }
    }

    /// Looks up a local cell by design id (linear; test/diagnostic use).
    pub fn local_index_of(&self, id: CellId) -> Option<u32> {
        self.cells.iter().position(|c| c.id == id).map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::DesignBuilder;
    use mrl_geom::SitePoint;

    /// Builds a design with the given movable cells `(w, h)` placed at the
    /// given positions on a `rows x width` floorplan.
    fn placed_design(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)], // (w, h, x, y)
    ) -> (Design, PlacementState, Vec<CellId>) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            state.place(&design, id, SitePoint::new(x, y)).unwrap();
        }
        (design, state, ids)
    }

    #[test]
    fn empty_window_yields_empty_region() {
        let (design, state, _) = placed_design(2, 10, &[]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 5, 4, 2));
        assert!(r.rows.is_empty());
        assert!(r.cells.is_empty());
    }

    #[test]
    fn fully_inside_cells_are_local() {
        let (design, state, ids) = placed_design(3, 20, &[(3, 1, 5, 1), (2, 2, 9, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(2, 0, 14, 3));
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.bottom_row, 0);
        assert!(r.local_index_of(ids[0]).is_some());
        assert!(r.local_index_of(ids[1]).is_some());
        // Row 1 contains both cells ordered by x.
        let row1 = r.rows[1].as_ref().unwrap();
        assert_eq!(row1.cells.len(), 2);
        let first = &r.cells[row1.cells[0] as usize];
        assert_eq!(first.id, ids[0]);
    }

    #[test]
    fn straddling_cell_is_frozen_and_splits_row() {
        // Cell at x=8..14 sticks out of the window (window right edge 12).
        let (design, state, ids) = placed_design(1, 30, &[(6, 1, 8, 0), (2, 1, 2, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 1));
        // The frozen cell bounds the local segment on the right.
        let seg = r.rows[0].as_ref().unwrap();
        assert_eq!((seg.x0, seg.x1), (0, 8));
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells[0].id, ids[1]);
    }

    #[test]
    fn figure3_like_cell_beyond_divider_is_excluded() {
        // Window [0, 20); a frozen straddler at x=18..24 splits row 0 into
        // [0,18). A second run would exist only if another divider existed;
        // here, place a divider in the middle: frozen cell c_mid is taller
        // than the window so it is not fully inside (y-span).
        let (design, state, ids) = placed_design(
            3,
            40,
            &[
                (4, 3, 8, 0),  // tall divider, fully inside in x, spans all rows
                (2, 1, 3, 0),  // left of divider
                (2, 1, 14, 0), // right of divider
            ],
        );
        // Window covers rows 0..2 only, so the 3-row divider is frozen.
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 20, 2));
        let seg = r.rows[0].as_ref().unwrap();
        // Center x = 10; runs are [0,8) and [12,20); distance of [0,8) is
        // 2*10-16 = 4, of [12,20) is 24-20 = 4 — tie broken to the first,
        // i.e. [0,8).
        assert_eq!((seg.x0, seg.x1), (0, 8));
        // The cell on the non-chosen run is excluded despite being inside W.
        assert!(r.local_index_of(ids[2]).is_none());
        assert!(r.local_index_of(ids[1]).is_some());
    }

    #[test]
    fn multi_row_cell_in_non_chosen_run_is_demoted_fixpoint() {
        // Row 0 has a frozen divider; row 1 does not. A double-row cell to
        // the right of the divider is inside W and inside row 1's chosen
        // run but outside row 0's chosen run -> must be demoted, and its
        // footprint then bounds row 1's run.
        let (design, state, ids) = placed_design(
            3,
            40,
            &[
                (4, 3, 8, 0),  // tall frozen divider (rows 0..3)
                (2, 2, 14, 0), // double-row cell right of divider
                (2, 1, 3, 1),  // plain local cell left of divider on row 1
            ],
        );
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 20, 2));
        assert!(r.local_index_of(ids[1]).is_none(), "demoted");
        assert!(r.local_index_of(ids[2]).is_some());
        // Row 1's run is bounded by the divider (the demoted cell lies
        // right of it, beyond the chosen run).
        let seg1 = r.rows[1].as_ref().unwrap();
        assert_eq!((seg1.x0, seg1.x1), (0, 8));
    }

    #[test]
    fn window_clips_to_floorplan_rows() {
        let (design, state, _) = placed_design(2, 10, &[]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, -3, 10, 8));
        assert_eq!(r.bottom_row, 0);
        assert_eq!(r.height(), 2);
    }

    #[test]
    fn figure6_leftmost_rightmost_single_row() {
        // Segment [0, 12); cells at 3 (w2) and 7 (w3).
        let (design, state, ids) = placed_design(1, 12, &[(2, 1, 3, 0), (3, 1, 7, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 1));
        let a = &r.cells[r.local_index_of(ids[0]).unwrap() as usize];
        let b = &r.cells[r.local_index_of(ids[1]).unwrap() as usize];
        assert_eq!((a.x_left, a.x_right), (0, 12 - 3 - 2));
        assert_eq!((b.x_left, b.x_right), (2, 12 - 3));
    }

    #[test]
    fn figure6_leftmost_rightmost_with_multi_row_coupling() {
        // Rows 0-1, width 12.
        // row1:  m(2x2)@4  s(2x1)@8
        // row0:  a(3x1)@0  m
        let (design, state, ids) =
            placed_design(2, 12, &[(2, 2, 4, 0), (2, 1, 8, 1), (3, 1, 0, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 2));
        let m = &r.cells[r.local_index_of(ids[0]).unwrap() as usize];
        let s = &r.cells[r.local_index_of(ids[1]).unwrap() as usize];
        let a = &r.cells[r.local_index_of(ids[2]).unwrap() as usize];
        // Leftmost: a -> 0, m -> max(seg0 after a = 3, seg1 start 0) = 3,
        // s -> m.xL + 2 = 5.
        assert_eq!(a.x_left, 0);
        assert_eq!(m.x_left, 3);
        assert_eq!(s.x_left, 5);
        // Rightmost: s -> 10, m -> min(12, s.xR = 10) - 2 = 8, a -> m.xR - 3 = 5.
        assert_eq!(s.x_right, 10);
        assert_eq!(m.x_right, 8);
        assert_eq!(a.x_right, 5);
    }

    #[test]
    fn neighbors_follow_row_lists() {
        let (design, state, ids) =
            placed_design(2, 12, &[(2, 2, 4, 0), (2, 1, 8, 1), (3, 1, 0, 0)]);
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 12, 2));
        let m = r.local_index_of(ids[0]).unwrap();
        let s = r.local_index_of(ids[1]).unwrap();
        let a = r.local_index_of(ids[2]).unwrap();
        assert_eq!(r.left_neighbor_of(m, 0), Some(a));
        assert_eq!(r.left_neighbor_of(m, 1), None);
        assert_eq!(r.right_neighbor_of(m, 1), Some(s));
        assert_eq!(r.right_neighbor_of(m, 0), None);
        assert_eq!(r.left_neighbor_of(s, 1), Some(m));
    }

    #[test]
    fn blockages_bound_local_segments() {
        let mut b = DesignBuilder::new(1, 20);
        let c = b.add_cell("c", 2, 1);
        b.add_blockage(SiteRect::new(10, 0, 2, 1));
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        state.place(&design, c, SitePoint::new(2, 0)).unwrap();
        let r = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, 20, 1));
        // Center 10 falls on the blockage; runs [0,10) and [12,20):
        // distance of [0,10) is 0 (2*10 <= 20 <= 2*10? 20 == 20 yes).
        let seg = r.rows[0].as_ref().unwrap();
        assert_eq!((seg.x0, seg.x1), (0, 10));
        assert_eq!(r.cells.len(), 1);
    }
}
