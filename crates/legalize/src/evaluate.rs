//! Insertion point evaluation (Section 5.2, Figure 9).
//!
//! Once an insertion point (one gap per spanned row) is chosen, every local
//! cell's displacement is a one-sided hinge function of the target cell's
//! x-position `x_t` (equation (3) of the paper): cells left of the target
//! contribute `max(0, x^a_i − x_t)`, cells right of it
//! `max(0, x_t − x^b_j)`, and the target itself `|x_t − x'_t|`. The sum is
//! convex piecewise-linear, so the optimum is a median of critical
//! positions clamped to the insertion point's feasible range.
//!
//! Two evaluators are provided:
//!
//! * [`evaluate`] — the paper's production mode: only the ≤ 2·h cells
//!   adjacent to the chosen gaps contribute critical positions (`x^a_i =
//!   x_i + w_i`, `x^b_j = x_j − w_t`). O(h).
//! * [`evaluate_exact`] — critical positions of *all* local cells, derived
//!   by propagating push chains through the left/right neighbor DAG in
//!   O(|C_W|): `x^a_c = x_c + w_c + max_r (x^a_r − x_r)` over the pushed
//!   right neighbors `r` of `c` (0 for gap-adjacent cells), symmetrically
//!   for `x^b`. This is the symbolic form of the realization wave and its
//!   cost equals the realized displacement exactly.

use crate::interval::InsInterval;
use crate::region::LocalRegion;
use crate::scratch::EvalScratch;
use mrl_geom::{Interval, PowerRail};

/// The cell MLL is asked to insert: dimensions plus the snapped target
/// position (site units) it should stay close to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetSpec {
    /// Width in sites.
    pub w: i32,
    /// Height in rows.
    pub h: i32,
    /// Desired x (left edge, site units).
    pub x: i32,
    /// Desired bottom row (global row index).
    pub y: i32,
    /// Native bottom-rail polarity (drives the parity filter for
    /// even-height targets).
    pub rail: PowerRail,
}

/// Result of scoring one insertion point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Optimal x for the target's left edge.
    pub x: i32,
    /// Total displacement cost in site widths (vertical displacement of the
    /// target is weighted by the row-height/site-width aspect ratio).
    pub cost: f64,
}

/// Minimizes `f(x) = Σ max(0, a_i − x) + Σ max(0, x − b_j)` over the closed
/// integer interval `[lo, hi]`, returning the smallest minimizer and the
/// minimum. `a`/`b` are reordered in place.
///
/// # Panics
///
/// Panics if `hi < lo`.
pub(crate) fn minimize_hinges(a: &mut [i64], b: &mut [i64], lo: i64, hi: i64) -> (i64, i64) {
    assert!(lo <= hi, "feasible range must be non-empty");
    a.sort_unstable();
    b.sort_unstable();
    let f_lo: i64 = a.iter().map(|&v| (v - lo).max(0)).sum::<i64>()
        + b.iter().map(|&v| (lo - v).max(0)).sum::<i64>();
    let mut best = (lo, f_lo);
    // Counters defining the right-slope at the cursor.
    let mut a_gt = a.partition_point(|&v| v <= lo); // first index with v > lo
    let mut b_le = b.partition_point(|&v| v <= lo);
    let mut a_gt_count = (a.len() - a_gt) as i64;
    let mut cur = (lo, f_lo);
    loop {
        let slope = b_le as i64 - a_gt_count;
        if slope >= 0 {
            break; // convex: no further descent to the right
        }
        // Next breakpoint strictly right of the cursor (or hi).
        let next_a = a.get(a_gt).copied().unwrap_or(i64::MAX);
        let next_b = b.get(b_le).copied().unwrap_or(i64::MAX);
        let next = next_a.min(next_b).min(hi);
        if next <= cur.0 {
            break;
        }
        let f_next = cur.1 + slope * (next - cur.0);
        cur = (next, f_next);
        if f_next < best.1 {
            best = cur;
        }
        if next == hi {
            break;
        }
        // Advance counters past `next`.
        while a_gt < a.len() && a[a_gt] <= next {
            a_gt += 1;
            a_gt_count -= 1;
        }
        while b_le < b.len() && b[b_le] <= next {
            b_le += 1;
        }
    }
    best
}

/// Feasible target range of an insertion point: the intersection of its
/// intervals' ranges.
pub(crate) fn feasible_range(combo: &[InsInterval]) -> Interval {
    combo
        .iter()
        .fold(Interval::new(i32::MIN, i32::MAX), |acc, iv| {
            acc.intersect(&iv.range)
        })
}

/// The target's row-displacement cost for a window whose bottom row is
/// `bottom_row_global`. Exact (not a bound): both evaluators and the
/// branch-and-bound lower bound add this same term.
pub(crate) fn vertical_cost(target: &TargetSpec, bottom_row_global: i32, aspect: f64) -> f64 {
    f64::from((bottom_row_global - target.y).abs()) * aspect
}

/// Scores an insertion point with the paper's neighbor-only approximation.
///
/// `combo` holds one interval per spanned row (bottom-up);
/// `bottom_row_global` is the global row index the target's bottom edge
/// would land on; `aspect` is row-height / site-width.
///
/// # Panics
///
/// Panics if the intervals have no common feasible x (the scanline only
/// produces combinations with a common cutline).
pub fn evaluate(
    region: &LocalRegion,
    combo: &[InsInterval],
    target: &TargetSpec,
    bottom_row_global: i32,
    aspect: f64,
) -> Evaluation {
    evaluate_in(
        region,
        combo,
        target,
        bottom_row_global,
        aspect,
        &mut EvalScratch::default(),
    )
}

/// [`evaluate`] against reusable scratch buffers: the steady-state kernel
/// entry point, allocation-free once the buffers are warm.
pub(crate) fn evaluate_in(
    region: &LocalRegion,
    combo: &[InsInterval],
    target: &TargetSpec,
    bottom_row_global: i32,
    aspect: f64,
    scratch: &mut EvalScratch,
) -> Evaluation {
    let range = feasible_range(combo);
    let EvalScratch { a, b, .. } = scratch;
    a.clear();
    b.clear();
    for iv in combo {
        if let Some(ci) = iv.left {
            let i = ci as usize;
            a.push(i64::from(region.cells.x[i]) + i64::from(region.cells.w[i]));
        }
        if let Some(ci) = iv.right {
            b.push(i64::from(region.cells.x[ci as usize]) - i64::from(target.w));
        }
    }
    a.push(i64::from(target.x));
    b.push(i64::from(target.x));
    let (x, fx) = minimize_hinges(a, b, i64::from(range.lo), i64::from(range.hi));
    Evaluation {
        x: x as i32,
        cost: fx as f64 + vertical_cost(target, bottom_row_global, aspect),
    }
}

/// Scores an insertion point exactly: every local cell's critical position
/// is derived by chain propagation, so the returned cost equals the total
/// displacement [`crate::realize`] will produce (plus the target's own
/// displacement).
///
/// # Panics
///
/// Panics if the intervals have no common feasible x.
pub fn evaluate_exact(
    region: &LocalRegion,
    combo: &[InsInterval],
    target: &TargetSpec,
    bottom_row_global: i32,
    aspect: f64,
) -> Evaluation {
    evaluate_exact_in(
        region,
        combo,
        target,
        bottom_row_global,
        aspect,
        &mut EvalScratch::default(),
    )
}

/// [`evaluate_exact`] against reusable scratch buffers.
pub(crate) fn evaluate_exact_in(
    region: &LocalRegion,
    combo: &[InsInterval],
    target: &TargetSpec,
    bottom_row_global: i32,
    aspect: f64,
    scratch: &mut EvalScratch,
) -> Evaluation {
    let range = feasible_range(combo);
    exact_criticals_in(region, combo, target.w, scratch);
    let EvalScratch { a, b, .. } = scratch;
    a.push(i64::from(target.x));
    b.push(i64::from(target.x));
    let (x, fx) = minimize_hinges(a, b, i64::from(range.lo), i64::from(range.hi));
    Evaluation {
        x: x as i32,
        cost: fx as f64 + vertical_cost(target, bottom_row_global, aspect),
    }
}

/// Critical positions (`x^a` of left-side cells, `x^b` of right-side cells)
/// of every local cell that any target position in the gap could displace.
/// Convenience wrapper over [`exact_criticals_in`] for tests.
#[cfg(test)]
pub(crate) fn exact_criticals(
    region: &LocalRegion,
    combo: &[InsInterval],
    target_w: i32,
) -> (Vec<i64>, Vec<i64>) {
    let mut scratch = EvalScratch::default();
    exact_criticals_in(region, combo, target_w, &mut scratch);
    (scratch.a, scratch.b)
}

/// Fills `scratch.a`/`scratch.b` with the critical positions of every local
/// cell that any target position in the gap could displace.
pub(crate) fn exact_criticals_in(
    region: &LocalRegion,
    combo: &[InsInterval],
    target_w: i32,
    scratch: &mut EvalScratch,
) {
    let n = region.cells.len();
    let EvalScratch {
        a: a_vals,
        b: b_vals,
        in_left,
        in_right,
        stack,
        xa,
        xb,
    } = scratch;
    a_vals.clear();
    b_vals.clear();
    stack.clear();
    // Left side ------------------------------------------------------------
    in_left.clear();
    in_left.resize(n, false);
    for iv in combo {
        if let Some(ci) = iv.left {
            if !in_left[ci as usize] {
                in_left[ci as usize] = true;
                stack.push(ci);
            }
        }
    }
    while let Some(ci) = stack.pop() {
        let (y, h) = (region.cells.y[ci as usize], region.cells.h[ci as usize]);
        for row in y..y + h {
            let lr = (row - region.bottom_row) as usize;
            if let Some(p) = region.left_neighbor_of(ci, lr) {
                if !in_left[p as usize] {
                    in_left[p as usize] = true;
                    stack.push(p);
                }
            }
        }
    }
    // Cells are x-sorted; process the left side right-to-left so pushed
    // right neighbors are resolved first.
    xa.clear();
    xa.resize(n, i64::MIN);
    for ci in (0..n as u32).rev() {
        if !in_left[ci as usize] {
            continue;
        }
        let (y, h) = (region.cells.y[ci as usize], region.cells.h[ci as usize]);
        let mut shift = i64::MIN; // max over contributors of (x^a_r − x_r)
        for row in y..y + h {
            let lr = (row - region.bottom_row) as usize;
            // Gap adjacency: this row is a target row whose chosen interval
            // has this cell on its left.
            if combo.iter().any(|iv| iv.row == lr && iv.left == Some(ci)) {
                shift = shift.max(0);
            }
            if let Some(r) = region.right_neighbor_of(ci, lr) {
                if in_left[r as usize] && xa[r as usize] != i64::MIN {
                    shift = shift.max(xa[r as usize] - i64::from(region.cells.x[r as usize]));
                }
            }
        }
        debug_assert!(shift != i64::MIN, "left-side cell without contributor");
        let v =
            i64::from(region.cells.x[ci as usize]) + i64::from(region.cells.w[ci as usize]) + shift;
        xa[ci as usize] = v;
        a_vals.push(v);
    }
    // Right side -----------------------------------------------------------
    in_right.clear();
    in_right.resize(n, false);
    for iv in combo {
        if let Some(ci) = iv.right {
            if !in_right[ci as usize] {
                in_right[ci as usize] = true;
                stack.push(ci);
            }
        }
    }
    while let Some(ci) = stack.pop() {
        let (y, h) = (region.cells.y[ci as usize], region.cells.h[ci as usize]);
        for row in y..y + h {
            let lr = (row - region.bottom_row) as usize;
            if let Some(p) = region.right_neighbor_of(ci, lr) {
                if !in_right[p as usize] {
                    in_right[p as usize] = true;
                    stack.push(p);
                }
            }
        }
    }
    xb.clear();
    xb.resize(n, i64::MAX);
    for ci in 0..n as u32 {
        if !in_right[ci as usize] {
            continue;
        }
        let (cx, y, h) = (
            i64::from(region.cells.x[ci as usize]),
            region.cells.y[ci as usize],
            region.cells.h[ci as usize],
        );
        let mut bound = i64::MAX;
        for row in y..y + h {
            let lr = (row - region.bottom_row) as usize;
            if combo.iter().any(|iv| iv.row == lr && iv.right == Some(ci)) {
                bound = bound.min(cx - i64::from(target_w));
            }
            if let Some(l) = region.left_neighbor_of(ci, lr) {
                if in_right[l as usize] && xb[l as usize] != i64::MAX {
                    let li = l as usize;
                    // Slack between l and this cell delays the push.
                    let slack = cx - i64::from(region.cells.x[li]) - i64::from(region.cells.w[li]);
                    bound = bound.min(xb[l as usize] + slack);
                }
            }
        }
        debug_assert!(bound != i64::MAX, "right-side cell without contributor");
        xb[ci as usize] = bound;
        b_vals.push(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_db::{CellId, Design, DesignBuilder, PlacementState};
    use mrl_geom::{SitePoint, SiteRect};

    fn region_for(
        rows: i32,
        width: i32,
        cells: &[(i32, i32, i32, i32)],
    ) -> (LocalRegion, Vec<CellId>, Design) {
        let mut b = DesignBuilder::new(rows, width);
        let ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h, ..))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let design = b.finish().unwrap();
        let mut state = PlacementState::new(&design);
        for (&id, &(_, _, x, y)) in ids.iter().zip(cells) {
            state.place(&design, id, SitePoint::new(x, y)).unwrap();
        }
        let region = LocalRegion::extract(&design, &state, SiteRect::new(0, 0, width, rows));
        (region, ids, design)
    }

    fn target(w: i32, h: i32, x: i32, y: i32) -> TargetSpec {
        TargetSpec {
            w,
            h,
            x,
            y,
            rail: PowerRail::Vdd,
        }
    }

    #[test]
    fn minimize_hinges_median_behaviour() {
        // Pure target V: min at the target position.
        let (x, f) = minimize_hinges(&mut [7], &mut [7], 0, 20);
        assert_eq!((x, f), (7, 0));
        // Clamped by the range.
        let (x, f) = minimize_hinges(&mut [7], &mut [7], 0, 5);
        assert_eq!((x, f), (5, 2));
        let (x, f) = minimize_hinges(&mut [7], &mut [7], 9, 20);
        assert_eq!((x, f), (9, 2));
    }

    #[test]
    fn minimize_hinges_balances_sides() {
        // One left cell wants x >= 10 (a=10); target wants 4.
        // f(x) = max(0,10-x) + |x-4| is flat (=6) on [4,10].
        let (x, f) = minimize_hinges(&mut [10, 4], &mut [4], 0, 20);
        assert_eq!(f, 6);
        assert!((4..=10).contains(&x));
    }

    #[test]
    fn minimize_hinges_empty_inputs() {
        let (x, f) = minimize_hinges(&mut [], &mut [], 3, 9);
        assert_eq!((x, f), (3, 0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn minimize_hinges_rejects_empty_range() {
        minimize_hinges(&mut [1], &mut [1], 5, 4);
    }

    #[test]
    fn figure9_like_single_row_eval() {
        // Row [0,12): c(w2)@2, d(w2)@6, e(w2)@8; insert t(w2) between c and d
        // with desired x = 5: no cell needs to move.
        let (region, ids, design) = region_for(1, 12, &[(2, 1, 2, 0), (2, 1, 6, 0), (2, 1, 8, 0)]);
        let ivs = region.insertion_intervals(2);
        let c = region.local_index_of(ids[0]).unwrap();
        let d = region.local_index_of(ids[1]).unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.left == Some(c) && iv.right == Some(d))
            .unwrap();
        let aspect = design.grid().aspect();
        let ev = evaluate(&region, &[*iv], &target(2, 1, 4, 0), 0, aspect);
        assert_eq!(ev.x, 4);
        assert_eq!(ev.cost, 0.0);
        // Desired x = 7 overlaps d: optimum shares displacement.
        let ev = evaluate(&region, &[*iv], &target(2, 1, 7, 0), 0, aspect);
        // f(x) = max(0, 4-x) + max(0, x-4) + |x-7|; min on [4..] at x=4: 3
        // (d pushed 0, target displaced 3) — but pushing d (b=4) while
        // placing at 5 costs 1+2 = 3 too; either is optimal.
        assert_eq!(ev.cost, 3.0);
    }

    #[test]
    fn vertical_cost_scales_with_aspect() {
        let (region, _, design) = region_for(2, 12, &[]);
        let ivs = region.insertion_intervals(2);
        let iv0 = ivs.iter().find(|iv| iv.row == 0).unwrap();
        let iv1 = ivs.iter().find(|iv| iv.row == 1).unwrap();
        let aspect = design.grid().aspect();
        let t = target(2, 1, 4, 0);
        let on_row0 = evaluate(&region, &[*iv0], &t, 0, aspect);
        let on_row1 = evaluate(&region, &[*iv1], &t, 1, aspect);
        assert_eq!(on_row0.cost, 0.0);
        assert!((on_row1.cost - aspect).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_approximate_when_no_chains() {
        let (region, ids, design) = region_for(1, 20, &[(2, 1, 2, 0), (2, 1, 12, 0)]);
        let ivs = region.insertion_intervals(3);
        let c = region.local_index_of(ids[0]).unwrap();
        let d = region.local_index_of(ids[1]).unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.left == Some(c) && iv.right == Some(d))
            .unwrap();
        let aspect = design.grid().aspect();
        let t = target(3, 1, 8, 0);
        let approx = evaluate(&region, &[*iv], &t, 0, aspect);
        let exact = evaluate_exact(&region, &[*iv], &t, 0, aspect);
        assert_eq!(approx, exact);
    }

    #[test]
    fn exact_sees_chain_pushes_approx_misses() {
        // Row [0,10): a(w3)@0, b(w3)@3 packed; inserting t(w3) right of b
        // at x=3 must push b AND a in the exact model... a is already
        // leftmost, so use gap (b, R): interval [xL_b + 3, 10-3] = [6, 7].
        // Desired x = 3 (deep in b): pushing is impossible (a, b leftmost),
        // so cost is pure target displacement — both models agree here.
        // Instead check the chain on the right: a(w3)@4, b(w3)@7 against
        // right wall at 10; insert t(w3) in gap (L, a): range [0, xR_a-3] =
        // [0, 1]. At x=1, a must shift to 4 (no move), chain fine; desired
        // x=2 -> clamped 1.
        let (region, ids, design) = region_for(1, 10, &[(3, 1, 4, 0), (3, 1, 7, 0)]);
        let ivs = region.insertion_intervals(3);
        let a = region.local_index_of(ids[0]).unwrap();
        let iv = ivs.iter().find(|iv| iv.right == Some(a)).unwrap();
        let aspect = design.grid().aspect();
        let t = target(3, 1, 2, 0);
        let approx = evaluate(&region, &[*iv], &t, 0, aspect);
        let exact = evaluate_exact(&region, &[*iv], &t, 0, aspect);
        // Exact: placing t at x means a sits at >= x+3; a's critical b = 1,
        // and b's critical b = 4 via chain (slack 0): at x=1 nothing moves,
        // target pays |1-2| = 1. Approx only sees a, same optimum here.
        assert_eq!(exact.x, 1);
        assert_eq!(exact.cost, 1.0);
        // At x = 1 the approx model also pays 1; models agree on optimum...
        assert_eq!(approx.x, 1);
        // ...but differ when forced right: compare full costs at the other
        // end of the range by shifting the desired position.
        let t2 = target(3, 1, 1, 0);
        let exact2 = evaluate_exact(&region, &[*iv], &t2, 0, aspect);
        assert_eq!(exact2.cost, 0.0);
    }

    #[test]
    fn exact_chain_cost_counts_every_pushed_cell() {
        // Row [0,12): a(w2)@6, b(w2)@8, c(w2)@10 packed against the right
        // wall... xR: c->10, b->8, a->6 (no slack anywhere).
        // Insert t(w2) in gap (L, a): range [0, xR_a - 2] = [0, 4].
        // Desired x = 6 -> clamped to 4? t at 4 doesn't push a (a at 6).
        // Desired deep: the interval caps x at 4 so chains never engage
        // here; engage them via gap (a, b) instead: range [xL_a+2, xR_b-2]
        // = [2, 6]... with a leftmost 0: [2, 6]. t at 6: b,c not pushed
        // (b critical = 8-2 = 6). t at 6 exactly: no push. Desired 7 ->
        // clamp 6, cost 1. All consistent; now check criticals directly.
        let (region, ids, _design) =
            region_for(1, 12, &[(2, 1, 6, 0), (2, 1, 8, 0), (2, 1, 10, 0)]);
        let ivs = region.insertion_intervals(2);
        let a = region.local_index_of(ids[0]).unwrap();
        let b = region.local_index_of(ids[1]).unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.left == Some(a) && iv.right == Some(b))
            .unwrap();
        let (av, bv) = exact_criticals(&region, &[*iv], 2);
        // Left side: only a, critical 6 + 2 = 8.
        assert_eq!(av, vec![8]);
        // Right side: b critical 8-2 = 6; c critical via chain = 6 + 0
        // slack... c: xb = xb_b + slack(b,c) = 6 + (10-8-2) = 6.
        let mut bs = bv.clone();
        bs.sort_unstable();
        assert_eq!(bs, vec![6, 6]);
    }

    #[test]
    fn exact_multi_row_coupling_propagates_across_rows() {
        // rows 0-1, width 12:
        // row0: a(w2)@4, m(2x2)@8
        // row1: m, s(w2)@10
        // Insert t(w2,h1) in row 0 gap (a, m): pushing m right also pushes
        // s (row 1).
        let (region, ids, _design) =
            region_for(2, 12, &[(2, 1, 4, 0), (2, 2, 8, 0), (2, 1, 10, 1)]);
        let ivs = region.insertion_intervals(2);
        let a = region.local_index_of(ids[0]).unwrap();
        let m = region.local_index_of(ids[1]).unwrap();
        let iv = ivs
            .iter()
            .find(|iv| iv.left == Some(a) && iv.right == Some(m))
            .unwrap();
        let (_, bv) = exact_criticals(&region, &[*iv], 2);
        // m: xb = 8 - 2 = 6; s: xb = xb_m + slack(m, s on row 1) = 6 + 0 = 6.
        let mut bs = bv.clone();
        bs.sort_unstable();
        assert_eq!(bs, vec![6, 6]);
    }
}
