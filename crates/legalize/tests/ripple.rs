//! Property tests for the tier-1 ripple escalation (ISSUE 8 satellite):
//! an accepted chain must leave the design legal and within its
//! displacement budget; a rejected chain must leave the placement state
//! observably identical to the pre-attempt state (the rollback oracle —
//! compared against a full clone taken before the attempt).

use mrl_db::{CellId, Design, PlacementState, SegId};
use mrl_geom::SitePoint;
use mrl_legalize::{
    EscalationConfig, LegalizeStats, Legalizer, LegalizerConfig, NoopSink, ScratchArena,
};
use mrl_metrics::{check_legal, RailCheck};
use mrl_synth::{generate_witness, WitnessConfig};
use proptest::prelude::*;

/// Every externally observable facet of a `PlacementState`: per-cell
/// positions plus the per-segment ordered cell lists, occupied extents,
/// and free gaps. Two states with equal snapshots are interchangeable for
/// every query the legalizer can make.
type SegSnapshot = (Vec<CellId>, Vec<(i32, i32)>, Vec<(i32, i32)>);

#[derive(Debug, PartialEq, Eq)]
struct Snapshot {
    positions: Vec<Option<SitePoint>>,
    segments: Vec<SegSnapshot>,
}

fn snapshot(design: &Design, state: &PlacementState) -> Snapshot {
    let num_segs = design.floorplan().segments().len();
    Snapshot {
        positions: (0..design.num_cells())
            .map(|i| state.position(CellId::from_usize(i)))
            .collect(),
        segments: (0..num_segs)
            .map(|i| {
                let seg = SegId::from_usize(i);
                (
                    state.segment_cells(seg).to_vec(),
                    state.segment_extents(seg).to_vec(),
                    state.free_gaps(seg).to_vec(),
                )
            })
            .collect(),
    }
}

/// Builds a dense witness design with every cell placed at its witness
/// position except the target (the largest-area cell, most likely to need
/// a chain), which is left unplaced. To force genuine ripple chains, a
/// squatter cell is relocated into the target's vacated slot when one
/// fits there legally — the target's natural landing is then occupied and
/// only displacing the squatter (or its neighbours) can free it.
fn dense_case(seed: u32, cells: usize) -> (Design, PlacementState, CellId) {
    let wcfg = WitnessConfig::new(u64::from(seed))
        .with_cells(cells)
        .with_utilization(0.9)
        .with_shift(4.0, 1.5);
    let witness = generate_witness(&wcfg).expect("witness generation");
    let design = witness.design;
    let (target, hole) = witness
        .legal
        .iter()
        .copied()
        .max_by_key(|&(c, _)| (design.cell(c).area(), c.index()))
        .expect("non-empty witness");
    let mut state = PlacementState::new(&design);
    for &(c, p) in &witness.legal {
        if c != target {
            state.place(&design, c, p).expect("witness is legal");
        }
    }
    for &(c, _) in &witness.legal {
        if c == target {
            continue;
        }
        let old = state.remove(&design, c).expect("cell was placed");
        if state.place(&design, c, hole).is_ok() {
            break;
        }
        state.place(&design, c, old).expect("restoring is legal");
    }
    (design, state, target)
}

fn ripple_only(max_disp: i64) -> LegalizerConfig {
    LegalizerConfig::paper().with_escalation(
        EscalationConfig::default()
            .with_tiers(true, false, false)
            .with_ripple_max_disp(max_disp),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An accepted chain leaves the design independently legal and keeps
    /// the displacement it inflicted on other cells within the configured
    /// budget; a rejected chain restores the exact pre-attempt state.
    #[test]
    fn ripple_chain_is_legal_bounded_and_transactional(
        seed in 0u32..500,
        cells in 16usize..48,
        budget_idx in 0usize..4,
    ) {
        let max_disp = [0i64, 4, 12, 70][budget_idx];
        let (design, mut state, target) = dense_case(seed, cells);
        let before = snapshot(&design, &state);
        let before_pos: Vec<Option<SitePoint>> = before.positions.clone();
        let lg = Legalizer::new(ripple_only(max_disp));
        let mut stats = LegalizeStats::default();
        let mut arena = ScratchArena::new();
        let placed = lg
            .escalate_cell(
                &design, &mut state, target, &mut stats, &mut arena, &mut NoopSink, 1,
            )
            .expect("no db errors");
        prop_assert_eq!(placed, state.is_placed(target));
        if placed {
            // Legality by the independent checker (shares no bookkeeping
            // with the legalizer).
            let report = check_legal(&design, &state, RailCheck::Enforce);
            prop_assert!(report.is_ok(), "illegal after accepted chain: {:?}", report.err());
            // Displacement budget over every *other* cell.
            let mut induced = 0i64;
            for (i, was) in before_pos.iter().enumerate() {
                let c = CellId::from_usize(i);
                if c == target {
                    continue;
                }
                if let (Some(was), Some(now)) = (was, state.position(c)) {
                    induced +=
                        i64::from((now.x - was.x).abs()) + i64::from((now.y - was.y).abs());
                }
                // Ripple never unplaces a previously placed cell.
                prop_assert_eq!(was.is_some(), state.position(c).is_some());
            }
            prop_assert!(
                induced <= max_disp,
                "chain displaced {} > budget {}",
                induced,
                max_disp
            );
            prop_assert_eq!(stats.escalation.ripple_placed, 1);
        } else {
            // Rollback oracle: the state must be observably identical to
            // the clone taken before the attempt.
            let after = snapshot(&design, &state);
            prop_assert_eq!(&before, &after);
            prop_assert_eq!(
                stats.escalation.ripple_chains,
                stats.escalation.ripple_rolled_back
            );
        }
    }

    /// With a zero displacement budget a chain can only commit if it
    /// displaced nothing; on these packed cases that never happens, so
    /// every attempt must roll back perfectly.
    #[test]
    fn zero_budget_always_rolls_back_cleanly(seed in 0u32..200, cells in 16usize..40) {
        let (design, mut state, target) = dense_case(seed, cells);
        let before = snapshot(&design, &state);
        let lg = Legalizer::new(ripple_only(0));
        let mut stats = LegalizeStats::default();
        let mut arena = ScratchArena::new();
        let placed = lg
            .escalate_cell(
                &design, &mut state, target, &mut stats, &mut arena, &mut NoopSink, 1,
            )
            .expect("no db errors");
        if !placed {
            let after = snapshot(&design, &state);
            prop_assert_eq!(&before, &after);
        }
    }
}
