//! Placement rows and segments.
//!
//! A *row* is defined by the floorplan; a *segment* (Section 2.1.2 of the
//! paper) is a maximal run of placement sites on a row not blocked by macros
//! or placement blockages. All legalization bookkeeping is per segment.

use crate::DbError;
use mrl_geom::{PowerRail, RailParity, SiteRect};
use std::ops::Range;

/// One placement row: height is always one site height; rows are indexed by
/// their y coordinate (row `i` spans `y ∈ [i, i+1)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Row {
    /// Leftmost site x of the row.
    pub x: i32,
    /// Row width in sites.
    pub width: i32,
}

impl Row {
    /// Creates a row starting at site `x` with `width` sites.
    ///
    /// # Panics
    ///
    /// Panics if `width` is negative.
    pub fn new(x: i32, width: i32) -> Self {
        assert!(width >= 0, "row width must be non-negative");
        Self { x, width }
    }

    /// Exclusive right end of the row.
    pub const fn right(&self) -> i32 {
        self.x + self.width
    }
}

/// A maximal unblocked run of sites on one row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Row index (= y coordinate of the segment's bottom edge).
    pub row: i32,
    /// Leftmost site x of the segment.
    pub x: i32,
    /// Segment width in sites.
    pub width: i32,
}

impl Segment {
    /// Exclusive right end of the segment.
    pub const fn right(&self) -> i32 {
        self.x + self.width
    }

    /// True if the x-range `[x0, x1)` lies inside the segment.
    pub const fn contains_span(&self, x0: i32, x1: i32) -> bool {
        self.x <= x0 && x1 <= self.right()
    }

    /// The segment's footprint as a rectangle.
    pub const fn rect(&self) -> SiteRect {
        SiteRect {
            x: self.x,
            y: self.row,
            w: self.width,
            h: 1,
        }
    }
}

/// The floorplan: rows, static blockages, and the derived segment table.
///
/// Segments are derived once at construction from the rows minus the union
/// of fixed-cell and blockage footprints, then never change: fixed objects
/// do not move during legalization.
///
/// # Examples
///
/// ```
/// use mrl_db::Floorplan;
/// use mrl_geom::SiteRect;
///
/// // 3 rows of 20 sites with a 4-site blockage splitting row 1.
/// let fp = Floorplan::uniform(3, 20, &[SiteRect::new(8, 1, 4, 1)])?;
/// assert_eq!(fp.segments_in_row(0).len(), 1);
/// assert_eq!(fp.segments_in_row(1).len(), 2);
/// # Ok::<(), mrl_db::DbError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Floorplan {
    rows: Vec<Row>,
    blockages: Vec<SiteRect>,
    parity: RailParity,
    segments: Vec<Segment>,
    /// Per row, the range of indices into `segments`.
    row_ranges: Vec<Range<u32>>,
}

impl Floorplan {
    /// Builds a floorplan from rows (row `i` is at y = `i`) and blocked
    /// rectangles, using the default rail parity (row 0 bottom = VDD).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Invalid`] if a blockage lies outside every row it
    /// vertically intersects would allow — blockages may extend past row
    /// boundaries, but a floorplan with zero rows is rejected.
    pub fn new(rows: Vec<Row>, blockages: Vec<SiteRect>) -> Result<Self, DbError> {
        Self::with_parity(rows, blockages, RailParity::new(PowerRail::Vdd))
    }

    /// Like [`Floorplan::new`] with an explicit rail parity scheme.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Invalid`] if `rows` is empty.
    pub fn with_parity(
        rows: Vec<Row>,
        blockages: Vec<SiteRect>,
        parity: RailParity,
    ) -> Result<Self, DbError> {
        if rows.is_empty() {
            return Err(DbError::Invalid("floorplan has no rows".into()));
        }
        let (segments, row_ranges) = derive_segments(&rows, &blockages);
        Ok(Self {
            rows,
            blockages,
            parity,
            segments,
            row_ranges,
        })
    }

    /// Convenience constructor: `num_rows` identical rows of `row_width`
    /// sites starting at x = 0.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Invalid`] if `num_rows` is zero.
    pub fn uniform(num_rows: i32, row_width: i32, blockages: &[SiteRect]) -> Result<Self, DbError> {
        let rows = (0..num_rows).map(|_| Row::new(0, row_width)).collect();
        Self::new(rows, blockages.to_vec())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> i32 {
        self.rows.len() as i32
    }

    /// The rows, indexed by row index.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The static blockages the segments were derived from.
    pub fn blockages(&self) -> &[SiteRect] {
        &self.blockages
    }

    /// The rail parity scheme.
    pub const fn parity(&self) -> RailParity {
        self.parity
    }

    /// All segments, grouped by row in ascending (row, x) order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segments of one row in ascending x order (empty slice if `row` is out
    /// of range).
    pub fn segments_in_row(&self, row: i32) -> &[Segment] {
        match usize::try_from(row)
            .ok()
            .and_then(|r| self.row_ranges.get(r))
        {
            Some(range) => &self.segments[range.start as usize..range.end as usize],
            None => &[],
        }
    }

    /// Index into [`Floorplan::segments`] of the first segment of `row`.
    pub fn row_segment_base(&self, row: i32) -> Option<usize> {
        usize::try_from(row)
            .ok()
            .and_then(|r| self.row_ranges.get(r))
            .map(|range| range.start as usize)
    }

    /// The segment of `row` whose sites include x (i.e. `x ∈ [seg.x,
    /// seg.right())`), if any.
    pub fn segment_at(&self, row: i32, x: i32) -> Option<&Segment> {
        let segs = self.segments_in_row(row);
        let idx = segs.partition_point(|s| s.right() <= x);
        segs.get(idx).filter(|s| s.x <= x)
    }

    /// The segment of `row` that fully contains the span `[x0, x1)`, if any.
    pub fn segment_containing_span(&self, row: i32, x0: i32, x1: i32) -> Option<&Segment> {
        self.segment_at(row, x0).filter(|s| s.contains_span(x0, x1))
    }

    /// Whether a cell of the given height and native rail may have its
    /// bottom edge on `row`.
    pub fn rail_compatible(&self, rail: PowerRail, height: i32, row: i32) -> bool {
        self.parity.cell_fits_row(rail, height, row)
    }

    /// Bounding box of all rows.
    pub fn bounds(&self) -> SiteRect {
        let x0 = self.rows.iter().map(|r| r.x).min().unwrap_or(0);
        let x1 = self.rows.iter().map(|r| r.right()).max().unwrap_or(0);
        SiteRect::new(x0, 0, x1 - x0, self.num_rows())
    }

    /// Total unblocked placement capacity in sites.
    pub fn capacity(&self) -> i64 {
        self.segments.iter().map(|s| i64::from(s.width)).sum()
    }
}

/// Splits each row at blockage footprints into maximal free runs.
fn derive_segments(rows: &[Row], blockages: &[SiteRect]) -> (Vec<Segment>, Vec<Range<u32>>) {
    let mut segments = Vec::new();
    let mut row_ranges = Vec::with_capacity(rows.len());
    for (row_idx, row) in rows.iter().enumerate() {
        let row_idx = row_idx as i32;
        let start = segments.len() as u32;
        // Collect blocked x-intervals intersecting this row.
        let mut blocked: Vec<(i32, i32)> = blockages
            .iter()
            .filter(|b| b.y < row_idx + 1 && row_idx < b.top() && b.w > 0)
            .map(|b| (b.x.max(row.x), b.right().min(row.right())))
            .filter(|(a, b)| a < b)
            .collect();
        blocked.sort_unstable();
        let mut cursor = row.x;
        for (bx0, bx1) in blocked {
            if bx0 > cursor {
                segments.push(Segment {
                    row: row_idx,
                    x: cursor,
                    width: bx0 - cursor,
                });
            }
            cursor = cursor.max(bx1);
        }
        if cursor < row.right() {
            segments.push(Segment {
                row: row_idx,
                x: cursor,
                width: row.right() - cursor,
            });
        }
        row_ranges.push(start..segments.len() as u32);
    }
    (segments, row_ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unblocked_row_is_one_segment() {
        let fp = Floorplan::uniform(2, 30, &[]).unwrap();
        assert_eq!(fp.segments().len(), 2);
        assert_eq!(
            fp.segments_in_row(0),
            &[Segment {
                row: 0,
                x: 0,
                width: 30
            }]
        );
    }

    #[test]
    fn blockage_splits_row() {
        let fp = Floorplan::uniform(1, 20, &[SiteRect::new(5, 0, 3, 1)]).unwrap();
        let segs = fp.segments_in_row(0);
        assert_eq!(segs.len(), 2);
        assert_eq!(
            segs[0],
            Segment {
                row: 0,
                x: 0,
                width: 5
            }
        );
        assert_eq!(
            segs[1],
            Segment {
                row: 0,
                x: 8,
                width: 12
            }
        );
    }

    #[test]
    fn multi_row_blockage_splits_every_spanned_row() {
        let fp = Floorplan::uniform(4, 10, &[SiteRect::new(0, 1, 4, 2)]).unwrap();
        assert_eq!(fp.segments_in_row(0).len(), 1);
        assert_eq!(
            fp.segments_in_row(1),
            &[Segment {
                row: 1,
                x: 4,
                width: 6
            }]
        );
        assert_eq!(
            fp.segments_in_row(2),
            &[Segment {
                row: 2,
                x: 4,
                width: 6
            }]
        );
        assert_eq!(fp.segments_in_row(3).len(), 1);
    }

    #[test]
    fn blockage_at_row_edge_leaves_single_segment() {
        let fp = Floorplan::uniform(1, 10, &[SiteRect::new(0, 0, 3, 1)]).unwrap();
        assert_eq!(
            fp.segments_in_row(0),
            &[Segment {
                row: 0,
                x: 3,
                width: 7
            }]
        );
    }

    #[test]
    fn fully_blocked_row_has_no_segments() {
        let fp = Floorplan::uniform(1, 10, &[SiteRect::new(0, 0, 10, 1)]).unwrap();
        assert!(fp.segments_in_row(0).is_empty());
    }

    #[test]
    fn overlapping_blockages_merge() {
        let fp = Floorplan::uniform(
            1,
            20,
            &[SiteRect::new(2, 0, 5, 1), SiteRect::new(4, 0, 6, 1)],
        )
        .unwrap();
        let segs = fp.segments_in_row(0);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].width, 2);
        assert_eq!(segs[1].x, 10);
    }

    #[test]
    fn segment_at_finds_containing_segment() {
        let fp = Floorplan::uniform(1, 20, &[SiteRect::new(5, 0, 3, 1)]).unwrap();
        assert_eq!(fp.segment_at(0, 0).unwrap().x, 0);
        assert_eq!(fp.segment_at(0, 4).unwrap().x, 0);
        assert!(fp.segment_at(0, 5).is_none());
        assert!(fp.segment_at(0, 7).is_none());
        assert_eq!(fp.segment_at(0, 8).unwrap().x, 8);
        assert!(fp.segment_at(0, 20).is_none());
        assert!(fp.segment_at(1, 0).is_none());
        assert!(fp.segment_at(-1, 0).is_none());
    }

    #[test]
    fn segment_containing_span_requires_full_containment() {
        let fp = Floorplan::uniform(1, 20, &[SiteRect::new(5, 0, 3, 1)]).unwrap();
        assert!(fp.segment_containing_span(0, 1, 5).is_some());
        assert!(fp.segment_containing_span(0, 3, 6).is_none());
        assert!(fp.segment_containing_span(0, 8, 20).is_some());
    }

    #[test]
    fn capacity_excludes_blockages() {
        let fp = Floorplan::uniform(2, 10, &[SiteRect::new(0, 0, 4, 1)]).unwrap();
        assert_eq!(fp.capacity(), 16);
    }

    #[test]
    fn bounds_cover_all_rows() {
        let rows = vec![Row::new(2, 10), Row::new(0, 5)];
        let fp = Floorplan::new(rows, vec![]).unwrap();
        assert_eq!(fp.bounds(), SiteRect::new(0, 0, 12, 2));
    }

    #[test]
    fn empty_floorplan_rejected() {
        assert!(matches!(
            Floorplan::uniform(0, 10, &[]),
            Err(DbError::Invalid(_))
        ));
    }

    #[test]
    fn rail_compatibility_delegates_to_parity() {
        let fp = Floorplan::uniform(4, 10, &[]).unwrap();
        assert!(fp.rail_compatible(PowerRail::Vdd, 2, 0));
        assert!(!fp.rail_compatible(PowerRail::Vdd, 2, 1));
        assert!(fp.rail_compatible(PowerRail::Vdd, 1, 1));
    }
}
