//! Placement database for multi-row height standard cell legalization.
//!
//! This crate is the substrate the MLL algorithm (crate `mrl-legalize`)
//! operates on. It models, in site units (see `mrl-geom`):
//!
//! * the **cell library and instances** — movable standard cells of one or
//!   more row heights, fixed macros, and placement blockages ([`Cell`],
//!   [`CellKind`]),
//! * the **netlist** — nets connecting cell pins and fixed I/O pins, with
//!   half-perimeter wirelength ([`Netlist`], [`Net`], [`Pin`]),
//! * the **floorplan** — placement rows and the derived **segments**
//!   (Section 2.1.2 of the paper): maximal runs of placement sites not
//!   blocked by macros or blockages ([`Floorplan`], [`Segment`]),
//! * the **design** — everything above plus the global-placement input
//!   positions ([`Design`], [`DesignBuilder`]),
//! * the **placement state** — current cell positions plus the per-segment
//!   cell lists ordered by x that the paper's algorithms maintain
//!   ([`PlacementState`]).
//!
//! # Examples
//!
//! Build a tiny two-row design and place a cell:
//!
//! ```
//! use mrl_db::{DesignBuilder, PlacementState, CellKind};
//! use mrl_geom::SitePoint;
//!
//! let mut b = DesignBuilder::new(2, 10); // 2 rows of 10 sites
//! let a = b.add_cell("a", 3, 1);
//! let t = b.add_cell("t", 2, 2); // a double-row cell
//! let design = b.finish()?;
//!
//! let mut state = PlacementState::new(&design);
//! state.place(&design, a, SitePoint::new(0, 0))?;
//! state.place(&design, t, SitePoint::new(4, 0))?;
//! assert!(state.is_free(&design, &mrl_geom::SiteRect::new(7, 0, 2, 2)));
//! assert!(!state.is_free(&design, &mrl_geom::SiteRect::new(3, 0, 2, 2)));
//! # Ok::<(), mrl_db::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod csr;
mod design;
mod error;
mod floorplan;
mod ids;
mod net;
mod placement;
mod region;

pub use cell::{Cell, CellKind};
pub use design::{Design, DesignBuilder};
pub use error::DbError;
pub use floorplan::{Floorplan, Row, Segment};
pub use ids::{CellId, NetId, PinId, RegionId, SegId};
pub use net::{Net, Netlist, Pin, PinLocation};
pub use placement::{gap_cross_check_count, DisplaceUndo, IndexLayout, PlacementState};
pub use region::FenceRegion;
