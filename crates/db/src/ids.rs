//! Typed indices into the design's entity tables.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw table index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Creates an id from a `usize` table index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity index exceeds u32"))
            }

            /// The raw table index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a cell instance (movable cell, fixed macro, or blockage).
    CellId,
    "c"
);
id_type!(
    /// Identifier of a net.
    NetId,
    "n"
);
id_type!(
    /// Identifier of a pin.
    PinId,
    "p"
);
id_type!(
    /// Identifier of a segment in the floorplan's flattened segment table.
    SegId,
    "s"
);
id_type!(
    /// Identifier of a fence region.
    RegionId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(CellId::from_usize(42), id);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ids_of_different_kinds_are_distinct_types() {
        // Purely a compile-time property; this test documents the intent.
        let c = CellId::new(1);
        let n = NetId::new(1);
        assert_eq!(c.index(), n.index());
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(CellId::new(3).to_string(), "c3");
        assert_eq!(SegId::new(8).to_string(), "s8");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::new(1) < CellId::new(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn from_usize_overflow_panics() {
        let _ = CellId::from_usize(usize::MAX);
    }
}
