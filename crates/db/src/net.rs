//! Nets, pins, and half-perimeter wirelength.

use crate::{CellId, NetId, PinId};

/// Where a pin sits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PinLocation {
    /// On a cell, at a fractional-site offset from the cell's lower-left
    /// corner (offsets stay fixed under vertical flips for simplicity; pin
    /// offsets are small relative to displacement so this does not affect
    /// any reported metric's shape).
    OnCell {
        /// Owning cell.
        cell: CellId,
        /// Offset from the cell origin, in fractional site widths.
        dx: f64,
        /// Offset from the cell origin, in fractional rows.
        dy: f64,
    },
    /// A fixed terminal (I/O pad) at an absolute position in fractional
    /// site units.
    Fixed {
        /// Absolute x in fractional site widths.
        x: f64,
        /// Absolute y in fractional rows.
        y: f64,
    },
}

/// A pin: one connection point of a net.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pin {
    /// The net this pin belongs to.
    pub net: NetId,
    /// Where the pin sits.
    pub location: PinLocation,
}

/// A net: a set of pins to be connected.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Net {
    name: String,
    pins: Vec<PinId>,
}

impl Net {
    /// Creates an empty net with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pins: Vec::new(),
        }
    }

    /// The net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pins of the net.
    pub fn pins(&self) -> &[PinId] {
        &self.pins
    }

    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// The netlist: nets plus a flat pin table, with per-cell pin indices for
/// fast incremental wirelength queries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Netlist {
    nets: Vec<Net>,
    pins: Vec<Pin>,
    /// For each cell, the pins on it (built lazily by `rebuild_cell_index`).
    cell_pins: Vec<Vec<PinId>>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an empty net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::from_usize(self.nets.len());
        self.nets.push(Net::new(name));
        id
    }

    /// Adds a pin to a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn add_pin(&mut self, net: NetId, location: PinLocation) -> PinId {
        let id = PinId::from_usize(self.pins.len());
        self.pins.push(Pin { net, location });
        self.nets[net.index()].pins.push(id);
        id
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pins.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The pin with the given id.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Rebuilds the cell → pins index for `num_cells` cells. Call after all
    /// pins are added (the [`crate::DesignBuilder`] does this).
    pub fn rebuild_cell_index(&mut self, num_cells: usize) {
        let mut index = vec![Vec::new(); num_cells];
        for (i, pin) in self.pins.iter().enumerate() {
            if let PinLocation::OnCell { cell, .. } = pin.location {
                index[cell.index()].push(PinId::from_usize(i));
            }
        }
        self.cell_pins = index;
    }

    /// Pins on a cell (empty if the index was not rebuilt).
    pub fn pins_of_cell(&self, cell: CellId) -> &[PinId] {
        self.cell_pins
            .get(cell.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Nets touching a cell (deduplicated, order unspecified).
    pub fn nets_of_cell(&self, cell: CellId) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .pins_of_cell(cell)
            .iter()
            .map(|&p| self.pin(p).net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// Half-perimeter wirelength of one net given a pin-position resolver
    /// (fractional site units). Returns 0 for nets with fewer than 2 pins.
    pub fn net_hpwl<F>(&self, net: NetId, mut pin_pos: F) -> f64
    where
        F: FnMut(&Pin) -> (f64, f64),
    {
        let pins = self.net(net).pins();
        if pins.len() < 2 {
            return 0.0;
        }
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &p in pins {
            let (x, y) = pin_pos(self.pin(p));
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (max_x - min_x) + (max_y - min_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver(pin: &Pin) -> (f64, f64) {
        match pin.location {
            PinLocation::Fixed { x, y } => (x, y),
            PinLocation::OnCell { dx, dy, .. } => (dx, dy), // cells "at origin"
        }
    }

    #[test]
    fn add_net_and_pins() {
        let mut nl = Netlist::new();
        let n = nl.add_net("n1");
        nl.add_pin(n, PinLocation::Fixed { x: 0.0, y: 0.0 });
        nl.add_pin(n, PinLocation::Fixed { x: 3.0, y: 4.0 });
        assert_eq!(nl.num_nets(), 1);
        assert_eq!(nl.net(n).degree(), 2);
        assert_eq!(nl.net(n).name(), "n1");
    }

    #[test]
    fn hpwl_is_half_perimeter_of_bbox() {
        let mut nl = Netlist::new();
        let n = nl.add_net("n");
        nl.add_pin(n, PinLocation::Fixed { x: 1.0, y: 1.0 });
        nl.add_pin(n, PinLocation::Fixed { x: 4.0, y: 5.0 });
        nl.add_pin(n, PinLocation::Fixed { x: 2.0, y: 3.0 });
        assert_eq!(nl.net_hpwl(n, resolver), 3.0 + 4.0);
    }

    #[test]
    fn degenerate_nets_have_zero_hpwl() {
        let mut nl = Netlist::new();
        let n0 = nl.add_net("empty");
        let n1 = nl.add_net("single");
        nl.add_pin(n1, PinLocation::Fixed { x: 9.0, y: 9.0 });
        assert_eq!(nl.net_hpwl(n0, resolver), 0.0);
        assert_eq!(nl.net_hpwl(n1, resolver), 0.0);
    }

    #[test]
    fn cell_index_maps_pins_and_nets() {
        let mut nl = Netlist::new();
        let n0 = nl.add_net("a");
        let n1 = nl.add_net("b");
        let c0 = CellId::new(0);
        let c1 = CellId::new(1);
        nl.add_pin(
            n0,
            PinLocation::OnCell {
                cell: c0,
                dx: 0.0,
                dy: 0.0,
            },
        );
        nl.add_pin(
            n1,
            PinLocation::OnCell {
                cell: c0,
                dx: 1.0,
                dy: 0.0,
            },
        );
        nl.add_pin(
            n1,
            PinLocation::OnCell {
                cell: c1,
                dx: 0.0,
                dy: 0.0,
            },
        );
        nl.rebuild_cell_index(2);
        assert_eq!(nl.pins_of_cell(c0).len(), 2);
        assert_eq!(nl.pins_of_cell(c1).len(), 1);
        assert_eq!(nl.nets_of_cell(c0), vec![n0, n1]);
        assert_eq!(nl.nets_of_cell(c1), vec![n1]);
    }

    #[test]
    fn pins_of_cell_without_index_is_empty() {
        let nl = Netlist::new();
        assert!(nl.pins_of_cell(CellId::new(0)).is_empty());
    }
}
