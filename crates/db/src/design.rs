//! The design container: floorplan + cells + netlist + global-placement
//! input.

use crate::{
    Cell, CellId, CellKind, DbError, FenceRegion, Floorplan, NetId, Netlist, PinLocation, RegionId,
    Row,
};
use mrl_geom::{PowerRail, SiteGrid, SiteRect};

/// An immutable legalization problem instance: the floorplan, all cell
/// instances, the netlist, and the (possibly overlapping and off-grid)
/// global-placement input positions.
///
/// Build one with [`DesignBuilder`]. Input positions of movable cells are
/// fractional site coordinates — a global placer is not bound to the site
/// grid; the legalizer's whole job is to snap cells onto it with minimal
/// total displacement.
#[derive(Clone, Debug)]
pub struct Design {
    name: String,
    grid: SiteGrid,
    floorplan: Floorplan,
    cells: Vec<Cell>,
    input_pos: Vec<(f64, f64)>,
    netlist: Netlist,
    regions: Vec<FenceRegion>,
    cell_region: Vec<Option<RegionId>>,
}

impl Design {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The site/micron unit system.
    pub const fn grid(&self) -> SiteGrid {
        self.grid
    }

    /// The floorplan (rows, blockages, segments).
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// All cell instances (movable, fixed, blockage).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Number of cell instances of any kind.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Ids of the movable cells, in table order.
    pub fn movable_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_movable())
            .map(|(i, _)| CellId::from_usize(i))
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.cells.iter().filter(|c| c.is_movable()).count()
    }

    /// The global-placement input position of a cell (fractional site
    /// units, lower-left corner). For fixed cells this is their pre-placed
    /// position.
    pub fn input_position(&self, id: CellId) -> (f64, f64) {
        self.input_pos[id.index()]
    }

    /// The netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// A copy of this design with the movable cells' input positions
    /// replaced — how a global placer hands its result to the legalizer.
    /// Fixed cells keep their original positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is not one entry per cell of the design.
    pub fn with_input_positions(&self, positions: Vec<(f64, f64)>) -> Design {
        assert_eq!(
            positions.len(),
            self.cells.len(),
            "one position per cell required"
        );
        let mut out = self.clone();
        for (i, p) in positions.into_iter().enumerate() {
            if out.cells[i].is_movable() {
                out.input_pos[i] = p;
            }
        }
        out
    }

    /// Replaces one movable cell's input position in place — the ECO
    /// engine's per-edit variant of [`with_input_positions`]
    /// (which clones the whole design).
    ///
    /// # Panics
    ///
    /// Panics if the cell is not movable.
    ///
    /// [`with_input_positions`]: Design::with_input_positions
    pub fn set_input_position(&mut self, cell: CellId, x: f64, y: f64) {
        assert!(
            self.cells[cell.index()].is_movable(),
            "set_input_position on fixed cell {cell}"
        );
        self.input_pos[cell.index()] = (x, y);
    }

    /// Appends a movable cell to a finished design — the ECO *insert*
    /// primitive (buffer insertion, decap fill). The cell joins the end of
    /// the table, so existing [`CellId`]s stay valid; pair with
    /// [`PlacementState::grow`](crate::PlacementState::grow). The new cell
    /// carries no pins and no fence-region membership.
    ///
    /// # Errors
    ///
    /// [`DbError::Invalid`] under the same rules [`DesignBuilder::finish`]
    /// enforces: non-positive dimensions, taller than the floorplan, wider
    /// than every row, or total movable area exceeding capacity.
    pub fn append_movable(
        &mut self,
        name: impl Into<String>,
        width: i32,
        height: i32,
        rail: PowerRail,
        input: (f64, f64),
    ) -> Result<CellId, DbError> {
        let name = name.into();
        if width <= 0 || height <= 0 {
            return Err(DbError::Invalid(format!(
                "cell {name}: dimensions {width}x{height} must be positive"
            )));
        }
        self.check_movable_fits(&name, width, height, i64::from(width) * i64::from(height))?;
        let id = CellId::from_usize(self.cells.len());
        self.cells
            .push(Cell::new(name, width, height, rail, CellKind::Movable));
        self.input_pos.push(input);
        self.cell_region.push(None);
        self.netlist.rebuild_cell_index(self.cells.len());
        Ok(id)
    }

    /// Resizes a movable cell in place — the ECO *resize* primitive (gate
    /// sizing). The cell must be re-legalized afterwards; callers unplace
    /// it first (a placed cell's footprint lives in the occupancy index at
    /// its old width).
    ///
    /// # Errors
    ///
    /// [`DbError::Invalid`] if the cell is fixed, the width is not
    /// positive, wider than every row, or the grown area exceeds capacity.
    pub fn set_cell_width(&mut self, cell: CellId, width: i32) -> Result<(), DbError> {
        let c = &self.cells[cell.index()];
        if !c.is_movable() {
            return Err(DbError::Invalid(format!("cell {} is fixed", c.name())));
        }
        if width <= 0 {
            return Err(DbError::Invalid(format!(
                "cell {}: width {width} must be positive",
                c.name()
            )));
        }
        let name = c.name().to_string();
        let grown = i64::from(width - c.width()) * i64::from(c.height());
        self.check_movable_fits(&name, width, c.height(), grown.max(0))?;
        self.cells[cell.index()].set_width(width);
        Ok(())
    }

    /// Drops cells appended via [`append_movable`] from the end of the
    /// table — the rollback of a rejected ECO insert. Pair with
    /// [`PlacementState::truncate`](crate::PlacementState::truncate).
    ///
    /// # Errors
    ///
    /// [`DbError::Invalid`] if `len` exceeds the current table, or a
    /// dropped cell is fixed or carries pins (only pin-free appended
    /// movables can be retracted without invalidating the netlist).
    ///
    /// [`append_movable`]: Design::append_movable
    pub fn truncate_cells(&mut self, len: usize) -> Result<(), DbError> {
        if len > self.cells.len() {
            return Err(DbError::Invalid(format!(
                "truncate_cells({len}) exceeds table of {}",
                self.cells.len()
            )));
        }
        for i in len..self.cells.len() {
            let id = CellId::from_usize(i);
            if !self.cells[i].is_movable() {
                return Err(DbError::Invalid(format!(
                    "truncate_cells would drop fixed cell {}",
                    self.cells[i].name()
                )));
            }
            if !self.netlist.pins_of_cell(id).is_empty() {
                return Err(DbError::Invalid(format!(
                    "truncate_cells would drop cell {} which carries pins",
                    self.cells[i].name()
                )));
            }
        }
        self.cells.truncate(len);
        self.input_pos.truncate(len);
        self.cell_region.truncate(len);
        self.netlist.rebuild_cell_index(self.cells.len());
        Ok(())
    }

    /// Shared validation for the in-place mutators: a movable cell of the
    /// given dimensions must fit the floorplan, and `extra_area` more
    /// movable area must not overflow capacity.
    fn check_movable_fits(
        &self,
        name: &str,
        width: i32,
        height: i32,
        extra_area: i64,
    ) -> Result<(), DbError> {
        if height > self.floorplan.num_rows() {
            return Err(DbError::Invalid(format!(
                "cell {name} ({height} rows) is taller than the floorplan ({} rows)",
                self.floorplan.num_rows()
            )));
        }
        let max_row_width = self
            .floorplan
            .rows()
            .iter()
            .map(|r| r.width)
            .max()
            .unwrap_or(0);
        if width > max_row_width {
            return Err(DbError::Invalid(format!(
                "cell {name} ({width} sites) is wider than every row"
            )));
        }
        let movable_area: i64 = self
            .cells
            .iter()
            .filter(|c| c.is_movable())
            .map(Cell::area)
            .sum();
        if movable_area + extra_area > self.floorplan.capacity() {
            return Err(DbError::Invalid(format!(
                "movable area {} exceeds placement capacity {}",
                movable_area + extra_area,
                self.floorplan.capacity()
            )));
        }
        Ok(())
    }

    /// The fence regions of the design.
    pub fn regions(&self) -> &[FenceRegion] {
        &self.regions
    }

    /// The fence region with the given id.
    pub fn region(&self, id: RegionId) -> &FenceRegion {
        &self.regions[id.index()]
    }

    /// The fence region a cell is assigned to, if any.
    pub fn region_of(&self, cell: CellId) -> Option<RegionId> {
        self.cell_region[cell.index()]
    }

    /// True if placing a cell of `region` membership at `rect` satisfies
    /// the fence constraints: members fully inside their region, everyone
    /// else fully outside every region.
    pub fn fence_allows(&self, region: Option<RegionId>, rect: &mrl_geom::SiteRect) -> bool {
        match region {
            Some(r) => self.regions[r.index()].covers(rect),
            None => self.regions.iter().all(|fr| !fr.overlaps(rect)),
        }
    }

    /// Movable cell area divided by unblocked placement capacity.
    pub fn density(&self) -> f64 {
        let area: i64 = self
            .cells
            .iter()
            .filter(|c| c.is_movable())
            .map(Cell::area)
            .sum();
        let cap = self.floorplan.capacity();
        if cap == 0 {
            f64::INFINITY
        } else {
            area as f64 / cap as f64
        }
    }

    /// Half-perimeter wirelength of the whole netlist in microns, given
    /// per-cell positions in fractional site units. `pos` must yield the
    /// lower-left corner of every cell that carries pins; unplaced cells may
    /// fall back to their input positions — callers choose.
    pub fn hpwl_um<F>(&self, mut pos: F) -> f64
    where
        F: FnMut(CellId) -> (f64, f64),
    {
        let grid = self.grid;
        let mut total = 0.0;
        for net_idx in 0..self.netlist.num_nets() {
            let net = NetId::from_usize(net_idx);
            // HPWL is separable in x and y, so convert each axis to microns.
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            let pins = self.netlist.net(net).pins();
            if pins.len() < 2 {
                continue;
            }
            for &p in pins {
                let (x, y) = match self.netlist.pin(p).location {
                    PinLocation::Fixed { x, y } => (x, y),
                    PinLocation::OnCell { cell, dx, dy } => {
                        let (cx, cy) = pos(cell);
                        (cx + dx, cy + dy)
                    }
                };
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            total +=
                (max_x - min_x) * grid.site_width_um() + (max_y - min_y) * grid.row_height_um();
        }
        total
    }
}

/// Incremental builder for [`Design`].
///
/// # Examples
///
/// ```
/// use mrl_db::DesignBuilder;
///
/// let mut b = DesignBuilder::new(4, 40);
/// let inv = b.add_cell("inv1", 2, 1);
/// let ff = b.add_cell("ff1", 2, 2);
/// b.set_input_position(inv, 3.4, 1.2);
/// b.set_input_position(ff, 10.0, 2.0);
/// let net = b.add_net("n1");
/// b.add_cell_pin(net, inv, 0.5, 0.5);
/// b.add_cell_pin(net, ff, 1.0, 1.0);
/// let design = b.finish()?;
/// assert_eq!(design.num_movable(), 2);
/// # Ok::<(), mrl_db::DbError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DesignBuilder {
    name: String,
    grid: SiteGrid,
    rows: Vec<Row>,
    blockages: Vec<SiteRect>,
    parity: mrl_geom::RailParity,
    cells: Vec<Cell>,
    input_pos: Vec<(f64, f64)>,
    netlist: Netlist,
    regions: Vec<FenceRegion>,
    cell_region: Vec<Option<RegionId>>,
}

impl DesignBuilder {
    /// Starts a builder with `num_rows` uniform rows of `row_width` sites
    /// and the ISPD2015 unit system.
    pub fn new(num_rows: i32, row_width: i32) -> Self {
        Self {
            name: "design".into(),
            grid: SiteGrid::ispd2015(),
            rows: (0..num_rows.max(0))
                .map(|_| Row::new(0, row_width))
                .collect(),
            blockages: Vec::new(),
            parity: mrl_geom::RailParity::new(PowerRail::Vdd),
            cells: Vec::new(),
            input_pos: Vec::new(),
            netlist: Netlist::new(),
            regions: Vec::new(),
            cell_region: Vec::new(),
        }
    }

    /// Starts a builder with explicit rows.
    pub fn with_rows(rows: Vec<Row>) -> Self {
        Self {
            rows,
            ..Self::new(0, 0)
        }
    }

    /// Sets the design name.
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Sets the site/micron unit system.
    pub fn set_grid(&mut self, grid: SiteGrid) -> &mut Self {
        self.grid = grid;
        self
    }

    /// Sets the rail parity scheme (default: row 0 bottom = VDD).
    pub fn set_parity(&mut self, parity: mrl_geom::RailParity) -> &mut Self {
        self.parity = parity;
        self
    }

    /// Adds a movable cell with default (VDD-bottom) rail polarity; its
    /// input position defaults to the floorplan origin until
    /// [`DesignBuilder::set_input_position`] is called.
    pub fn add_cell(&mut self, name: impl Into<String>, width: i32, height: i32) -> CellId {
        self.add_cell_with_rail(name, width, height, PowerRail::Vdd)
    }

    /// Adds a movable cell with an explicit native bottom-rail polarity
    /// (meaningful for even-height cells, which cannot flip).
    pub fn add_cell_with_rail(
        &mut self,
        name: impl Into<String>,
        width: i32,
        height: i32,
        rail: PowerRail,
    ) -> CellId {
        let id = CellId::from_usize(self.cells.len());
        self.cells
            .push(Cell::new(name, width, height, rail, CellKind::Movable));
        self.input_pos.push((0.0, 0.0));
        self.cell_region.push(None);
        id
    }

    /// Adds a fixed macro at an integral position; its footprint blocks
    /// placement sites.
    pub fn add_fixed(&mut self, name: impl Into<String>, footprint: SiteRect) -> CellId {
        let id = CellId::from_usize(self.cells.len());
        self.cells.push(Cell::new(
            name,
            footprint.w,
            footprint.h,
            PowerRail::Vdd,
            CellKind::Fixed,
        ));
        self.input_pos
            .push((f64::from(footprint.x), f64::from(footprint.y)));
        self.cell_region.push(None);
        self.blockages.push(footprint);
        id
    }

    /// Adds an anonymous placement blockage.
    pub fn add_blockage(&mut self, footprint: SiteRect) -> &mut Self {
        self.blockages.push(footprint);
        self
    }

    /// Sets a cell's global-placement input position (fractional site
    /// units, lower-left corner).
    pub fn set_input_position(&mut self, cell: CellId, x: f64, y: f64) -> &mut Self {
        self.input_pos[cell.index()] = (x, y);
        self
    }

    /// Adds a fence region: cells assigned to it (via
    /// [`DesignBuilder::assign_region`]) must be placed fully inside its
    /// rectangle union; all other cells must stay out of it.
    pub fn add_region(&mut self, name: impl Into<String>, rects: Vec<SiteRect>) -> RegionId {
        let id = RegionId::from_usize(self.regions.len());
        self.regions.push(FenceRegion::new(name, rects));
        id
    }

    /// Assigns a movable cell to a fence region.
    ///
    /// # Panics
    ///
    /// Panics if `region` does not belong to this builder.
    pub fn assign_region(&mut self, cell: CellId, region: RegionId) -> &mut Self {
        assert!(region.index() < self.regions.len(), "foreign region");
        self.cell_region[cell.index()] = Some(region);
        self
    }

    /// Adds an empty net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.netlist.add_net(name)
    }

    /// Adds a pin on a cell at an offset from the cell's lower-left corner.
    pub fn add_cell_pin(&mut self, net: NetId, cell: CellId, dx: f64, dy: f64) -> &mut Self {
        self.netlist
            .add_pin(net, PinLocation::OnCell { cell, dx, dy });
        self
    }

    /// Adds a fixed terminal pin at an absolute position.
    pub fn add_fixed_pin(&mut self, net: NetId, x: f64, y: f64) -> &mut Self {
        self.netlist.add_pin(net, PinLocation::Fixed { x, y });
        self
    }

    /// Finalizes the design.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Invalid`] if the floorplan has no rows, if any
    /// movable cell is taller than the floorplan or wider than the widest
    /// row, or if total movable area exceeds placement capacity.
    pub fn finish(self) -> Result<Design, DbError> {
        let mut netlist = self.netlist;
        netlist.rebuild_cell_index(self.cells.len());
        let floorplan = Floorplan::with_parity(self.rows, self.blockages, self.parity)?;
        let max_row_width = floorplan.rows().iter().map(|r| r.width).max().unwrap_or(0);
        for cell in self.cells.iter() {
            if !cell.is_movable() {
                continue;
            }
            if cell.height() > floorplan.num_rows() {
                return Err(DbError::Invalid(format!(
                    "cell {} ({} rows) is taller than the floorplan ({} rows)",
                    cell.name(),
                    cell.height(),
                    floorplan.num_rows()
                )));
            }
            if cell.width() > max_row_width {
                return Err(DbError::Invalid(format!(
                    "cell {} ({} sites) is wider than every row",
                    cell.name(),
                    cell.width()
                )));
            }
        }
        let movable_area: i64 = self
            .cells
            .iter()
            .filter(|c| c.is_movable())
            .map(Cell::area)
            .sum();
        if movable_area > floorplan.capacity() {
            return Err(DbError::Invalid(format!(
                "movable area {} exceeds placement capacity {}",
                movable_area,
                floorplan.capacity()
            )));
        }
        for (i, a) in self.regions.iter().enumerate() {
            for b in self.regions.iter().skip(i + 1) {
                for ra in a.rects() {
                    if b.rects().iter().any(|rb| rb.overlaps(ra)) {
                        return Err(DbError::Invalid(format!(
                            "fence regions {} and {} overlap",
                            a.name(),
                            b.name()
                        )));
                    }
                }
            }
        }
        Ok(Design {
            name: self.name,
            grid: self.grid,
            floorplan,
            cells: self.cells,
            input_pos: self.input_pos,
            netlist,
            regions: self.regions,
            cell_region: self.cell_region,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_consistent_design() {
        let mut b = DesignBuilder::new(3, 20);
        b.set_name("tiny");
        let a = b.add_cell("a", 2, 1);
        let m = b.add_fixed("ram", SiteRect::new(10, 0, 5, 2));
        b.set_input_position(a, 1.5, 0.2);
        let d = b.finish().unwrap();
        assert_eq!(d.name(), "tiny");
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.num_movable(), 1);
        assert_eq!(d.input_position(a), (1.5, 0.2));
        assert_eq!(d.input_position(m), (10.0, 0.0));
        // The macro split rows 0 and 1 into two segments each.
        assert_eq!(d.floorplan().segments_in_row(0).len(), 2);
        assert_eq!(d.floorplan().segments_in_row(2).len(), 1);
        assert_eq!(d.movable_cells().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn density_counts_movable_area_only() {
        let mut b = DesignBuilder::new(1, 10);
        b.add_cell("a", 4, 1);
        b.add_fixed("m", SiteRect::new(8, 0, 2, 1));
        let d = b.finish().unwrap();
        // Capacity 8 after blockage; movable area 4.
        assert!((d.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_tall_cell_rejected() {
        let mut b = DesignBuilder::new(2, 10);
        b.add_cell("t", 1, 3);
        assert!(matches!(b.finish(), Err(DbError::Invalid(_))));
    }

    #[test]
    fn too_wide_cell_rejected() {
        let mut b = DesignBuilder::new(2, 10);
        b.add_cell("w", 11, 1);
        assert!(matches!(b.finish(), Err(DbError::Invalid(_))));
    }

    #[test]
    fn overfull_design_rejected() {
        let mut b = DesignBuilder::new(1, 4);
        b.add_cell("a", 3, 1);
        b.add_cell("b", 3, 1);
        assert!(matches!(b.finish(), Err(DbError::Invalid(_))));
    }

    #[test]
    fn hpwl_converts_axes_independently() {
        let mut b = DesignBuilder::new(2, 100);
        let a = b.add_cell("a", 1, 1);
        let c = b.add_cell("b", 1, 1);
        let n = b.add_net("n");
        b.add_cell_pin(n, a, 0.0, 0.0);
        b.add_cell_pin(n, c, 0.0, 0.0);
        let d = b.finish().unwrap();
        // Positions 10 sites apart in x and 1 row apart in y.
        let hpwl = d.hpwl_um(|id| if id == a { (0.0, 0.0) } else { (10.0, 1.0) });
        let g = d.grid();
        let expected = 10.0 * g.site_width_um() + 1.0 * g.row_height_um();
        assert!((hpwl - expected).abs() < 1e-9);
    }

    #[test]
    fn hpwl_includes_fixed_pins() {
        let mut b = DesignBuilder::new(1, 100);
        let a = b.add_cell("a", 1, 1);
        let n = b.add_net("n");
        b.add_cell_pin(n, a, 0.0, 0.0);
        b.add_fixed_pin(n, 50.0, 0.0);
        let d = b.finish().unwrap();
        let hpwl = d.hpwl_um(|_| (0.0, 0.0));
        assert!((hpwl - 50.0 * d.grid().site_width_um()).abs() < 1e-9);
    }
}
