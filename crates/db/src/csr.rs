//! Flattened CSR-style segment storage for the occupancy index.
//!
//! [`Csr`] keeps the per-segment lists of [`PlacementState`] — ordered cell
//! entries and free gaps — in **one backing arena** with per-segment offset
//! ranges instead of a `Vec` per segment. The old `Vec<Vec<_>>` layout paid
//! a heap allocation per segment and a pointer dereference per probe; at a
//! million cells those pointers scatter across hundreds of megabytes and
//! every `partition_point` step is a cache miss. Here a probe lands in one
//! contiguous slice of the arena, and neighboring segments (which the
//! window queries visit together) usually share cache lines.
//!
//! Mutations are amortized: each segment's range carries slack capacity, so
//! an insert shifts at most `len` contiguous elements (`copy_within`, no
//! allocation). A full range is *resliced* — relocated to the arena tail
//! with doubled capacity — leaving a dead hole behind; when dead space
//! exceeds the live data the arena compacts in place. Both reslicing and
//! compaction are amortized O(1) per insert.
//!
//! [`PlacementState`]: crate::PlacementState

/// Offset range of one segment inside the backing arena.
#[derive(Clone, Copy, Debug, Default)]
struct Span {
    /// First element of the segment's block in the arena.
    start: u32,
    /// Occupied prefix of the block.
    len: u32,
    /// Allocated block size (`len <= cap`).
    cap: u32,
}

/// One backing arena of `T` plus per-segment offset ranges.
///
/// Element order inside a segment's block is maintained by the caller
/// (the occupancy index keeps both cell entries and gaps x-sorted).
#[derive(Clone, Debug)]
pub(crate) struct Csr<T> {
    spans: Vec<Span>,
    data: Vec<T>,
    /// Sum of all span lengths (live elements).
    live: usize,
    /// Elements abandoned by reslicing, reclaimable by compaction.
    dead: usize,
}

/// Initial capacity handed to a segment on its first insert.
const FIRST_CAP: u32 = 4;

impl<T: Copy> Csr<T> {
    /// An arena of `segments` empty ranges.
    pub fn new(segments: usize) -> Self {
        Csr {
            spans: vec![Span::default(); segments],
            data: Vec::new(),
            live: 0,
            dead: 0,
        }
    }

    /// An arena built from one initial element per segment (the gap index
    /// starts with each segment's full extent as a single free gap).
    pub fn from_one_per_seg(items: impl ExactSizeIterator<Item = T>) -> Self {
        let n = items.len();
        let mut csr = Csr {
            spans: Vec::with_capacity(n),
            data: Vec::with_capacity(n * 2),
            live: n,
            dead: 0,
        };
        for (i, item) in items.enumerate() {
            csr.spans.push(Span {
                start: (i * 2) as u32,
                len: 1,
                cap: 2,
            });
            csr.data.push(item);
            csr.data.push(item);
        }
        csr
    }

    /// The occupied slice of a segment.
    #[inline]
    pub fn slice(&self, seg: usize) -> &[T] {
        let s = self.spans[seg];
        &self.data[s.start as usize..(s.start + s.len) as usize]
    }

    /// Mutable element access within a segment's occupied range.
    #[inline]
    pub fn get_mut(&mut self, seg: usize, idx: usize) -> &mut T {
        let s = self.spans[seg];
        debug_assert!(idx < s.len as usize);
        &mut self.data[s.start as usize + idx]
    }

    /// Inserts `v` at `idx` of the segment's slice, shifting the tail right
    /// by one `copy_within`. Reslices (and possibly compacts) when the
    /// block is full.
    pub fn insert(&mut self, seg: usize, idx: usize, v: T) {
        let s = self.spans[seg];
        debug_assert!(idx <= s.len as usize);
        if s.len == s.cap {
            self.reslice(seg, v);
        }
        let s = self.spans[seg];
        let (start, len) = (s.start as usize, s.len as usize);
        self.data
            .copy_within(start + idx..start + len, start + idx + 1);
        self.data[start + idx] = v;
        self.spans[seg].len += 1;
        self.live += 1;
    }

    /// Removes and returns the element at `idx` of the segment's slice,
    /// shifting the tail left by one `copy_within`. The freed slot stays
    /// with the segment as slack capacity.
    pub fn remove(&mut self, seg: usize, idx: usize) -> T {
        let s = self.spans[seg];
        debug_assert!(idx < s.len as usize);
        let (start, len) = (s.start as usize, s.len as usize);
        let out = self.data[start + idx];
        self.data
            .copy_within(start + idx + 1..start + len, start + idx);
        self.spans[seg].len -= 1;
        self.live -= 1;
        out
    }

    /// Bytes held by the arena and the offset table (capacities, not
    /// lengths — this is what the process actually pays for the index).
    pub fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>()
            + self.spans.capacity() * std::mem::size_of::<Span>()
    }

    /// Arena bytes NOT occupied by live elements — per-segment slack plus
    /// dead holes left by reslicing plus unused `Vec` capacity. The
    /// telemetry layer exports this as a gauge so long-lived serving
    /// sessions can watch compaction debt grow and shrink.
    pub fn slack_bytes(&self) -> usize {
        self.data.capacity().saturating_sub(self.live) * std::mem::size_of::<T>()
    }

    /// Moves a full segment block to the arena tail with doubled capacity.
    /// `pad` fills the block's slack (never read; `len` guards every
    /// access) so the arena stays fully initialized without `T: Default`.
    fn reslice(&mut self, seg: usize, pad: T) {
        if self.dead > self.live.max(1024) {
            self.compact(pad);
        }
        let s = self.spans[seg];
        let new_cap = (s.cap * 2).max(FIRST_CAP);
        let new_start = self.data.len();
        debug_assert!(new_start + new_cap as usize <= u32::MAX as usize);
        self.data.reserve(new_cap as usize);
        self.data
            .extend_from_within(s.start as usize..(s.start + s.len) as usize);
        self.data.resize(new_start + new_cap as usize, pad);
        self.dead += s.cap as usize;
        self.spans[seg] = Span {
            start: new_start as u32,
            len: s.len,
            cap: new_cap,
        };
    }

    /// Rewrites the arena with segments in index order, dropping dead
    /// holes. Each block keeps ~50% slack so compaction doesn't force the
    /// very next insert to reslice again.
    fn compact(&mut self, pad: T) {
        let mut cursor = 0usize;
        let mut packed: Vec<T> = Vec::with_capacity(self.live + self.live / 2 + self.spans.len());
        for s in &mut self.spans {
            let new_cap = if s.len == 0 {
                0
            } else {
                (s.len + (s.len / 2).max(1)).max(FIRST_CAP)
            };
            let new_start = cursor as u32;
            packed.extend_from_slice(&self.data[s.start as usize..(s.start + s.len) as usize]);
            packed.resize(cursor + new_cap as usize, pad);
            cursor += new_cap as usize;
            *s = Span {
                start: new_start,
                len: s.len,
                cap: new_cap,
            };
        }
        self.data = packed;
        self.dead = cursor - self.live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_keeps_slices_ordered() {
        let mut c: Csr<i32> = Csr::new(3);
        for v in [5, 1, 9, 3, 7] {
            let idx = c.slice(1).partition_point(|&x| x < v);
            c.insert(1, idx, v);
        }
        assert_eq!(c.slice(1), &[1, 3, 5, 7, 9]);
        assert!(c.slice(0).is_empty() && c.slice(2).is_empty());
        assert_eq!(c.remove(1, 2), 5);
        assert_eq!(c.slice(1), &[1, 3, 7, 9]);
    }

    #[test]
    fn interleaved_growth_across_segments() {
        // Alternating inserts force repeated reslices of both segments.
        let mut c: Csr<u32> = Csr::new(2);
        for i in 0..500u32 {
            c.insert(0, c.slice(0).len(), i);
            c.insert(1, 0, i);
        }
        assert_eq!(c.slice(0).len(), 500);
        assert_eq!(c.slice(0)[499], 499);
        assert_eq!(c.slice(1)[0], 499);
        assert_eq!(c.slice(1)[499], 0);
    }

    #[test]
    fn compaction_bounds_dead_space() {
        let mut c: Csr<u64> = Csr::new(64);
        for round in 0..200u64 {
            for seg in 0..64 {
                c.insert(seg, 0, round * 64 + seg as u64);
            }
        }
        // Growth left holes, but compaction keeps dead below live + floor.
        assert!(c.dead <= c.live.max(1024) + c.live);
        assert_eq!(c.live, 200 * 64);
        for seg in 0..64 {
            assert_eq!(c.slice(seg).len(), 200);
            assert!(c.slice(seg).windows(2).all(|w| w[0] > w[1]));
        }
    }

    #[test]
    fn one_per_seg_initializer() {
        let c = Csr::from_one_per_seg([10i32, 20, 30].into_iter());
        assert_eq!(c.slice(0), &[10]);
        assert_eq!(c.slice(2), &[30]);
        assert!(c.bytes() > 0);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut c: Csr<i32> = Csr::new(1);
        c.insert(0, 0, 7);
        c.insert(0, 1, 8);
        *c.get_mut(0, 1) = 42;
        assert_eq!(c.slice(0), &[7, 42]);
    }
}
