//! Error type for database operations.

use crate::CellId;
use mrl_geom::{SitePoint, SiteRect};
use std::error::Error;
use std::fmt;

/// Errors returned by design construction and placement-state mutation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DbError {
    /// A cell's footprint is not fully contained in segments at a position.
    OutsideSegments {
        /// The cell being placed.
        cell: CellId,
        /// The attempted lower-left position.
        at: SitePoint,
    },
    /// Placing a cell would overlap an already placed cell.
    Overlap {
        /// The cell being placed.
        cell: CellId,
        /// The cell already occupying part of the footprint.
        occupant: CellId,
        /// The attempted footprint.
        rect: SiteRect,
    },
    /// An operation expected the cell to be placed but it is not.
    NotPlaced(CellId),
    /// An operation expected the cell to be unplaced but it is placed.
    AlreadyPlaced(CellId),
    /// The position violates the power-rail parity constraint for the cell.
    RailMismatch {
        /// The cell being placed.
        cell: CellId,
        /// The offending bottom row.
        row: i32,
    },
    /// The position violates a fence region constraint (member outside its
    /// region, or non-member inside one).
    FenceViolation {
        /// The cell being placed.
        cell: CellId,
        /// The attempted footprint.
        rect: SiteRect,
    },
    /// A design-level validation failure with a human-readable reason.
    Invalid(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::OutsideSegments { cell, at } => {
                write!(f, "cell {cell} at {at} is not contained in row segments")
            }
            DbError::Overlap {
                cell,
                occupant,
                rect,
            } => write!(f, "cell {cell} at {rect} overlaps cell {occupant}"),
            DbError::NotPlaced(cell) => write!(f, "cell {cell} is not placed"),
            DbError::AlreadyPlaced(cell) => write!(f, "cell {cell} is already placed"),
            DbError::RailMismatch { cell, row } => {
                write!(f, "cell {cell} violates power-rail parity on row {row}")
            }
            DbError::FenceViolation { cell, rect } => {
                write!(f, "cell {cell} at {rect} violates a fence region")
            }
            DbError::Invalid(reason) => write!(f, "invalid design: {reason}"),
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = DbError::NotPlaced(CellId::new(7));
        assert_eq!(e.to_string(), "cell c7 is not placed");
        let e = DbError::RailMismatch {
            cell: CellId::new(1),
            row: 3,
        };
        assert!(e.to_string().contains("row 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbError>();
    }
}
