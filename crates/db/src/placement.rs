//! The mutable placement state: cell positions plus per-segment cell lists.
//!
//! Per Section 2.1.2 of the paper, each segment keeps a list of the cells on
//! it ordered by x-coordinate; a placed cell of height `h` appears in the
//! lists of all `h` segments it spans, and an unplaced cell appears in no
//! list. All legalization algorithms read and mutate placements through this
//! structure, which maintains the invariants:
//!
//! * every placed cell is fully contained in one segment per spanned row,
//! * per-segment lists are strictly ordered by x and overlap-free,
//! * even-height cells sit only on rail-compatible rows.
//!
//! In addition to the paper's cell lists, the state maintains a **segment
//! occupancy index**: for every segment, the sorted list of maximal free
//! gaps `[x0, x1)`. It is updated incrementally on every `place` / `remove`
//! / `shift_batch` (O(log n) search + O(k) splice per spanned row) and lets
//! window extraction and free-space queries avoid rescanning the cell lists.
//!
//! # Cache-resident layout (DESIGN.md §9)
//!
//! The index is stored for cache residency at 10⁵–10⁶ cells:
//!
//! * **Interleaved coordinate keys.** Each segment's list is a pair of
//!   parallel arrays: `(x0, x1)` extents and `CellId`s. Every
//!   `partition_point` probe — [`cells_intersecting`], [`left_neighbor`],
//!   the windowed gap queries, and the search steps inside [`place`] /
//!   [`remove`] / [`shift_batch`] — walks the contiguous extent array and
//!   never dereferences `pos[cell]`, which at scale is a dependent random
//!   load into hundreds of megabytes. `pos[]` stays the authoritative
//!   record; debug builds cross-check the interleaved copy against it
//!   under the `GAP_CHECK_*` sampling.
//! * **CSR segment storage.** Both the cell lists and the gap lists live in
//!   flattened [`Csr`] arenas (one backing allocation, per-segment offset
//!   ranges, amortized reslicing on growth) instead of a `Vec` per segment
//!   — no per-segment heap allocations, no pointer chase per probe, and
//!   mutations shift one contiguous block instead of a heap-scattered
//!   `Vec`.
//!
//! The pre-interleaving probe path (derive x from `pos[]` on every
//! comparison, exactly what the PR 6 index did) is kept behind
//! [`IndexLayout::Legacy`] as the measurement baseline and oracle — both
//! layouts are bit-identical in results, asserted by property tests and
//! the 64k fuzz matrix.
//!
//! [`cells_intersecting`]: PlacementState::cells_intersecting
//! [`left_neighbor`]: PlacementState::left_neighbor
//! [`place`]: PlacementState::place
//! [`remove`]: PlacementState::remove
//! [`shift_batch`]: PlacementState::shift_batch
//! [`Csr`]: crate::csr::Csr

use crate::csr::Csr;
use crate::{CellId, DbError, Design, SegId};
use mrl_geom::{Orient, SitePoint, SiteRect};

/// Number of occupancy-index cross-checks executed in this process. Exists
/// only in debug builds; release builds compile the check (and the counter)
/// out entirely.
#[cfg(debug_assertions)]
static GAP_CROSS_CHECKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of cross-check *opportunities* (mutations of large segments that
/// were sampled rather than checked unconditionally). Debug builds only.
#[cfg(debug_assertions)]
static GAP_CHECK_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Segments with at most this many listed cells are cross-checked on every
/// mutation; larger segments are sampled (1 in [`GAP_CHECK_SAMPLE`]) so
/// debug-mode runs on 100k–1M-cell designs stay tractable — the
/// recomputation is O(cells-per-segment) and would otherwise turn every
/// mutation quadratic.
#[cfg(debug_assertions)]
const GAP_CHECK_EXHAUSTIVE_MAX: usize = 64;

/// Sampling period for cross-checks on large segments (debug builds only).
#[cfg(debug_assertions)]
const GAP_CHECK_SAMPLE: u64 = 64;

/// How many times the debug-only occupancy-index cross-check has run in
/// this process. Always 0 in release builds — the check is strictly gated
/// behind `debug_assertions`, so the hot mutation paths (`place`, `remove`,
/// `shift_batch`) never pay for the O(cells-per-segment) recomputation in
/// optimized kernels. Tests use this to assert the gating holds.
pub fn gap_cross_check_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        GAP_CROSS_CHECKS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Which probe path the per-segment cell lists use.
///
/// Storage is identical in both modes (interleaved extents + CSR arenas);
/// the layout chooses what a `partition_point` comparison *reads*. The
/// legacy path exists for A/B measurement (`bench_legalize
/// --legacy-layout`, `benches/index.rs`) and as the oracle the interleaved
/// path is validated against — results are bit-identical by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IndexLayout {
    /// Probe the interleaved `(x0, x1)` extent array — one contiguous
    /// stream, no `pos[]` dereference (the cache-resident default).
    #[default]
    Interleaved,
    /// Derive extents from `pos[cell]` + the cell width on every
    /// comparison — the PR 6 probe pattern: a dependent random load per
    /// `partition_point` step.
    Legacy,
}

/// First-touch transaction journal (the `ChainCtx` pattern from the
/// escalation tiers, generalized to the whole placement): while a
/// transaction is open, every position mutation records the affected
/// cell's *pre-transaction* position the first time the cell is touched.
/// The epoch-stamped `touched` array makes the first-touch test O(1), so
/// a transaction costs O(cells actually moved) regardless of design size;
/// when no transaction is open the journal is a single branch per
/// mutation.
#[derive(Clone, Debug, Default)]
struct TxnJournal {
    active: bool,
    epoch: u32,
    touched: Vec<u32>,
    log: Vec<(CellId, Option<SitePoint>)>,
}

/// Current placement of a design's movable cells.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Clone, Debug)]
pub struct PlacementState {
    pos: Vec<Option<SitePoint>>,
    orient: Vec<Orient>,
    /// Interleaved per-segment x-extents `(x0, x1)`, mirrored with
    /// `seg_ids` (same segment, same index → same cell).
    seg_xs: Csr<(i32, i32)>,
    /// Per-segment ordered cell ids.
    seg_ids: Csr<CellId>,
    /// Per-segment sorted disjoint maximal free intervals `[x0, x1)`.
    gaps: Csr<(i32, i32)>,
    layout: IndexLayout,
    txn: TxnJournal,
}

impl PlacementState {
    /// Creates an empty placement (every movable cell unplaced) for a
    /// design, with the default cache-resident index layout.
    pub fn new(design: &Design) -> Self {
        Self::with_layout(design, IndexLayout::default())
    }

    /// Like [`PlacementState::new`] with an explicit probe layout — the
    /// A/B switch for `benches/index.rs` and `bench_legalize
    /// --legacy-layout`. Both layouts produce bit-identical placements.
    pub fn with_layout(design: &Design, layout: IndexLayout) -> Self {
        let segments = design.floorplan().segments();
        Self {
            pos: vec![None; design.num_cells()],
            orient: vec![Orient::North; design.num_cells()],
            seg_xs: Csr::new(segments.len()),
            seg_ids: Csr::new(segments.len()),
            gaps: Csr::from_one_per_seg(segments.iter().map(|s| (s.x, s.right()))),
            layout,
            txn: TxnJournal::default(),
        }
    }

    /// The probe layout this state was built with (clones inherit it).
    pub fn layout(&self) -> IndexLayout {
        self.layout
    }

    /// Bytes held by the occupancy index — the CSR arenas of cell extents,
    /// cell ids, and free gaps, counted at capacity. `pos[]`/`orient[]`
    /// (the authoritative record) are excluded: they exist in any layout.
    pub fn index_bytes(&self) -> usize {
        self.seg_xs.bytes() + self.seg_ids.bytes() + self.gaps.bytes()
    }

    /// Bytes of [`index_bytes`](PlacementState::index_bytes) not occupied
    /// by live entries — CSR slack capacity plus dead reslice holes. A
    /// session gauge: high slack on a long-lived session means the arenas
    /// are carrying compaction debt.
    pub fn index_slack_bytes(&self) -> usize {
        self.seg_xs.slack_bytes() + self.seg_ids.slack_bytes() + self.gaps.slack_bytes()
    }

    /// The sorted maximal free gaps `[x0, x1)` of a segment — the occupancy
    /// index consumed by window extraction and the parallel driver.
    pub fn free_gaps(&self, seg: SegId) -> &[(i32, i32)] {
        self.gaps.slice(seg.index())
    }

    /// The free gaps of `seg` that intersect the open window `(x0, x1)`, as
    /// a subslice of the sorted gap list found by two binary searches —
    /// O(log gaps + answer), independent of the segment's total occupancy.
    ///
    /// Gaps that merely touch the window boundary (ending at `x0` or
    /// starting at `x1`) are excluded; clipping them to the window would
    /// yield empty intervals, so the result is exactly the gaps a linear
    /// scan-and-clip over [`free_gaps`](PlacementState::free_gaps) keeps.
    pub fn free_gaps_in(&self, seg: SegId, x0: i32, x1: i32) -> &[(i32, i32)] {
        let gaps = self.gaps.slice(seg.index());
        // First gap whose right end is > x0.
        let lo = gaps.partition_point(|&(_, g1)| g1 <= x0);
        // First gap whose left end is >= x1.
        let hi = gaps.partition_point(|&(g0, _)| g0 < x1);
        &gaps[lo..hi.max(lo)]
    }

    /// True if `[x0, x1)` lies entirely inside one free gap of `seg` —
    /// an O(log gaps) occupancy query.
    pub fn span_is_free(&self, seg: SegId, x0: i32, x1: i32) -> bool {
        let gaps = self.gaps.slice(seg.index());
        let i = gaps.partition_point(|&(g0, _)| g0 <= x0);
        i > 0 && gaps[i - 1].1 >= x1 && x0 < x1
    }

    /// Marks `[x0, x1)` occupied in the index: splits the containing gap.
    fn gap_occupy(&mut self, seg: usize, x0: i32, x1: i32) {
        let gaps = self.gaps.slice(seg);
        let i = gaps.partition_point(|&(g0, _)| g0 <= x0);
        debug_assert!(
            i > 0 && gaps[i - 1].0 <= x0 && gaps[i - 1].1 >= x1,
            "gap_occupy: [{x0},{x1}) not free in segment {seg}"
        );
        let (g0, g1) = gaps[i - 1];
        match (g0 < x0, x1 < g1) {
            (true, true) => {
                self.gaps.get_mut(seg, i - 1).1 = x0;
                self.gaps.insert(seg, i, (x1, g1));
            }
            (true, false) => self.gaps.get_mut(seg, i - 1).1 = x0,
            (false, true) => self.gaps.get_mut(seg, i - 1).0 = x1,
            (false, false) => {
                self.gaps.remove(seg, i - 1);
            }
        }
    }

    /// Marks `[x0, x1)` free in the index: inserts a gap, merging with
    /// adjacent gaps.
    fn gap_free(&mut self, seg: usize, x0: i32, x1: i32) {
        let gaps = self.gaps.slice(seg);
        // First gap whose right edge reaches x0 (the only left-merge
        // candidate); anything earlier ends strictly left of the span.
        let i = gaps.partition_point(|&(_, g1)| g1 < x0);
        let merge_left = i < gaps.len() && gaps[i].1 == x0;
        let r = if merge_left { i + 1 } else { i };
        let merge_right = r < gaps.len() && gaps[r].0 == x1;
        debug_assert!(
            (merge_left || i >= gaps.len() || gaps[i].0 >= x1)
                && (!merge_left || r >= gaps.len() || gaps[r].0 >= x1),
            "gap_free: [{x0},{x1}) overlaps an existing gap in segment {seg}"
        );
        match (merge_left, merge_right) {
            (true, true) => {
                let right_end = gaps[r].1;
                self.gaps.get_mut(seg, i).1 = right_end;
                self.gaps.remove(seg, r);
            }
            (true, false) => self.gaps.get_mut(seg, i).1 = x1,
            (false, true) => self.gaps.get_mut(seg, r).0 = x0,
            (false, false) => self.gaps.insert(seg, i, (x0, x1)),
        }
    }

    /// Recomputes a segment's free gaps from its ordered cell list and
    /// `pos[]` — the slow path the incremental index is validated against.
    pub fn recompute_gaps(&self, design: &Design, seg: SegId) -> Vec<(i32, i32)> {
        let s = &design.floorplan().segments()[seg.index()];
        let mut out = Vec::new();
        let mut cursor = s.x;
        for &cell in self.seg_ids.slice(seg.index()) {
            let p = self.pos[cell.index()].expect("listed cell must be placed");
            if p.x > cursor {
                out.push((cursor, p.x));
            }
            cursor = p.x + design.cell(cell).width();
        }
        if cursor < s.right() {
            out.push((cursor, s.right()));
        }
        out
    }

    /// Recomputes a segment's interleaved extent entries from the
    /// authoritative `pos[]` record — the linear-rebuild oracle the
    /// interleaved keys are validated against (property tests, debug
    /// cross-checks).
    pub fn recompute_extents(&self, design: &Design, seg: SegId) -> Vec<(i32, i32)> {
        self.seg_ids
            .slice(seg.index())
            .iter()
            .map(|&cell| {
                let p = self.pos[cell.index()].expect("listed cell must be placed");
                (p.x, p.x + design.cell(cell).width())
            })
            .collect()
    }

    /// Debug-only cross-check of the incremental index for `seg`: the gap
    /// list and the interleaved extent keys must both match a linear
    /// rebuild from `pos[]`. Compiled only under `debug_assertions`; see
    /// [`gap_cross_check_count`]. Segments with more than
    /// [`GAP_CHECK_EXHAUSTIVE_MAX`] cells are sampled (1 in
    /// [`GAP_CHECK_SAMPLE`] mutations) so million-cell debug runs don't
    /// spend hours re-deriving index state.
    #[cfg(debug_assertions)]
    fn debug_check_index(&self, design: &Design, seg: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        if self.seg_ids.slice(seg).len() > GAP_CHECK_EXHAUSTIVE_MAX
            && !GAP_CHECK_CALLS
                .fetch_add(1, Relaxed)
                .is_multiple_of(GAP_CHECK_SAMPLE)
        {
            return;
        }
        GAP_CROSS_CHECKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let seg_id = SegId::from_usize(seg);
        assert_eq!(
            self.gaps.slice(seg),
            self.recompute_gaps(design, seg_id).as_slice(),
            "occupancy index diverged from the cell list on segment {seg}"
        );
        assert_eq!(
            self.seg_xs.slice(seg),
            self.recompute_extents(design, seg_id).as_slice(),
            "interleaved extent keys diverged from pos[] on segment {seg}"
        );
    }

    /// Release builds compile the cross-check out entirely.
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn debug_check_index(&self, _design: &Design, _seg: usize) {}

    /// The current position of a cell, if placed.
    pub fn position(&self, cell: CellId) -> Option<SitePoint> {
        self.pos[cell.index()]
    }

    /// The current orientation of a cell (meaningful only when placed).
    pub fn orient(&self, cell: CellId) -> Orient {
        self.orient[cell.index()]
    }

    /// True if the cell is currently placed.
    pub fn is_placed(&self, cell: CellId) -> bool {
        self.pos[cell.index()].is_some()
    }

    /// Number of placed cells.
    pub fn num_placed(&self) -> usize {
        self.pos.iter().filter(|p| p.is_some()).count()
    }

    /// The footprint of a placed cell.
    pub fn rect_of(&self, design: &Design, cell: CellId) -> Option<SiteRect> {
        self.pos[cell.index()].map(|p| {
            let c = design.cell(cell);
            SiteRect::new(p.x, p.y, c.width(), c.height())
        })
    }

    /// The ordered cell list of a segment.
    pub fn segment_cells(&self, seg: SegId) -> &[CellId] {
        self.seg_ids.slice(seg.index())
    }

    /// The interleaved x-extents `(x0, x1)` of a segment's ordered cell
    /// list — entry `i` is the footprint of `segment_cells(seg)[i]`.
    pub fn segment_extents(&self, seg: SegId) -> &[(i32, i32)] {
        self.seg_xs.slice(seg.index())
    }

    /// The segment id covering `(row, x)`, if any.
    pub fn segment_at(&self, design: &Design, row: i32, x: i32) -> Option<SegId> {
        let fp = design.floorplan();
        let base = fp.row_segment_base(row)?;
        let segs = fp.segments_in_row(row);
        let idx = segs.partition_point(|s| s.right() <= x);
        segs.get(idx)
            .filter(|s| s.x <= x)
            .map(|_| SegId::from_usize(base + idx))
    }

    /// First list index of `seg` whose cell's right edge is > `x0` — the
    /// lower bound of every span query. The interleaved path walks the
    /// contiguous extent array; the legacy path chases `pos[]` per probe.
    #[inline]
    fn list_lower(&self, design: &Design, seg: usize, x0: i32) -> usize {
        match self.layout {
            IndexLayout::Interleaved => self
                .seg_xs
                .slice(seg)
                .partition_point(|&(_, right)| right <= x0),
            IndexLayout::Legacy => self.seg_ids.slice(seg).partition_point(|&c| {
                let p = self.pos[c.index()].expect("listed cell must be placed");
                p.x + design.cell(c).width() <= x0
            }),
        }
    }

    /// First list index of `seg` whose cell's left edge is >= `x1` — the
    /// upper bound of every span query (the legacy probe needs only
    /// `pos[]`, not the cell width, so no `design` parameter).
    #[inline]
    fn list_upper(&self, seg: usize, x1: i32) -> usize {
        match self.layout {
            IndexLayout::Interleaved => self
                .seg_xs
                .slice(seg)
                .partition_point(|&(left, _)| left < x1),
            IndexLayout::Legacy => self.seg_ids.slice(seg).partition_point(|&c| {
                self.pos[c.index()].expect("listed cell must be placed").x < x1
            }),
        }
    }

    /// Cells of `seg` whose spans intersect the open interval `(x0, x1)`,
    /// as a subslice of the ordered list.
    pub fn cells_intersecting(&self, design: &Design, seg: SegId, x0: i32, x1: i32) -> &[CellId] {
        let lo = self.list_lower(design, seg.index(), x0);
        let hi = self.list_upper(seg.index(), x1);
        &self.seg_ids.slice(seg.index())[lo..hi.max(lo)]
    }

    /// The nearest cell of `seg` entirely at or left of `x` (its right edge
    /// ≤ `x`), if any.
    pub fn left_neighbor(&self, design: &Design, seg: SegId, x: i32) -> Option<CellId> {
        let idx = self.list_lower(design, seg.index(), x);
        idx.checked_sub(1)
            .map(|i| self.seg_ids.slice(seg.index())[i])
    }

    /// True if `rect` lies inside segments on every spanned row and no
    /// placed cell overlaps it.
    pub fn is_free(&self, design: &Design, rect: &SiteRect) -> bool {
        self.span_check(design, rect).is_ok()
    }

    fn span_check(&self, design: &Design, rect: &SiteRect) -> Result<Vec<SegId>, DbError> {
        let fp = design.floorplan();
        let mut segs = Vec::with_capacity(rect.h as usize);
        for row in rect.rows() {
            let seg_id = self
                .segment_at(design, row, rect.x)
                .ok_or(DbError::OutsideSegments {
                    cell: CellId::new(u32::MAX),
                    at: rect.origin(),
                })?;
            let seg = &fp.segments()[seg_id.index()];
            if !seg.contains_span(rect.x, rect.right()) {
                return Err(DbError::OutsideSegments {
                    cell: CellId::new(u32::MAX),
                    at: rect.origin(),
                });
            }
            // Occupancy-index fast path: one binary search over the gap
            // list; the cell-list scan runs only to name an occupant on
            // the error path.
            if !self.span_is_free(seg_id, rect.x, rect.right()) {
                let occupants = self.cells_intersecting(design, seg_id, rect.x, rect.right());
                let occ = *occupants.first().expect("occupied span names an occupant");
                return Err(DbError::Overlap {
                    cell: CellId::new(u32::MAX),
                    occupant: occ,
                    rect: *rect,
                });
            }
            segs.push(seg_id);
        }
        Ok(segs)
    }

    /// Index of `cell` (whose span starts at x = `x0`) in `seg`'s ordered
    /// list, via binary search — lists are strictly x-ordered, so the
    /// position is unique.
    fn list_index_of(&self, design: &Design, seg: SegId, cell: CellId, x0: i32) -> usize {
        let idx = match self.layout {
            IndexLayout::Interleaved => self
                .seg_xs
                .slice(seg.index())
                .partition_point(|&(left, _)| left < x0),
            IndexLayout::Legacy => self.seg_ids.slice(seg.index()).partition_point(|&c| {
                self.pos[c.index()].expect("listed cell must be placed").x < x0
            }),
        };
        debug_assert!(
            self.seg_ids.slice(seg.index()).get(idx) == Some(&cell),
            "cell not at its list slot"
        );
        let _ = design;
        idx
    }

    /// The one insertion path: lists `cell` with extent `[x0, x1)` on
    /// `seg`'s ordered list (extent keys and ids move together) and marks
    /// the span occupied in the gap index.
    fn seg_insert(&mut self, design: &Design, seg: usize, x0: i32, x1: i32, cell: CellId) {
        let idx = match self.layout {
            IndexLayout::Interleaved => self
                .seg_xs
                .slice(seg)
                .partition_point(|&(left, _)| left < x0),
            IndexLayout::Legacy => self.seg_ids.slice(seg).partition_point(|&c| {
                self.pos[c.index()].expect("listed cell must be placed").x < x0
            }),
        };
        self.seg_xs.insert(seg, idx, (x0, x1));
        self.seg_ids.insert(seg, idx, cell);
        self.gap_occupy(seg, x0, x1);
        self.debug_check_index(design, seg);
    }

    /// The one removal path: unlists `cell` (extent `[x0, x1)`) from
    /// `seg`'s ordered list and frees the span in the gap index. The
    /// in-block `copy_within` of the CSR arena replaces the old
    /// heap-`Vec::remove` on the per-segment vectors.
    fn seg_remove(&mut self, design: &Design, seg: SegId, cell: CellId, x0: i32, x1: i32) {
        let idx = self.list_index_of(design, seg, cell, x0);
        self.seg_xs.remove(seg.index(), idx);
        let removed = self.seg_ids.remove(seg.index(), idx);
        debug_assert_eq!(removed, cell, "removed a different cell");
        self.gap_free(seg.index(), x0, x1);
        self.debug_check_index(design, seg.index());
    }

    /// Places an unplaced cell at `at`, enforcing all legality constraints.
    ///
    /// # Errors
    ///
    /// * [`DbError::AlreadyPlaced`] if the cell is placed.
    /// * [`DbError::RailMismatch`] if an even-height cell lands on an
    ///   incompatible row.
    /// * [`DbError::OutsideSegments`] if the footprint leaves the segments.
    /// * [`DbError::Overlap`] if another cell occupies part of the
    ///   footprint.
    pub fn place(&mut self, design: &Design, cell: CellId, at: SitePoint) -> Result<(), DbError> {
        self.place_impl(design, cell, at, true)
    }

    /// Like [`PlacementState::place`] but without the power-rail parity
    /// check — used by the paper's relaxed-alignment experiment (Section 6)
    /// where every cell may sit on any row.
    ///
    /// # Errors
    ///
    /// Same as [`PlacementState::place`] except [`DbError::RailMismatch`]
    /// is never returned.
    pub fn place_ignoring_rails(
        &mut self,
        design: &Design,
        cell: CellId,
        at: SitePoint,
    ) -> Result<(), DbError> {
        self.place_impl(design, cell, at, false)
    }

    fn place_impl(
        &mut self,
        design: &Design,
        cell: CellId,
        at: SitePoint,
        enforce_rails: bool,
    ) -> Result<(), DbError> {
        if self.is_placed(cell) {
            return Err(DbError::AlreadyPlaced(cell));
        }
        let c = design.cell(cell);
        let fp = design.floorplan();
        if enforce_rails && !fp.rail_compatible(c.rail(), c.height(), at.y) {
            return Err(DbError::RailMismatch { cell, row: at.y });
        }
        let rect = SiteRect::new(at.x, at.y, c.width(), c.height());
        if !design.fence_allows(design.region_of(cell), &rect) {
            return Err(DbError::FenceViolation { cell, rect });
        }
        let segs = self.span_check(design, &rect).map_err(|e| match e {
            DbError::OutsideSegments { at, .. } => DbError::OutsideSegments { cell, at },
            DbError::Overlap { occupant, rect, .. } => DbError::Overlap {
                cell,
                occupant,
                rect,
            },
            other => other,
        })?;
        self.note_txn(cell);
        self.pos[cell.index()] = Some(at);
        self.orient[cell.index()] = fp.parity().orient_on_row(c.rail(), c.height(), at.y);
        for seg in segs {
            self.seg_insert(design, seg.index(), at.x, at.x + c.width(), cell);
        }
        Ok(())
    }

    /// Removes a placed cell from the placement.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NotPlaced`] if the cell is not placed.
    pub fn remove(&mut self, design: &Design, cell: CellId) -> Result<SitePoint, DbError> {
        let at = self.pos[cell.index()].ok_or(DbError::NotPlaced(cell))?;
        self.note_txn(cell);
        let c = design.cell(cell);
        for row in at.y..at.y + c.height() {
            let seg = self
                .segment_at(design, row, at.x)
                .expect("placed cell must be on segments");
            self.seg_remove(design, seg, cell, at.x, at.x + c.width());
        }
        self.pos[cell.index()] = None;
        Ok(at)
    }

    /// Applies a batch of horizontal moves that preserve each cell's row,
    /// segment, and relative order — the only kind of move the MLL
    /// realization step produces. All moves are validated together; on error
    /// nothing is changed.
    ///
    /// # Errors
    ///
    /// * [`DbError::NotPlaced`] if a moved cell is unplaced.
    /// * [`DbError::OutsideSegments`] if a new span leaves its segment.
    /// * [`DbError::Overlap`] if, after all moves, a moved cell overlaps or
    ///   passes a list neighbor.
    pub fn shift_batch(&mut self, design: &Design, moves: &[(CellId, i32)]) -> Result<(), DbError> {
        // Validate containment and collect old positions.
        let fp = design.floorplan();
        let mut old = Vec::with_capacity(moves.len());
        for &(cell, new_x) in moves {
            let at = self.pos[cell.index()].ok_or(DbError::NotPlaced(cell))?;
            let c = design.cell(cell);
            for row in at.y..at.y + c.height() {
                let seg_id = self
                    .segment_at(design, row, at.x)
                    .expect("placed cell must be on segments");
                let seg = &fp.segments()[seg_id.index()];
                if !seg.contains_span(new_x, new_x + c.width()) {
                    return Err(DbError::OutsideSegments {
                        cell,
                        at: SitePoint::new(new_x, at.y),
                    });
                }
            }
            let new_rect = SiteRect::new(new_x, at.y, c.width(), c.height());
            if !design.fence_allows(design.region_of(cell), &new_rect) {
                return Err(DbError::FenceViolation {
                    cell,
                    rect: new_rect,
                });
            }
            old.push((cell, at));
        }
        // Record the list coordinates before mutating positions. Relative
        // order is preserved by contract, so each recorded index stays the
        // cell's list slot after the moves commit.
        let mut touched: Vec<(SegId, usize, CellId)> = Vec::new();
        for &(cell, at) in &old {
            let c = design.cell(cell);
            for row in at.y..at.y + c.height() {
                let seg = self
                    .segment_at(design, row, at.x)
                    .expect("placed cell must be on segments");
                let idx = self.list_index_of(design, seg, cell, at.x);
                touched.push((seg, idx, cell));
            }
        }
        // Apply to the authoritative record. Journal first touches before
        // mutating so a later rollback sees the true prior x even if this
        // batch's own internal rollback fires below.
        for &(cell, new_x) in moves {
            let at = self.pos[cell.index()].expect("validated above");
            self.note_txn(cell);
            self.pos[cell.index()] = Some(SitePoint::new(new_x, at.y));
        }
        // Verify order and non-overlap against list neighbors.
        let violation = touched.iter().any(|&(seg, idx, _)| {
            let list = self.seg_ids.slice(seg.index());
            let rect_at = |i: usize| {
                let id = list[i];
                let p = self.pos[id.index()].expect("listed cell must be placed");
                (p.x, p.x + design.cell(id).width())
            };
            let (x0, x1) = rect_at(idx);
            let bad_left = idx > 0 && rect_at(idx - 1).1 > x0;
            let bad_right = idx + 1 < list.len() && x1 > rect_at(idx + 1).0;
            bad_left || bad_right
        });
        if violation {
            // Roll back.
            for &(cell, at) in &old {
                self.pos[cell.index()] = Some(at);
            }
            return Err(DbError::Overlap {
                cell: moves[0].0,
                occupant: moves[0].0,
                rect: SiteRect::new(0, 0, 0, 0),
            });
        }
        // Commit the occupancy index: free every old span first, then
        // occupy every new span (the final configuration is overlap-free,
        // so all occupies land in free gaps).
        for &(cell, at) in &old {
            let c = design.cell(cell);
            for row in at.y..at.y + c.height() {
                let seg = self
                    .segment_at(design, row, at.x)
                    .expect("placed cell must be on segments");
                self.gap_free(seg.index(), at.x, at.x + c.width());
            }
        }
        for &(cell, new_x) in moves {
            let at = self.pos[cell.index()].expect("validated above");
            let c = design.cell(cell);
            for row in at.y..at.y + c.height() {
                let seg = self
                    .segment_at(design, row, new_x)
                    .expect("validated span stays in segment");
                self.gap_occupy(seg.index(), new_x, new_x + c.width());
            }
        }
        // Refresh the interleaved keys at the recorded slots (order is
        // unchanged, so an in-place overwrite keeps the array sorted).
        for &(seg, idx, cell) in &touched {
            let p = self.pos[cell.index()].expect("moved cell stays placed");
            *self.seg_xs.get_mut(seg.index(), idx) = (p.x, p.x + design.cell(cell).width());
        }
        #[cfg(debug_assertions)]
        for &(seg, ..) in &touched {
            self.debug_check_index(design, seg.index());
        }
        Ok(())
    }

    /// Applies a batch of general displacements — row changes and removals
    /// included — transactionally: either every listed cell ends up at its
    /// requested destination (`Some(at)` = placed there, `None` = removed)
    /// or the state is exactly as before the call.
    ///
    /// All listed cells are lifted out first, then the destinations are
    /// placed, so moves within the batch never collide with each other —
    /// the escalation tiers use this to rip up a subwindow and to restore a
    /// rejected chain in one call. Destinations are validated for bounds,
    /// fences, and overlap, but *not* rail parity (the batch is routinely a
    /// rollback to a previously-observed configuration, which relaxed-mode
    /// states satisfy without parity); callers that need parity enforce it
    /// before building the batch.
    ///
    /// Returns a [`DisplaceUndo`] whose move list, fed back into this
    /// method, restores the prior configuration.
    ///
    /// # Errors
    ///
    /// * [`DbError::Invalid`] if a cell is listed twice.
    /// * [`DbError::OutsideSegments`], [`DbError::FenceViolation`], or
    ///   [`DbError::Overlap`] if a destination is not legal once every
    ///   listed cell is lifted; the state is rolled back first.
    pub fn displace_batch(
        &mut self,
        design: &Design,
        moves: &[(CellId, Option<SitePoint>)],
    ) -> Result<DisplaceUndo, DbError> {
        for (i, &(cell, _)) in moves.iter().enumerate() {
            if moves[..i].iter().any(|&(c, _)| c == cell) {
                return Err(DbError::Invalid(format!(
                    "displace_batch lists cell {cell} twice"
                )));
            }
        }
        // Phase 1: lift. Infallible after the duplicate check (unplaced
        // cells are recorded as `None` and simply skipped).
        let mut undo = Vec::with_capacity(moves.len());
        for &(cell, _) in moves {
            let from = if self.is_placed(cell) {
                Some(self.remove(design, cell).expect("checked placed"))
            } else {
                None
            };
            undo.push((cell, from));
        }
        // Phase 2: place destinations; on any failure undo everything.
        for (i, &(cell, to)) in moves.iter().enumerate() {
            let Some(at) = to else { continue };
            if let Err(e) = self.place_ignoring_rails(design, cell, at) {
                for &(c, t) in moves[..i].iter().rev() {
                    if t.is_some() {
                        self.remove(design, c).expect("placed in this phase");
                    }
                }
                for &(c, from) in undo.iter().rev() {
                    if let Some(at) = from {
                        self.place_ignoring_rails(design, c, at)
                            .expect("restoring the prior configuration");
                    }
                }
                return Err(e);
            }
        }
        Ok(DisplaceUndo { moves: undo })
    }

    /// Ids and positions of all placed cells.
    pub fn iter_placed(&self) -> impl Iterator<Item = (CellId, SitePoint)> + '_ {
        self.pos
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (CellId::from_usize(i), p)))
    }

    /// Position of a cell in fractional site units, falling back to the
    /// design's input position when unplaced — the resolver used for HPWL
    /// evaluation during legalization.
    pub fn position_or_input(&self, design: &Design, cell: CellId) -> (f64, f64) {
        match self.pos[cell.index()] {
            Some(p) => (f64::from(p.x), f64::from(p.y)),
            None => design.input_position(cell),
        }
    }

    /// Records `cell`'s current position in the open transaction's log on
    /// first touch. Called by every authoritative position mutation
    /// (`place_impl`, `remove`, `shift_batch`); a closed journal costs one
    /// branch.
    fn note_txn(&mut self, cell: CellId) {
        if !self.txn.active {
            return;
        }
        let i = cell.index();
        if i >= self.txn.touched.len() {
            // Cells appended (ECO insert) after the transaction opened.
            self.txn.touched.resize(self.pos.len().max(i + 1), 0);
        }
        if self.txn.touched[i] != self.txn.epoch {
            self.txn.touched[i] = self.txn.epoch;
            self.txn.log.push((cell, self.pos[i]));
        }
    }

    /// Opens a transaction: from here until [`commit_txn`] or
    /// [`rollback_txn`], every position mutation — direct placements,
    /// removals, MLL realization shifts, escalation displacements —
    /// journals the affected cell's prior position on first touch, so the
    /// whole span can be undone bit-exactly without the caller knowing
    /// which cells the legalizer decided to move.
    ///
    /// Transactions do not nest.
    ///
    /// # Panics
    ///
    /// If a transaction is already open.
    ///
    /// [`commit_txn`]: PlacementState::commit_txn
    /// [`rollback_txn`]: PlacementState::rollback_txn
    pub fn begin_txn(&mut self) {
        assert!(!self.txn.active, "begin_txn: a transaction is already open");
        self.txn.active = true;
        self.txn.epoch = self.txn.epoch.wrapping_add(1);
        if self.txn.epoch == 0 {
            // Epoch wrap: reset the stamps once so stale marks can't alias.
            self.txn.touched.iter_mut().for_each(|e| *e = 0);
            self.txn.epoch = 1;
        }
        if self.txn.touched.len() < self.pos.len() {
            self.txn.touched.resize(self.pos.len(), 0);
        }
        self.txn.log.clear();
    }

    /// True while a transaction is open.
    pub fn txn_active(&self) -> bool {
        self.txn.active
    }

    /// The open transaction's first-touch log so far — each touched cell
    /// with its pre-transaction position, in first-touch order. Empty when
    /// no transaction is open. A read-only peek for commit/reject
    /// decisions (e.g. an ECO displacement budget) ahead of
    /// [`commit_txn`](PlacementState::commit_txn) /
    /// [`rollback_txn`](PlacementState::rollback_txn).
    pub fn txn_log(&self) -> &[(CellId, Option<SitePoint>)] {
        if self.txn.active {
            &self.txn.log
        } else {
            &[]
        }
    }

    /// Closes the open transaction keeping every mutation, and returns the
    /// first-touch log: each touched cell with its position *before* the
    /// transaction (`None` = it was unplaced), in first-touch order.
    ///
    /// # Panics
    ///
    /// If no transaction is open.
    pub fn commit_txn(&mut self) -> Vec<(CellId, Option<SitePoint>)> {
        assert!(self.txn.active, "commit_txn without begin_txn");
        self.txn.active = false;
        std::mem::take(&mut self.txn.log)
    }

    /// Closes the open transaction and restores every touched cell to its
    /// pre-transaction position in one transactional batch, returning the
    /// log that was undone. The restoration is exact: positions, segment
    /// cell lists, interleaved extent keys, and free gaps all match the
    /// state at `begin_txn` (the index is rebuilt logically, which is all
    /// any query observes).
    ///
    /// # Errors
    ///
    /// Propagates database errors only if the log no longer applies —
    /// impossible unless the design itself was mutated incompatibly (e.g.
    /// a touched cell was widened) between `begin_txn` and here.
    ///
    /// # Panics
    ///
    /// If no transaction is open.
    pub fn rollback_txn(
        &mut self,
        design: &Design,
    ) -> Result<Vec<(CellId, Option<SitePoint>)>, DbError> {
        assert!(self.txn.active, "rollback_txn without begin_txn");
        self.txn.active = false;
        let log = std::mem::take(&mut self.txn.log);
        self.displace_batch(design, &log)?;
        Ok(log)
    }

    /// A copy of the full authoritative position record, one entry per
    /// cell (`None` = unplaced). Promoted from the ECO example's ad-hoc
    /// helper; pairs with [`count_moved`](PlacementState::count_moved).
    pub fn snapshot(&self) -> Vec<Option<SitePoint>> {
        self.pos.clone()
    }

    /// Number of cells whose position differs from a prior
    /// [`snapshot`](PlacementState::snapshot). Cells beyond the snapshot's
    /// length (appended since it was taken) count as moved when placed.
    pub fn count_moved(&self, before: &[Option<SitePoint>]) -> usize {
        let common = self.pos.len().min(before.len());
        self.pos[..common]
            .iter()
            .zip(&before[..common])
            .filter(|(now, was)| now != was)
            .count()
            + self.pos[common..].iter().filter(|p| p.is_some()).count()
    }

    /// Full cross-check of the occupancy index against a linear rebuild
    /// from `pos[]`, available in release builds (the debug-only sampled
    /// check runs per mutation; this one runs on demand over every
    /// segment). Returns the first divergence as text — the oracle the
    /// ECO rollback and fuzz harnesses assert with.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first diverged segment.
    pub fn verify_index(&self, design: &Design) -> Result<(), String> {
        for seg in 0..design.floorplan().segments().len() {
            let id = SegId::from_usize(seg);
            let gaps = self.gaps.slice(seg);
            let want = self.recompute_gaps(design, id);
            if gaps != want.as_slice() {
                return Err(format!(
                    "segment {seg}: gap list {gaps:?} != recomputed {want:?}"
                ));
            }
            let xs = self.seg_xs.slice(seg);
            let want = self.recompute_extents(design, id);
            if xs != want.as_slice() {
                return Err(format!(
                    "segment {seg}: extent keys {xs:?} != recomputed {want:?}"
                ));
            }
        }
        Ok(())
    }

    /// Extends the per-cell records to cover cells appended to the design
    /// since this state was created ([`Design::append_movable`]); new
    /// cells start unplaced. No-op when already sized.
    ///
    /// # Panics
    ///
    /// If the design has *fewer* cells than this state tracks — use
    /// [`truncate`](PlacementState::truncate) for that direction.
    pub fn grow(&mut self, design: &Design) {
        let n = design.num_cells();
        assert!(
            n >= self.pos.len(),
            "grow cannot shrink: design has {n} cells, state tracks {}",
            self.pos.len()
        );
        self.pos.resize(n, None);
        self.orient.resize(n, Orient::North);
    }

    /// Drops trailing per-cell records down to `design.num_cells()` — the
    /// inverse of [`grow`](PlacementState::grow) after
    /// [`Design::truncate_cells`] reverted an append.
    ///
    /// # Errors
    ///
    /// [`DbError::Invalid`] if a dropped cell is still placed (remove it
    /// first; truncating a placed cell would corrupt the segment lists).
    pub fn truncate(&mut self, design: &Design) -> Result<(), DbError> {
        let n = design.num_cells();
        if let Some(i) = (n..self.pos.len()).find(|&i| self.pos[i].is_some()) {
            return Err(DbError::Invalid(format!(
                "truncate: cell {} is still placed",
                CellId::from_usize(i)
            )));
        }
        self.pos.truncate(n);
        self.orient.truncate(n);
        Ok(())
    }
}

/// The reversal record of one [`PlacementState::displace_batch`] call.
///
/// Feeding [`DisplaceUndo::moves`] back into `displace_batch` restores the
/// prior configuration exactly (same positions; the occupancy index is
/// rebuilt logically, which is all any query observes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DisplaceUndo {
    /// Each displaced cell with its position *before* the batch
    /// (`None` = it was unplaced).
    pub moves: Vec<(CellId, Option<SitePoint>)>,
}

impl DisplaceUndo {
    /// Rolls the batch back.
    ///
    /// # Errors
    ///
    /// Propagates database errors if the placement was modified since the
    /// batch committed (callers must undo in reverse commit order).
    pub fn rollback(&self, design: &Design, state: &mut PlacementState) -> Result<(), DbError> {
        state.displace_batch(design, &self.moves).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;
    use mrl_geom::PowerRail;

    /// 4 rows x 20 sites, cells: a(3x1), b(2x2), c(4x1), d(2x2, VSS rail).
    fn fixture() -> (Design, CellId, CellId, CellId, CellId) {
        let mut b = DesignBuilder::new(4, 20);
        let a = b.add_cell("a", 3, 1);
        let bb = b.add_cell("b", 2, 2);
        let c = b.add_cell("c", 4, 1);
        let d = b.add_cell_with_rail("d", 2, 2, PowerRail::Vss);
        let design = b.finish().unwrap();
        (design, a, bb, c, d)
    }

    #[test]
    fn place_and_query() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(5, 0)).unwrap();
        assert_eq!(s.position(a), Some(SitePoint::new(0, 0)));
        assert_eq!(s.num_placed(), 2);
        assert_eq!(s.rect_of(&d, b), Some(SiteRect::new(5, 0, 2, 2)));
        // b spans rows 0 and 1, so it is listed in both segments.
        let seg0 = s.segment_at(&d, 0, 0).unwrap();
        let seg1 = s.segment_at(&d, 1, 0).unwrap();
        assert_eq!(s.segment_cells(seg0), &[a, b]);
        assert_eq!(s.segment_cells(seg1), &[b]);
        // The interleaved keys mirror the lists entry for entry.
        assert_eq!(s.segment_extents(seg0), &[(0, 3), (5, 7)]);
        assert_eq!(s.segment_extents(seg1), &[(5, 7)]);
    }

    #[test]
    fn displace_batch_moves_across_rows_and_undoes() {
        let (d, a, b, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(5, 0)).unwrap();
        s.place(&d, c, SitePoint::new(10, 0)).unwrap();
        // Swap a to row 3, remove b, leave c listed but in place.
        let undo = s
            .displace_batch(
                &d,
                &[
                    (a, Some(SitePoint::new(0, 3))),
                    (b, None),
                    (c, Some(SitePoint::new(10, 0))),
                ],
            )
            .unwrap();
        assert_eq!(s.position(a), Some(SitePoint::new(0, 3)));
        assert!(!s.is_placed(b));
        assert_eq!(s.position(c), Some(SitePoint::new(10, 0)));
        undo.rollback(&d, &mut s).unwrap();
        assert_eq!(s.position(a), Some(SitePoint::new(0, 0)));
        assert_eq!(s.position(b), Some(SitePoint::new(5, 0)));
        assert_eq!(s.position(c), Some(SitePoint::new(10, 0)));
        // Segment lists reflect the restored configuration.
        let seg0 = s.segment_at(&d, 0, 0).unwrap();
        assert_eq!(s.segment_cells(seg0), &[a, b, c]);
    }

    #[test]
    fn displace_batch_swaps_within_one_batch() {
        let (d, a, _, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, c, SitePoint::new(4, 0)).unwrap();
        // a(3 wide) and c(4 wide) trade ends; as sequential moves either
        // order would collide, but the batch lifts both first.
        s.displace_batch(
            &d,
            &[
                (a, Some(SitePoint::new(5, 0))),
                (c, Some(SitePoint::new(0, 0))),
            ],
        )
        .unwrap();
        assert_eq!(s.position(a), Some(SitePoint::new(5, 0)));
        assert_eq!(s.position(c), Some(SitePoint::new(0, 0)));
    }

    #[test]
    fn displace_batch_failure_restores_everything() {
        let (d, a, b, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(5, 0)).unwrap();
        s.place(&d, c, SitePoint::new(10, 0)).unwrap();
        // b's destination overlaps c (untouched), so the batch must fail
        // and leave the state exactly as it was — including a, whose own
        // destination was fine and had already been applied.
        let err = s
            .displace_batch(
                &d,
                &[
                    (a, Some(SitePoint::new(16, 2))),
                    (b, Some(SitePoint::new(9, 0))),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Overlap { .. }), "{err}");
        assert_eq!(s.position(a), Some(SitePoint::new(0, 0)));
        assert_eq!(s.position(b), Some(SitePoint::new(5, 0)));
        assert_eq!(s.position(c), Some(SitePoint::new(10, 0)));
        let seg0 = s.segment_at(&d, 0, 0).unwrap();
        assert_eq!(s.segment_cells(seg0), &[a, b, c]);
        assert_eq!(s.segment_extents(seg0), &[(0, 3), (5, 7), (10, 14)]);
    }

    #[test]
    fn displace_batch_rejects_duplicates() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        let err = s
            .displace_batch(
                &d,
                &[
                    (a, Some(SitePoint::new(2, 0))),
                    (a, Some(SitePoint::new(4, 0))),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Invalid(_)));
        assert_eq!(s.position(a), Some(SitePoint::new(0, 0)));
    }

    #[test]
    fn gap_cross_check_runs_only_in_debug_builds() {
        let (d, a, ..) = fixture();
        let before = gap_cross_check_count();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.remove(&d, a).unwrap();
        let delta = gap_cross_check_count() - before;
        if cfg!(debug_assertions) {
            assert!(
                delta >= 2,
                "debug builds must cross-check each mutation (saw {delta})"
            );
        } else {
            assert_eq!(delta, 0, "release builds must compile the cross-check out");
        }
    }

    #[test]
    fn free_gaps_in_matches_linear_clip() {
        let (d, a, b, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        s.place(&d, b, SitePoint::new(8, 0)).unwrap();
        s.place(&d, c, SitePoint::new(13, 0)).unwrap();
        let seg = s.segment_at(&d, 0, 0).unwrap();
        // Gaps on row 0: [0,2), [5,8), [10,13), [17,20).
        for (x0, x1) in [
            (0, 20),
            (3, 12),
            (5, 8),   // exactly one gap
            (2, 5),   // fully occupied window
            (8, 10),  // fully occupied window
            (-5, 1),  // clipped left
            (19, 25), // clipped right
            (7, 11),  // straddles gap boundaries
        ] {
            let want: Vec<(i32, i32)> = s
                .free_gaps(seg)
                .iter()
                .filter_map(|&(g0, g1)| {
                    let (lo, hi) = (g0.max(x0), g1.min(x1));
                    (lo < hi).then_some((g0, g1))
                })
                .collect();
            assert_eq!(
                s.free_gaps_in(seg, x0, x1),
                want.as_slice(),
                "window ({x0},{x1})"
            );
        }
    }

    #[test]
    fn free_gaps_in_excludes_touching_gaps() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(5, 0)).unwrap();
        let seg = s.segment_at(&d, 0, 0).unwrap();
        // Gaps: [0,5), [8,20). A window that only touches them is empty.
        assert!(s.free_gaps_in(seg, 5, 8).is_empty());
        assert_eq!(s.free_gaps_in(seg, 4, 8), &[(0, 5)]);
        assert_eq!(s.free_gaps_in(seg, 5, 9), &[(8, 20)]);
    }

    #[test]
    fn overlap_rejected() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        let err = s.place(&d, b, SitePoint::new(2, 0)).unwrap_err();
        assert!(matches!(err, DbError::Overlap { occupant, .. } if occupant == a));
        // Nothing was half-inserted.
        assert!(!s.is_placed(b));
        assert_eq!(s.segment_cells(s.segment_at(&d, 1, 0).unwrap()), &[]);
    }

    #[test]
    fn abutment_is_legal() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(3, 0)).unwrap();
        assert!(s.is_placed(b));
    }

    #[test]
    fn multi_row_overlap_detected_on_upper_row() {
        let (d, _, b, _, dd) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, b, SitePoint::new(0, 0)).unwrap(); // rows 0-1
                                                       // d is even-height with VSS bottom rail: row 1 is compatible.
        let err = s.place(&d, dd, SitePoint::new(1, 1)).unwrap_err();
        assert!(matches!(err, DbError::Overlap { .. }));
        s.place(&d, dd, SitePoint::new(2, 1)).unwrap();
    }

    #[test]
    fn rail_parity_enforced_for_even_height() {
        let (d, _, b, _, dd) = fixture();
        let mut s = PlacementState::new(&d);
        // b has VDD bottom rail: rows 0 and 2 are compatible, row 1 is not.
        assert!(matches!(
            s.place(&d, b, SitePoint::new(0, 1)),
            Err(DbError::RailMismatch { row: 1, .. })
        ));
        s.place(&d, b, SitePoint::new(0, 2)).unwrap();
        // d has VSS bottom rail: row 0 incompatible, row 1 compatible.
        assert!(matches!(
            s.place(&d, dd, SitePoint::new(10, 0)),
            Err(DbError::RailMismatch { .. })
        ));
        s.place(&d, dd, SitePoint::new(10, 1)).unwrap();
    }

    #[test]
    fn odd_height_cell_flips_instead_of_failing() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 1)).unwrap();
        assert_eq!(s.orient(a), Orient::FlippedSouth);
    }

    #[test]
    fn out_of_floorplan_rejected() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        assert!(matches!(
            s.place(&d, a, SitePoint::new(18, 0)),
            Err(DbError::OutsideSegments { .. })
        ));
        assert!(matches!(
            s.place(&d, a, SitePoint::new(0, 4)),
            Err(DbError::OutsideSegments { .. })
        ));
        assert!(matches!(
            s.place(&d, a, SitePoint::new(-1, 0)),
            Err(DbError::OutsideSegments { .. })
        ));
    }

    #[test]
    fn remove_unlists_from_all_rows() {
        let (d, _, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, b, SitePoint::new(0, 0)).unwrap();
        let at = s.remove(&d, b).unwrap();
        assert_eq!(at, SitePoint::new(0, 0));
        assert!(!s.is_placed(b));
        assert!(s.segment_cells(s.segment_at(&d, 0, 0).unwrap()).is_empty());
        assert!(s.segment_cells(s.segment_at(&d, 1, 0).unwrap()).is_empty());
        assert!(matches!(s.remove(&d, b), Err(DbError::NotPlaced(_))));
    }

    #[test]
    fn double_place_rejected() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        assert!(matches!(
            s.place(&d, a, SitePoint::new(5, 0)),
            Err(DbError::AlreadyPlaced(_))
        ));
    }

    #[test]
    fn cells_intersecting_finds_span_overlaps() {
        let (d, a, b, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap(); // [0,3)
        s.place(&d, b, SitePoint::new(5, 0)).unwrap(); // [5,7)
        s.place(&d, c, SitePoint::new(10, 0)).unwrap(); // [10,14)
        let seg = s.segment_at(&d, 0, 0).unwrap();
        assert_eq!(s.cells_intersecting(&d, seg, 3, 5), &[]);
        assert_eq!(s.cells_intersecting(&d, seg, 2, 6), &[a, b]);
        assert_eq!(s.cells_intersecting(&d, seg, 0, 20), &[a, b, c]);
        assert_eq!(s.cells_intersecting(&d, seg, 13, 14), &[c]);
    }

    #[test]
    fn left_neighbor_respects_edge_touching() {
        let (d, a, _, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap(); // [0,3)
        s.place(&d, c, SitePoint::new(6, 0)).unwrap(); // [6,10)
        let seg = s.segment_at(&d, 0, 0).unwrap();
        assert_eq!(s.left_neighbor(&d, seg, 3), Some(a));
        assert_eq!(s.left_neighbor(&d, seg, 2), None);
        assert_eq!(s.left_neighbor(&d, seg, 15), Some(c));
    }

    #[test]
    fn shift_batch_moves_chain() {
        let (d, a, b, c, _) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(3, 0)).unwrap();
        s.place(&d, c, SitePoint::new(5, 0)).unwrap();
        // Shift the whole chain right by 2 (order preserved).
        s.shift_batch(&d, &[(a, 2), (b, 5), (c, 7)]).unwrap();
        assert_eq!(s.position(b), Some(SitePoint::new(5, 0)));
        let seg = s.segment_at(&d, 0, 0).unwrap();
        assert_eq!(s.segment_cells(seg), &[a, b, c]);
        // The interleaved keys followed the moves.
        assert_eq!(s.segment_extents(seg), &[(2, 5), (5, 7), (7, 11)]);
    }

    #[test]
    fn shift_batch_rejects_overlap_and_rolls_back() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(3, 0)).unwrap();
        let err = s.shift_batch(&d, &[(a, 2)]).unwrap_err();
        assert!(matches!(err, DbError::Overlap { .. }));
        assert_eq!(s.position(a), Some(SitePoint::new(0, 0)));
        let seg = s.segment_at(&d, 0, 0).unwrap();
        assert_eq!(
            s.segment_extents(seg),
            s.recompute_extents(&d, seg).as_slice()
        );
    }

    #[test]
    fn shift_batch_rejects_leaving_segment() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        assert!(matches!(
            s.shift_batch(&d, &[(a, 18)]),
            Err(DbError::OutsideSegments { .. })
        ));
    }

    #[test]
    fn segments_respect_blockages() {
        let mut b = DesignBuilder::new(1, 20);
        let a = b.add_cell("a", 3, 1);
        b.add_blockage(SiteRect::new(5, 0, 3, 1));
        let d = b.finish().unwrap();
        let mut s = PlacementState::new(&d);
        // Spanning the blockage is rejected.
        assert!(matches!(
            s.place(&d, a, SitePoint::new(4, 0)),
            Err(DbError::OutsideSegments { .. })
        ));
        s.place(&d, a, SitePoint::new(8, 0)).unwrap();
        // Distinct segments have distinct ids.
        assert_ne!(
            s.segment_at(&d, 0, 0).unwrap(),
            s.segment_at(&d, 0, 8).unwrap()
        );
        assert_eq!(s.segment_at(&d, 0, 6), None);
    }

    #[test]
    fn position_or_input_falls_back() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        assert_eq!(s.position_or_input(&d, a), (0.0, 0.0));
        s.place(&d, a, SitePoint::new(4, 2)).unwrap();
        assert_eq!(s.position_or_input(&d, a), (4.0, 2.0));
    }

    #[test]
    fn iter_placed_lists_all() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(5, 0)).unwrap();
        let placed: Vec<_> = s.iter_placed().collect();
        assert_eq!(placed.len(), 2);
        assert!(placed.contains(&(a, SitePoint::new(0, 0))));
    }

    /// Every query agrees between the interleaved and the legacy probe
    /// layouts across a mixed mutation sequence.
    #[test]
    fn legacy_layout_is_bit_identical() {
        let (d, a, b, c, dd) = fixture();
        let mut fast = PlacementState::new(&d);
        let mut slow = PlacementState::with_layout(&d, IndexLayout::Legacy);
        assert_eq!(fast.layout(), IndexLayout::Interleaved);
        assert_eq!(slow.layout(), IndexLayout::Legacy);
        for s in [&mut fast, &mut slow] {
            s.place(&d, a, SitePoint::new(2, 0)).unwrap();
            s.place(&d, b, SitePoint::new(8, 0)).unwrap();
            s.place(&d, c, SitePoint::new(13, 2)).unwrap();
            s.place(&d, dd, SitePoint::new(0, 1)).unwrap();
            s.shift_batch(&d, &[(a, 3)]).unwrap();
            s.remove(&d, b).unwrap();
        }
        for si in 0..d.floorplan().segments().len() {
            let seg = SegId::from_usize(si);
            assert_eq!(fast.segment_cells(seg), slow.segment_cells(seg));
            assert_eq!(fast.segment_extents(seg), slow.segment_extents(seg));
            assert_eq!(fast.free_gaps(seg), slow.free_gaps(seg));
            assert_eq!(
                fast.cells_intersecting(&d, seg, 1, 12),
                slow.cells_intersecting(&d, seg, 1, 12)
            );
            assert_eq!(
                fast.left_neighbor(&d, seg, 9),
                slow.left_neighbor(&d, seg, 9)
            );
        }
        // Clones inherit the probe layout.
        assert_eq!(slow.clone().layout(), IndexLayout::Legacy);
    }

    #[test]
    fn index_bytes_counts_the_arenas() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        let empty = s.index_bytes();
        assert!(empty > 0, "gap arena exists before any placement");
        s.place(&d, a, SitePoint::new(0, 0)).unwrap();
        s.place(&d, b, SitePoint::new(5, 0)).unwrap();
        assert!(s.index_bytes() > empty, "cell arenas grew");
    }

    #[test]
    fn extents_match_pos_rebuild_after_mutations() {
        let (d, a, b, c, dd) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        s.place(&d, b, SitePoint::new(8, 0)).unwrap();
        s.place(&d, dd, SitePoint::new(0, 1)).unwrap();
        s.place(&d, c, SitePoint::new(12, 0)).unwrap();
        s.shift_batch(&d, &[(b, 7), (c, 13)]).unwrap();
        s.remove(&d, a).unwrap();
        for si in 0..d.floorplan().segments().len() {
            let seg = SegId::from_usize(si);
            assert_eq!(
                s.segment_extents(seg),
                s.recompute_extents(&d, seg).as_slice(),
                "segment {si}"
            );
        }
    }

    /// Full structural equality of two states through public accessors:
    /// positions, orients, and the occupancy index arenas per segment.
    fn assert_states_identical(d: &Design, a: &PlacementState, b: &PlacementState) {
        assert_eq!(a.snapshot(), b.snapshot(), "pos[] diverged");
        for i in 0..d.num_cells() {
            let id = CellId::from_usize(i);
            assert_eq!(a.orient(id), b.orient(id), "orient of {id} diverged");
        }
        for si in 0..d.floorplan().segments().len() {
            let seg = SegId::from_usize(si);
            assert_eq!(a.segment_cells(seg), b.segment_cells(seg), "seg {si} ids");
            assert_eq!(
                a.segment_extents(seg),
                b.segment_extents(seg),
                "seg {si} extents"
            );
            assert_eq!(a.free_gaps(seg), b.free_gaps(seg), "seg {si} gaps");
        }
    }

    #[test]
    fn txn_rollback_restores_bit_exactly_across_all_mutation_kinds() {
        let (d, a, b, c, dd) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        s.place(&d, b, SitePoint::new(8, 0)).unwrap();
        s.place(&d, dd, SitePoint::new(0, 1)).unwrap();
        let before = s.clone();

        s.begin_txn();
        assert!(s.txn_active());
        s.remove(&d, a).unwrap(); // remove
        s.place(&d, c, SitePoint::new(12, 0)).unwrap(); // place
        s.shift_batch(&d, &[(b, 6)]).unwrap(); // shift
        s.displace_batch(&d, &[(dd, Some(SitePoint::new(14, 1)))])
            .unwrap(); // row move via remove+place
        let log = s.rollback_txn(&d).unwrap();
        assert!(!s.txn_active());
        // First-touch: each cell appears exactly once despite multiple moves.
        let mut ids: Vec<CellId> = log.iter().map(|&(c, _)| c).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), log.len(), "log has duplicate entries: {log:?}");
        assert_states_identical(&d, &before, &s);
        s.verify_index(&d).unwrap();
    }

    #[test]
    fn txn_commit_returns_first_touch_log_and_keeps_mutations() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        s.begin_txn();
        s.shift_batch(&d, &[(a, 3)]).unwrap();
        s.shift_batch(&d, &[(a, 5)]).unwrap();
        s.place(&d, b, SitePoint::new(10, 0)).unwrap();
        let log = s.commit_txn();
        assert_eq!(
            log,
            vec![(a, Some(SitePoint::new(2, 0))), (b, None)],
            "log records pre-transaction positions in first-touch order"
        );
        assert_eq!(s.position(a), Some(SitePoint::new(5, 0)));
        assert_eq!(s.position(b), Some(SitePoint::new(10, 0)));
        // A fresh transaction starts from a clean log.
        s.begin_txn();
        assert!(s.commit_txn().is_empty());
    }

    #[test]
    fn txn_journal_survives_failed_mutations() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        s.place(&d, b, SitePoint::new(8, 0)).unwrap();
        let before = s.clone();
        s.begin_txn();
        s.shift_batch(&d, &[(a, 4)]).unwrap();
        // Overlapping shift fails and internally restores pos[]; the journal
        // must still hold a's original x from the first successful shift.
        assert!(s.shift_batch(&d, &[(a, 8)]).is_err());
        s.rollback_txn(&d).unwrap();
        assert_states_identical(&d, &before, &s);
    }

    #[test]
    fn snapshot_and_count_moved_track_differences() {
        let (d, a, b, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        let snap = s.snapshot();
        assert_eq!(s.count_moved(&snap), 0);
        s.place(&d, b, SitePoint::new(8, 0)).unwrap();
        s.shift_batch(&d, &[(a, 3)]).unwrap();
        assert_eq!(s.count_moved(&snap), 2);
        s.remove(&d, b).unwrap();
        assert_eq!(s.count_moved(&snap), 1, "b is back to unplaced");
    }

    #[test]
    fn verify_index_reports_divergence_text() {
        let (d, a, ..) = fixture();
        let mut s = PlacementState::new(&d);
        s.place(&d, a, SitePoint::new(2, 0)).unwrap();
        s.verify_index(&d).unwrap();
    }
}
