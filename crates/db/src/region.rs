//! Fence regions (ISPD2015-style placement constraints).
//!
//! A *fence* region is a union of rectangles with exclusive semantics
//! (DEF `+ FENCE`): cells assigned to the region must be placed entirely
//! inside the union, and cells not assigned to it must not overlap it at
//! all. The ISPD2015 contest benchmarks the paper evaluates on carry such
//! regions ("Benchmarks with Fence Regions and Routing Blockages").

use mrl_geom::SiteRect;
use std::fmt;

/// A fence region: a named union of rectangles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FenceRegion {
    name: String,
    rects: Vec<SiteRect>,
}

impl FenceRegion {
    /// Creates a fence region from its rectangles.
    ///
    /// # Panics
    ///
    /// Panics if `rects` is empty or contains an empty rectangle.
    pub fn new(name: impl Into<String>, rects: Vec<SiteRect>) -> Self {
        assert!(!rects.is_empty(), "fence region needs at least one rect");
        assert!(
            rects.iter().all(|r| !r.is_empty()),
            "fence rectangles must be non-empty"
        );
        Self {
            name: name.into(),
            rects,
        }
    }

    /// The region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rectangles forming the region.
    pub fn rects(&self) -> &[SiteRect] {
        &self.rects
    }

    /// True if `rect` lies entirely inside the union of the region's
    /// rectangles (covered area equals `rect`'s area; rectangles may abut).
    pub fn covers(&self, rect: &SiteRect) -> bool {
        if rect.is_empty() {
            return true;
        }
        // Sweep row by row: within each spanned row the covered x-ranges
        // must contain [rect.x, rect.right()).
        for row in rect.rows() {
            let row_slice = SiteRect::new(rect.x, row, rect.w, 1);
            let mut spans: Vec<(i32, i32)> = self
                .rects
                .iter()
                .filter_map(|r| r.intersection(&row_slice))
                .map(|r| (r.x, r.right()))
                .collect();
            spans.sort_unstable();
            let mut cursor = rect.x;
            for (a, b) in spans {
                if a > cursor {
                    return false;
                }
                cursor = cursor.max(b);
            }
            if cursor < rect.right() {
                return false;
            }
        }
        true
    }

    /// True if `rect` overlaps any of the region's rectangles.
    pub fn overlaps(&self, rect: &SiteRect) -> bool {
        self.rects.iter().any(|r| r.overlaps(rect))
    }

    /// Bounding box of the region.
    pub fn bounds(&self) -> SiteRect {
        self.rects.iter().fold(SiteRect::new(0, 0, 0, 0), |acc, r| {
            if acc.is_empty() {
                *r
            } else {
                acc.union(r)
            }
        })
    }
}

impl fmt::Display for FenceRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fence {} ({} rects)", self.name, self.rects.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> FenceRegion {
        // ██
        // ████
        FenceRegion::new(
            "L",
            vec![SiteRect::new(0, 0, 8, 1), SiteRect::new(0, 1, 4, 1)],
        )
    }

    #[test]
    fn covers_inside_single_rect() {
        let r = l_shape();
        assert!(r.covers(&SiteRect::new(1, 0, 3, 1)));
        assert!(r.covers(&SiteRect::new(0, 0, 8, 1)));
    }

    #[test]
    fn covers_across_abutting_rects() {
        let r = FenceRegion::new(
            "two",
            vec![SiteRect::new(0, 0, 4, 2), SiteRect::new(4, 0, 4, 2)],
        );
        // Spans the seam.
        assert!(r.covers(&SiteRect::new(2, 0, 4, 2)));
    }

    #[test]
    fn covers_rejects_overhang() {
        let r = l_shape();
        assert!(!r.covers(&SiteRect::new(6, 0, 4, 1))); // x overhang
        assert!(!r.covers(&SiteRect::new(2, 0, 3, 2))); // row 1 only 0..4
        assert!(r.covers(&SiteRect::new(2, 0, 2, 2)));
        assert!(!r.covers(&SiteRect::new(0, 1, 5, 1)));
    }

    #[test]
    fn overlaps_detects_any_intersection() {
        let r = l_shape();
        assert!(r.overlaps(&SiteRect::new(7, 0, 3, 1)));
        assert!(!r.overlaps(&SiteRect::new(8, 0, 2, 1)));
        assert!(!r.overlaps(&SiteRect::new(4, 1, 2, 1)));
    }

    #[test]
    fn bounds_unions_rects() {
        assert_eq!(l_shape().bounds(), SiteRect::new(0, 0, 8, 2));
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(l_shape().to_string(), "fence L (2 rects)");
    }

    #[test]
    #[should_panic(expected = "at least one rect")]
    fn empty_region_panics() {
        let _ = FenceRegion::new("x", vec![]);
    }
}
