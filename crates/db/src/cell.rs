//! Cell instances: movable standard cells, fixed macros, blockages.

use mrl_geom::PowerRail;
use std::fmt;

/// How an instance participates in legalization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A standard cell the legalizer may move.
    #[default]
    Movable,
    /// A pre-placed macro; its footprint blocks placement sites.
    Fixed,
    /// A placement blockage; like `Fixed` but carries no pins and no name in
    /// physical formats.
    Blockage,
}

impl CellKind {
    /// True for [`CellKind::Movable`].
    pub const fn is_movable(self) -> bool {
        matches!(self, CellKind::Movable)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CellKind::Movable => "movable",
            CellKind::Fixed => "fixed",
            CellKind::Blockage => "blockage",
        })
    }
}

/// A cell instance.
///
/// Dimensions are in site units: `width` in site widths, `height` in rows.
/// Per Section 2 of the paper, all cell widths are multiples of the site
/// width and all cell heights are multiples of the row height, so integers
/// suffice. `rail` is the polarity of the rail on the cell's bottom edge in
/// its unflipped orientation; it drives the alternate-row constraint for
/// even-height cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    name: String,
    width: i32,
    height: i32,
    rail: PowerRail,
    kind: CellKind,
}

impl Cell {
    /// Creates a cell instance.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not strictly positive.
    pub fn new(
        name: impl Into<String>,
        width: i32,
        height: i32,
        rail: PowerRail,
        kind: CellKind,
    ) -> Self {
        assert!(width > 0, "cell width must be positive");
        assert!(height > 0, "cell height must be positive");
        Self {
            name: name.into(),
            width,
            height,
            rail,
            kind,
        }
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in site widths.
    pub const fn width(&self) -> i32 {
        self.width
    }

    /// Replaces the width — only [`Design::set_cell_width`] calls this,
    /// after validating the new footprint against the floorplan.
    ///
    /// [`Design::set_cell_width`]: crate::Design::set_cell_width
    pub(crate) fn set_width(&mut self, width: i32) {
        assert!(width > 0, "cell width must be positive");
        self.width = width;
    }

    /// Height in rows.
    pub const fn height(&self) -> i32 {
        self.height
    }

    /// Bottom-edge rail polarity in the unflipped orientation.
    pub const fn rail(&self) -> PowerRail {
        self.rail
    }

    /// How the instance participates in legalization.
    pub const fn kind(&self) -> CellKind {
        self.kind
    }

    /// True if the legalizer may move this instance.
    pub const fn is_movable(&self) -> bool {
        self.kind.is_movable()
    }

    /// True if the cell spans more than one row.
    pub const fn is_multi_row(&self) -> bool {
        self.height > 1
    }

    /// Footprint area in sites.
    pub fn area(&self) -> i64 {
        i64::from(self.width) * i64::from(self.height)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} {})",
            self.name, self.width, self.height, self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_construction() {
        let c = Cell::new("ff_1", 4, 2, PowerRail::Vss, CellKind::Movable);
        assert_eq!(c.name(), "ff_1");
        assert_eq!(c.width(), 4);
        assert_eq!(c.height(), 2);
        assert_eq!(c.rail(), PowerRail::Vss);
        assert!(c.is_movable());
        assert!(c.is_multi_row());
        assert_eq!(c.area(), 8);
    }

    #[test]
    fn single_row_cell_is_not_multi_row() {
        let c = Cell::new("inv", 1, 1, PowerRail::Vdd, CellKind::Movable);
        assert!(!c.is_multi_row());
    }

    #[test]
    fn fixed_and_blockage_are_immovable() {
        let m = Cell::new("ram", 50, 8, PowerRail::Vdd, CellKind::Fixed);
        let b = Cell::new("blk", 10, 2, PowerRail::Vdd, CellKind::Blockage);
        assert!(!m.is_movable());
        assert!(!b.is_movable());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = Cell::new("bad", 0, 1, PowerRail::Vdd, CellKind::Movable);
    }

    #[test]
    #[should_panic(expected = "height must be positive")]
    fn zero_height_panics() {
        let _ = Cell::new("bad", 1, 0, PowerRail::Vdd, CellKind::Movable);
    }

    #[test]
    fn display_mentions_dimensions() {
        let c = Cell::new("a", 3, 1, PowerRail::Vdd, CellKind::Movable);
        assert_eq!(c.to_string(), "a (3x1 movable)");
    }
}
