//! A tiny micro-benchmark harness replacing `criterion` in the offline
//! build. Each `[[bench]]` target is a plain `fn main()` (`harness = false`)
//! that builds a [`Bench`] and calls [`Bench::run`] per case.
//!
//! The harness warms up, then takes `samples` timed samples of `iters`
//! iterations each and reports min / median / mean per iteration. Output is
//! one aligned text line per case, so `cargo bench` stays human-readable and
//! grep-able without any report directory.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness settings for one group of cases.
#[derive(Clone, Debug)]
pub struct Bench {
    /// Group label printed as a prefix of every case line.
    pub group: String,
    /// Timed samples per case.
    pub samples: usize,
    /// Warm-up iterations before sampling.
    pub warmup_iters: usize,
    /// Target wall-clock per sample; iteration count is derived from it.
    pub sample_time: Duration,
}

impl Bench {
    /// A new group with defaults suited to sub-millisecond cases.
    pub fn new(group: impl Into<String>) -> Self {
        Bench {
            group: group.into(),
            samples: 12,
            warmup_iters: 3,
            sample_time: Duration::from_millis(60),
        }
    }

    /// Lower sampling effort for expensive (multi-second) cases.
    pub fn slow(mut self) -> Self {
        self.samples = 5;
        self.warmup_iters = 1;
        self.sample_time = Duration::from_millis(1);
        self
    }

    /// Time `f`, printing one result line; returns the median per-iteration
    /// time so callers can compute ratios (e.g. parallel speedup).
    pub fn run<T>(&self, case: &str, mut f: impl FnMut() -> T) -> Duration {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        // Calibrate how many iterations fit in one sample window.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().max(Duration::from_nanos(50));
        let iters = (self.sample_time.as_nanos() / one.as_nanos()).clamp(1, 1 << 20) as usize;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "{:<44} min {:>12} median {:>12} mean {:>12} ({} iters x {} samples)",
            format!("{}/{case}", self.group),
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            iters,
            self.samples,
        );
        median
    }
}

/// Human-readable duration with ns/µs/ms/s autoscaling.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_a_sane_median() {
        let b = Bench {
            group: "t".into(),
            samples: 3,
            warmup_iters: 1,
            sample_time: Duration::from_micros(200),
        };
        let mut acc = 0u64;
        let med = b.run("spin", || {
            acc = acc.wrapping_add(1);
            std::hint::black_box(acc)
        });
        assert!(med < Duration::from_millis(10));
    }

    #[test]
    fn formats_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
