//! Hardware performance counters via `perf_event_open(2)`.
//!
//! `bench_legalize --perf-counters` uses this to record cache-miss,
//! branch-miss, and IPC numbers alongside throughput, so the 64k→1M
//! per-op cliff (DESIGN.md §9) is a tracked metric instead of a one-off
//! `perf stat` observation. No external crates: the syscall, `ioctl`,
//! `read`, and `close` are declared directly against the C library.
//!
//! Counter access is frequently unavailable — non-Linux hosts, containers
//! without `CAP_PERFMON`, `kernel.perf_event_paranoid >= 2` with no
//! privilege, or PMU-less VMs. Every entry point degrades to `None`
//! rather than failing the benchmark; callers emit whatever subset of
//! counters actually opened.
//!
//! Counters are opened per-thread (pid 0, any CPU), unpinned, so the
//! kernel may multiplex them on PMUs with few programmable slots. Reads
//! therefore use `PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING}` and scale
//! each value by `enabled/running` — the standard correction, exact when
//! no multiplexing occurred (`enabled == running`).

// The crate is otherwise `deny(unsafe_code)`; the raw syscall interface
// below is the one place that needs FFI, and every unsafe block is a thin
// libc call with checked arguments.
#![allow(unsafe_code)]

/// One measured counter set, in program order of the fields. A field is
/// `None` when that counter could not be opened (or scaled to nonsense,
/// e.g. the kernel never scheduled it).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerfSample {
    /// CPU cycles while the measured section ran.
    pub cycles: Option<u64>,
    /// Retired instructions.
    pub instructions: Option<u64>,
    /// Cache references (last-level, architecture-defined).
    pub cache_references: Option<u64>,
    /// Cache misses (last-level, architecture-defined).
    pub cache_misses: Option<u64>,
    /// Retired branch instructions.
    pub branch_instructions: Option<u64>,
    /// Mispredicted branches.
    pub branch_misses: Option<u64>,
}

impl PerfSample {
    /// Instructions per cycle, when both counters ran.
    pub fn ipc(&self) -> Option<f64> {
        match (self.instructions, self.cycles) {
            (Some(i), Some(c)) if c > 0 => Some(i as f64 / c as f64),
            _ => None,
        }
    }

    /// Cache-miss percentage of cache references, when both counters ran.
    pub fn cache_miss_pct(&self) -> Option<f64> {
        match (self.cache_misses, self.cache_references) {
            (Some(m), Some(r)) if r > 0 => Some(100.0 * m as f64 / r as f64),
            _ => None,
        }
    }

    /// Branch-miss percentage of branch instructions, when both ran.
    pub fn branch_miss_pct(&self) -> Option<f64> {
        match (self.branch_misses, self.branch_instructions) {
            (Some(m), Some(b)) if b > 0 => Some(100.0 * m as f64 / b as f64),
            _ => None,
        }
    }

    /// True if at least one counter produced a value.
    pub fn any(&self) -> bool {
        self.cycles.is_some()
            || self.instructions.is_some()
            || self.cache_references.is_some()
            || self.cache_misses.is_some()
            || self.branch_instructions.is_some()
            || self.branch_misses.is_some()
    }
}

/// A set of open hardware counters measuring the current thread.
///
/// [`PerfCounters::start`] opens and enables them; [`PerfCounters::stop`]
/// reads and closes. Dropping without `stop` closes the descriptors.
#[derive(Debug)]
pub struct PerfCounters {
    imp: imp::Counters,
}

impl PerfCounters {
    /// Opens the standard counter set and starts counting on the calling
    /// thread. Returns `None` when no counter at all could be opened —
    /// unsupported OS/arch, sandboxed container, locked-down
    /// `perf_event_paranoid` — in which case the benchmark simply runs
    /// unmeasured.
    pub fn start() -> Option<Self> {
        imp::Counters::start().map(|imp| Self { imp })
    }

    /// Stops counting and returns whatever the hardware measured.
    pub fn stop(self) -> PerfSample {
        self.imp.stop()
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::PerfSample;
    use std::os::raw::{c_char, c_int, c_long, c_uint, c_ulong};

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        fn read(fd: c_int, buf: *mut c_char, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: c_long = 241;

    const PERF_TYPE_HARDWARE: u32 = 0;
    /// `PERF_COUNT_HW_*` configs in `PerfSample` field order.
    const CONFIGS: [u64; 6] = [0, 1, 2, 3, 4, 5];

    const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1;
    const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 2;

    /// Flag bits of `perf_event_attr`: disabled | exclude_kernel |
    /// exclude_hv (bits 0, 5, 6).
    const ATTR_FLAGS: u64 = 1 | (1 << 5) | (1 << 6);

    const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
    const PERF_EVENT_IOC_DISABLE: c_ulong = 0x2401;
    const PERF_EVENT_IOC_RESET: c_ulong = 0x2403;

    /// `perf_event_attr`, first 64 bytes (`PERF_ATTR_SIZE_VER0`) — all the
    /// kernel needs for plain counting events; it zero-extends the rest.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        bp_addr: u64,
    }

    #[derive(Debug)]
    pub(super) struct Counters {
        /// `(field index, fd)` for each counter that opened.
        fds: Vec<(usize, c_int)>,
    }

    impl Counters {
        pub(super) fn start() -> Option<Self> {
            let mut fds = Vec::new();
            for (slot, &config) in CONFIGS.iter().enumerate() {
                let attr = PerfEventAttr {
                    type_: PERF_TYPE_HARDWARE,
                    size: std::mem::size_of::<PerfEventAttr>() as u32,
                    config,
                    sample_period: 0,
                    sample_type: 0,
                    read_format: PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING,
                    flags: ATTR_FLAGS,
                    wakeup_events: 0,
                    bp_type: 0,
                    bp_addr: 0,
                };
                // pid 0 = this thread, cpu -1 = any, no group, no flags.
                let fd = unsafe {
                    syscall(
                        SYS_PERF_EVENT_OPEN,
                        &attr as *const PerfEventAttr,
                        0 as c_int,
                        -1 as c_int,
                        -1 as c_int,
                        0 as c_ulong,
                    )
                } as c_int;
                if fd >= 0 {
                    fds.push((slot, fd));
                }
            }
            if fds.is_empty() {
                return None;
            }
            for &(_, fd) in &fds {
                unsafe {
                    ioctl(fd, PERF_EVENT_IOC_RESET, 0 as c_uint);
                    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0 as c_uint);
                }
            }
            Some(Counters { fds })
        }

        pub(super) fn stop(self) -> PerfSample {
            let mut out = PerfSample::default();
            let slots: [&mut Option<u64>; 6] = {
                let PerfSample {
                    cycles,
                    instructions,
                    cache_references,
                    cache_misses,
                    branch_instructions,
                    branch_misses,
                } = &mut out;
                [
                    cycles,
                    instructions,
                    cache_references,
                    cache_misses,
                    branch_instructions,
                    branch_misses,
                ]
            };
            for &(_, fd) in &self.fds {
                unsafe { ioctl(fd, PERF_EVENT_IOC_DISABLE, 0 as c_uint) };
            }
            for &(slot, fd) in &self.fds {
                // value, time_enabled, time_running.
                let mut buf = [0u64; 3];
                let want = std::mem::size_of_val(&buf);
                let got = unsafe { read(fd, buf.as_mut_ptr().cast::<c_char>(), want) };
                if got as usize == want && buf[2] > 0 {
                    // Scale for multiplexing; exact when enabled==running.
                    let scaled = (buf[0] as f64 * (buf[1] as f64 / buf[2] as f64)) as u64;
                    *slots[slot] = Some(scaled);
                }
            }
            out
        }
    }

    impl Drop for Counters {
        fn drop(&mut self) {
            for &(_, fd) in &self.fds {
                unsafe { close(fd) };
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::PerfSample;

    /// Stub for platforms without `perf_event_open`: counters never open.
    #[derive(Debug)]
    pub(super) struct Counters {}

    impl Counters {
        pub(super) fn start() -> Option<Self> {
            None
        }

        pub(super) fn stop(self) -> PerfSample {
            PerfSample::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_stop_never_panics() {
        // Counter availability depends on the host (containers commonly
        // deny perf_event_open); both outcomes are valid, neither panics.
        match PerfCounters::start() {
            Some(c) => {
                let mut acc = 0u64;
                for i in 0..100_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                assert!(acc != 1, "keep the loop alive");
                let sample = c.stop();
                // If counters opened, the busy loop must have cost cycles.
                if let Some(cycles) = sample.cycles {
                    assert!(cycles > 0);
                }
                if sample.any() {
                    // Derived ratios are finite when present.
                    if let Some(ipc) = sample.ipc() {
                        assert!(ipc.is_finite() && ipc > 0.0);
                    }
                }
            }
            None => {
                let s = PerfSample::default();
                assert!(!s.any());
                assert_eq!(s.ipc(), None);
                assert_eq!(s.cache_miss_pct(), None);
            }
        }
    }

    #[test]
    fn ratios_compute_from_raw_counts() {
        let s = PerfSample {
            cycles: Some(2_000),
            instructions: Some(5_000),
            cache_references: Some(1_000),
            cache_misses: Some(250),
            branch_instructions: Some(800),
            branch_misses: Some(8),
        };
        assert_eq!(s.ipc(), Some(2.5));
        assert_eq!(s.cache_miss_pct(), Some(25.0));
        assert_eq!(s.branch_miss_pct(), Some(1.0));
        assert!(s.any());
    }
}
