//! Experiment harness regenerating the paper's evaluation.
//!
//! The paper's evaluation is one big table (Table 1) — per benchmark:
//! average displacement in site widths, relative HPWL change, and runtime,
//! for the ILP baseline and for MLL ("Ours"), once with power-rail
//! alignment enforced and once relaxed — plus a prose experiment deriving
//! the rail-relaxation gains. This crate provides:
//!
//! * [`run_suite`] / [`run_benchmark`] — generate a synthetic clone of a
//!   Table 1 benchmark and run any [`Method`] on it, measuring the three
//!   reported quantities,
//! * [`table1_rows`] — format results like the paper's table,
//! * binaries `table1`, `power_relax`, and `ablation` (see `src/bin`),
//! * Criterion benches for the complexity claims (`benches/`).
//!
//! Absolute numbers differ from the paper (different global placer,
//! synthetic netlists, different machine); the comparisons the paper
//! makes — ILP slightly better displacement, MLL orders of magnitude
//! faster, small HPWL impact, relaxation helping displacement — are
//! reproduced. See `EXPERIMENTS.md` at the workspace root.

// `deny` rather than `forbid`: the perf-counter module (src/perf.rs) holds
// the crate's one `allow(unsafe_code)` for the raw `perf_event_open` FFI.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use mrl_baselines::{AbacusLegalizer, IlpLegalizer, LocalSolver, TetrisLegalizer};
use mrl_db::{Design, PlacementState};
use mrl_legalize::{EvalMode, Legalizer, LegalizerConfig, PowerRailMode};
use mrl_metrics::{check_legal, displacement_stats, hpwl_change, RailCheck, Table};
use mrl_synth::{generate, BenchmarkSpec, GeneratorConfig};
use std::time::Instant;

pub mod json;
pub mod perf;
pub mod timer;

use json::Json;

/// Serialize a slice of [`BenchResult`]s as a JSON array (the `--json`
/// artifact of the `table1` bin).
pub fn results_to_json(results: &[BenchResult]) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|r| {
                let mut o = Json::obj();
                o.set("name", r.name.clone())
                    .set("seed", r.seed)
                    .set("single_cells", r.single_cells)
                    .set("double_cells", r.double_cells)
                    .set("density", r.density)
                    .set("gp_hpwl_m", r.gp_hpwl_m)
                    .set(
                        "results",
                        Json::Arr(
                            r.results
                                .iter()
                                .map(|m| {
                                    let mut mo = Json::obj();
                                    mo.set("method", m.method.label())
                                        .set("aligned", m.aligned)
                                        .set("disp_sites", m.disp_sites)
                                        .set("hpwl_delta", m.hpwl_delta)
                                        .set("runtime_s", m.runtime_s)
                                        .set("legal", m.legal)
                                        .set("failed", m.failed);
                                    mo
                                })
                                .collect(),
                        ),
                    );
                o
            })
            .collect(),
    )
}

/// A legalization method under measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's MLL algorithm (approximate evaluation, the default).
    Mll,
    /// MLL with exact insertion-point evaluation (ablation).
    MllExact,
    /// The ILP-optimal baseline via exhaustive-exact local solves (same
    /// optimum as the MILP, practical at scale).
    IlpOracle,
    /// The ILP-optimal baseline via the actual MILP solver (slow;
    /// faithful to the paper's `lpsolve` setup).
    IlpMilp,
    /// Abacus two-step baseline.
    Abacus,
    /// Greedy Tetris baseline.
    Tetris,
}

impl Method {
    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::Mll => "Ours",
            Method::MllExact => "Ours(exact)",
            Method::IlpOracle => "ILP",
            Method::IlpMilp => "ILP(milp)",
            Method::Abacus => "Abacus",
            Method::Tetris => "Tetris",
        }
    }
}

/// Result of one (benchmark, method, rail-mode) measurement.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method measured.
    pub method: Method,
    /// Rail mode used.
    pub aligned: bool,
    /// Average displacement in site widths (Table 1 "Disp. (sites)").
    pub disp_sites: f64,
    /// Relative HPWL change vs the GP input (Table 1 "ΔHPWL").
    pub hpwl_delta: f64,
    /// Wall-clock legalization runtime in seconds.
    pub runtime_s: f64,
    /// Whether the result passed the independent legality checker.
    pub legal: bool,
    /// Whether the method failed to place every cell.
    pub failed: bool,
}

/// One benchmark row: design statistics plus per-method results.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Generator / legalizer seed the measurements were taken with. Always
    /// recorded in emitted JSON so every artifact is replayable.
    pub seed: u64,
    /// Single-row cells in the generated clone.
    pub single_cells: usize,
    /// Double-row cells in the generated clone.
    pub double_cells: usize,
    /// Density of the generated clone.
    pub density: f64,
    /// HPWL of the synthetic GP input, in meters.
    pub gp_hpwl_m: f64,
    /// Measurements.
    pub results: Vec<MethodResult>,
}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Benchmark scale divisor (1.0 = paper-sized designs).
    pub scale: f64,
    /// Generator / legalizer seed.
    pub seed: u64,
    /// Methods to run.
    pub methods: Vec<Method>,
    /// Rail modes to run (true = aligned).
    pub rail_modes: Vec<bool>,
    /// Skip `IlpMilp` on designs with more movable cells than this (the
    /// MILP engine is faithful but very slow, like the paper's 185×).
    pub ilp_milp_max_cells: usize,
    /// Fence regions per generated design (extension experiments).
    pub fence_regions: usize,
    /// Fraction of 3–4-row tall cells (extension experiments).
    pub tall_fraction: f64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 1,
            methods: vec![Method::IlpOracle, Method::Mll],
            rail_modes: vec![true, false],
            ilp_milp_max_cells: 3_000,
            fence_regions: 0,
            tall_fraction: 0.0,
        }
    }
}

/// Runs one method on a fresh placement of `design`.
pub fn run_method(design: &Design, method: Method, aligned: bool, seed: u64) -> MethodResult {
    let rail_mode = if aligned {
        PowerRailMode::Aligned
    } else {
        PowerRailMode::Relaxed
    };
    let cfg = LegalizerConfig::default()
        .with_rail_mode(rail_mode)
        .with_seed(seed);
    let mut state = PlacementState::new(design);
    let start = Instant::now();
    let outcome = match method {
        Method::Mll => Legalizer::new(cfg).legalize(design, &mut state),
        Method::MllExact => {
            Legalizer::new(cfg.with_eval_mode(EvalMode::Exact)).legalize(design, &mut state)
        }
        Method::IlpOracle => {
            IlpLegalizer::new(cfg, LocalSolver::ExhaustiveExact).legalize(design, &mut state)
        }
        Method::IlpMilp => IlpLegalizer::new(cfg, LocalSolver::Milp).legalize(design, &mut state),
        Method::Abacus => AbacusLegalizer::with_rail_mode(rail_mode).legalize(design, &mut state),
        Method::Tetris => TetrisLegalizer::with_rail_mode(rail_mode).legalize(design, &mut state),
    };
    let runtime_s = start.elapsed().as_secs_f64();
    let failed = outcome.is_err();
    let rails = if aligned {
        RailCheck::Enforce
    } else {
        RailCheck::Ignore
    };
    let legal = !failed && check_legal(design, &state, rails).is_ok();
    let disp = displacement_stats(design, &state);
    let hpwl = hpwl_change(design, &state);
    MethodResult {
        method,
        aligned,
        disp_sites: disp.avg_sites,
        hpwl_delta: hpwl.delta(),
        runtime_s,
        legal,
        failed,
    }
}

/// Generates the synthetic clone of `spec` and measures every configured
/// method/rail-mode combination.
pub fn run_benchmark(spec: &BenchmarkSpec, cfg: &HarnessConfig) -> BenchResult {
    let gen_cfg = GeneratorConfig::default()
        .with_scale(cfg.scale)
        .with_seed(cfg.seed)
        .with_fence_regions(cfg.fence_regions)
        .with_tall_cells(cfg.tall_fraction);
    let design = generate(spec, &gen_cfg).expect("generation cannot fail for suite specs");
    let singles = design
        .movable_cells()
        .filter(|&c| design.cell(c).height() == 1)
        .count();
    let doubles = design.num_movable() - singles;
    let gp_hpwl_m = mrl_metrics::hpwl_of_input(&design) * 1e-6;
    let mut results = Vec::new();
    for &aligned in &cfg.rail_modes {
        for &method in &cfg.methods {
            if method == Method::IlpMilp && design.num_movable() > cfg.ilp_milp_max_cells {
                continue;
            }
            results.push(run_method(&design, method, aligned, cfg.seed));
        }
    }
    BenchResult {
        name: spec.name.clone(),
        seed: cfg.seed,
        single_cells: singles,
        double_cells: doubles,
        density: design.density(),
        gp_hpwl_m,
        results,
    }
}

/// Runs the harness over a list of specs.
pub fn run_suite(specs: &[BenchmarkSpec], cfg: &HarnessConfig) -> Vec<BenchResult> {
    specs.iter().map(|s| run_benchmark(s, cfg)).collect()
}

/// Formats results like the paper's Table 1: one row per benchmark, one
/// column group per (method, rail-mode).
pub fn table1_rows(results: &[BenchResult], methods: &[Method], aligned: bool) -> Table {
    let mut header: Vec<String> = vec![
        "Benchmark".into(),
        "#S.Cell".into(),
        "#D.Cell".into(),
        "Density".into(),
        "GP HPWL(m)".into(),
    ];
    for m in methods {
        header.push(format!("Disp {}", m.label()));
        header.push(format!("dHPWL {}", m.label()));
        header.push(format!("Time(s) {}", m.label()));
    }
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers);
    let mut sums: Vec<(f64, f64, f64, usize)> = vec![(0.0, 0.0, 0.0, 0); methods.len()];
    for r in results {
        let mut row: Vec<String> = vec![
            r.name.clone(),
            r.single_cells.to_string(),
            r.double_cells.to_string(),
            format!("{:.2}", r.density),
            format!("{:.3}", r.gp_hpwl_m),
        ];
        for (mi, m) in methods.iter().enumerate() {
            match r
                .results
                .iter()
                .find(|x| x.method == *m && x.aligned == aligned)
            {
                Some(x) if !x.failed => {
                    row.push(format!("{:.2}", x.disp_sites));
                    row.push(format!("{:.2}%", x.hpwl_delta * 100.0));
                    row.push(format!("{:.1}", x.runtime_s));
                    let s = &mut sums[mi];
                    s.0 += x.disp_sites;
                    s.1 += x.hpwl_delta;
                    s.2 += x.runtime_s;
                    s.3 += 1;
                }
                Some(_) => {
                    row.push("fail".into());
                    row.push("fail".into());
                    row.push("fail".into());
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        table.row(&row);
    }
    // Averages row, as in the paper.
    let mut avg: Vec<String> = vec!["Avg.".into(), "".into(), "".into(), "".into(), "".into()];
    for (d, h, t, n) in &sums {
        if *n > 0 {
            avg.push(format!("{:.2}", d / *n as f64));
            avg.push(format!("{:.2}%", h / *n as f64 * 100.0));
            avg.push(format!("{:.1}", t / *n as f64));
        } else {
            avg.push("-".into());
            avg.push("-".into());
            avg.push("-".into());
        }
    }
    table.row(&avg);
    // Normalized averages ("N. Avg." in the paper): each method's metric
    // relative to the last listed method (the paper normalizes to "Ours").
    if let Some((bd, bh, bt, bn)) = sums.last().copied() {
        if bn > 0 {
            let mut norm: Vec<String> =
                vec!["N.Avg.".into(), "".into(), "".into(), "".into(), "".into()];
            let base = (bd / bn as f64, bh / bn as f64, bt / bn as f64);
            for (d, h, t, n) in &sums {
                if *n > 0 {
                    let ratio = |v: f64, b: f64| {
                        if b.abs() > 1e-12 {
                            format!("{:.2}", v / b)
                        } else {
                            "-".into()
                        }
                    };
                    norm.push(ratio(d / *n as f64, base.0));
                    norm.push(ratio((h / *n as f64).abs(), base.1.abs()));
                    norm.push(ratio(t / *n as f64, base.2));
                } else {
                    norm.push("-".into());
                    norm.push("-".into());
                    norm.push("-".into());
                }
            }
            table.row(&norm);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_method_measures_mll() {
        let spec = BenchmarkSpec::new("harness_test", 200, 20, 0.5, 0.0);
        let design = generate(&spec, &GeneratorConfig::default()).unwrap();
        let r = run_method(&design, Method::Mll, true, 1);
        assert!(!r.failed);
        assert!(r.legal);
        assert!(r.disp_sites >= 0.0);
        assert!(r.runtime_s >= 0.0);
    }

    #[test]
    fn run_benchmark_covers_requested_methods() {
        let spec = BenchmarkSpec::new("harness_bm", 150, 15, 0.4, 0.0);
        let cfg = HarnessConfig {
            methods: vec![Method::Mll, Method::IlpOracle],
            rail_modes: vec![true],
            ..HarnessConfig::default()
        };
        let r = run_benchmark(&spec, &cfg);
        assert_eq!(r.results.len(), 2);
        assert!(r.results.iter().all(|x| x.legal));
    }

    #[test]
    fn milp_skipped_over_size_cap() {
        let spec = BenchmarkSpec::new("harness_cap", 150, 15, 0.4, 0.0);
        let cfg = HarnessConfig {
            methods: vec![Method::IlpMilp],
            rail_modes: vec![true],
            ilp_milp_max_cells: 10,
            ..HarnessConfig::default()
        };
        let r = run_benchmark(&spec, &cfg);
        assert!(r.results.is_empty());
    }

    #[test]
    fn json_artifact_records_the_seed() {
        let spec = BenchmarkSpec::new("harness_seed", 120, 12, 0.4, 0.0);
        let cfg = HarnessConfig {
            methods: vec![Method::Mll],
            rail_modes: vec![true],
            seed: 42,
            ..HarnessConfig::default()
        };
        let results = run_suite(&[spec], &cfg);
        assert_eq!(results[0].seed, 42);
        let json = results_to_json(&results).pretty();
        assert!(json.contains("\"seed\": 42"), "{json}");
    }

    #[test]
    fn table_renders_rows_and_average() {
        let spec = BenchmarkSpec::new("harness_tbl", 120, 12, 0.4, 0.0);
        let cfg = HarnessConfig {
            methods: vec![Method::Mll],
            rail_modes: vec![true],
            ..HarnessConfig::default()
        };
        let results = run_suite(&[spec], &cfg);
        let t = table1_rows(&results, &[Method::Mll], true);
        let s = t.to_string();
        assert!(s.contains("harness_tbl"));
        assert!(s.contains("Avg."));
        assert!(s.contains("N.Avg."));
        assert!(s.contains("Disp Ours"));
    }
}
