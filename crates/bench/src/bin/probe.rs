//! Diagnostic probe for a single benchmark run (not part of the paper's
//! experiments): prints placement progress details for one configuration.
//!
//! ```text
//! probe [--bench NAME] [--scale N] [--seed S] [--retries K] [--relaxed]
//! ```

use mrl_db::PlacementState;
use mrl_legalize::{Legalizer, LegalizerConfig, PowerRailMode};
use mrl_metrics::{check_legal, displacement_stats, RailCheck};
use mrl_synth::{generate, ispd2015_suite, GeneratorConfig};

fn main() {
    let mut name = String::from("des_perf_1");
    let mut scale = 20.0;
    let mut seed = 1u64;
    let mut retries = 64u32;
    let mut relaxed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |n: &str| args.next().unwrap_or_else(|| panic!("{n} needs a value"));
        match arg.as_str() {
            "--bench" => name = val("--bench"),
            "--scale" => scale = val("--scale").parse().unwrap(),
            "--seed" => seed = val("--seed").parse().unwrap(),
            "--retries" => retries = val("--retries").parse().unwrap(),
            "--relaxed" => relaxed = true,
            other => panic!("unknown argument {other}"),
        }
    }
    let spec = ispd2015_suite()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known benchmark");
    let mut gen_cfg = GeneratorConfig::default().with_scale(scale).with_seed(seed);
    if std::env::var_os("MRL_PROBE_NO_MACROS").is_some() {
        gen_cfg.macro_fraction = 0.0;
    }
    let design = generate(&spec, &gen_cfg).expect("generate");
    println!(
        "{}: {} movable, density {:.3}, {} rows x {} sites, capacity {}",
        design.name(),
        design.num_movable(),
        design.density(),
        design.floorplan().num_rows(),
        design.floorplan().bounds().w,
        design.floorplan().capacity(),
    );
    let mut cfg = LegalizerConfig::default().with_seed(seed);
    cfg.max_retry_iters = retries;
    if relaxed {
        cfg = cfg.with_rail_mode(PowerRailMode::Relaxed);
    }
    let mut state = PlacementState::new(&design);
    let start = std::time::Instant::now();
    match Legalizer::new(cfg).legalize(&design, &mut state) {
        Ok(stats) => {
            let rails = if relaxed {
                RailCheck::Ignore
            } else {
                RailCheck::Enforce
            };
            let legal = check_legal(&design, &state, rails).is_ok();
            let disp = displacement_stats(&design, &state);
            println!(
                "ok in {:.2}s: direct {}, mll {}, calls {}, retry rounds {}, legal {}, disp {:.2}",
                start.elapsed().as_secs_f64(),
                stats.direct,
                stats.via_mll,
                stats.mll_calls,
                stats.retry_rounds,
                legal,
                disp.avg_sites
            );
            // Displacement percentiles, to see whether the average is
            // driven by a congested tail.
            let aspect = design.grid().aspect();
            let mut ds: Vec<f64> = design
                .movable_cells()
                .filter_map(|c| {
                    let p = state.position(c)?;
                    let (ix, iy) = design.input_position(c);
                    Some((f64::from(p.x) - ix).abs() + (f64::from(p.y) - iy).abs() * aspect)
                })
                .collect();
            ds.sort_by(f64::total_cmp);
            let pct = |q: f64| ds[((ds.len() - 1) as f64 * q) as usize];
            println!(
                "disp percentiles: p50 {:.2} p90 {:.2} p99 {:.2} p99.9 {:.2} max {:.2}",
                pct(0.5),
                pct(0.9),
                pct(0.99),
                pct(0.999),
                pct(1.0)
            );
        }
        Err(e) => {
            println!(
                "FAILED after {:.2}s: {e}; placed {}/{}",
                start.elapsed().as_secs_f64(),
                state.num_placed(),
                design.num_movable()
            );
        }
    }
}
