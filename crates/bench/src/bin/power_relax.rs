//! The paper's second experiment (Section 6, final paragraph): the effect
//! of relaxing the power-rail alignment constraint. The paper reports
//! average displacement 38% (ILP) / 42% (MLL) lower and wirelength change
//! 45% / 58% better when every cell may sit on any row.
//!
//! ```text
//! power_relax [--scale N] [--seed S] [--bench NAME]...
//! ```

use mrl_bench::{run_suite, HarnessConfig, Method};
use mrl_metrics::Table;
use mrl_synth::ispd2015_suite;

fn main() {
    let mut scale = 20.0_f64;
    let mut seed = 1u64;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |n: &str| args.next().unwrap_or_else(|| panic!("{n} needs a value"));
        match arg.as_str() {
            "--scale" => scale = val("--scale").parse().expect("numeric --scale"),
            "--seed" => seed = val("--seed").parse().expect("numeric --seed"),
            "--bench" => only.push(val("--bench")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let mut specs = ispd2015_suite();
    if !only.is_empty() {
        specs.retain(|s| only.contains(&s.name));
    }
    let cfg = HarnessConfig {
        scale,
        seed,
        methods: vec![Method::IlpOracle, Method::Mll],
        rail_modes: vec![true, false],
        ..HarnessConfig::default()
    };
    eprintln!("# Power-rail relaxation experiment — scale 1/{scale}, seed {seed}");
    let results = run_suite(&specs, &cfg);

    let mut table = Table::new(&[
        "benchmark",
        "ILP disp A",
        "ILP disp R",
        "Ours disp A",
        "Ours disp R",
    ]);
    let mut sums = [0.0f64; 4];
    let mut hpwl_sums = [0.0f64; 4];
    let mut n = 0usize;
    for r in &results {
        let pick = |method: Method, aligned: bool| {
            r.results
                .iter()
                .find(|x| x.method == method && x.aligned == aligned && !x.failed)
        };
        let (Some(ia), Some(ir), Some(oa), Some(or)) = (
            pick(Method::IlpOracle, true),
            pick(Method::IlpOracle, false),
            pick(Method::Mll, true),
            pick(Method::Mll, false),
        ) else {
            continue;
        };
        table.row(&[
            r.name.clone(),
            format!("{:.2}", ia.disp_sites),
            format!("{:.2}", ir.disp_sites),
            format!("{:.2}", oa.disp_sites),
            format!("{:.2}", or.disp_sites),
        ]);
        sums[0] += ia.disp_sites;
        sums[1] += ir.disp_sites;
        sums[2] += oa.disp_sites;
        sums[3] += or.disp_sites;
        hpwl_sums[0] += ia.hpwl_delta.abs();
        hpwl_sums[1] += ir.hpwl_delta.abs();
        hpwl_sums[2] += oa.hpwl_delta.abs();
        hpwl_sums[3] += or.hpwl_delta.abs();
        n += 1;
    }
    println!("{table}");
    if n > 0 {
        let pct = |a: f64, b: f64| (1.0 - b / a) * 100.0;
        println!(
            "average displacement reduction from relaxation: ILP {:.1}%, Ours {:.1}%",
            pct(sums[0], sums[1]),
            pct(sums[2], sums[3]),
        );
        println!(
            "average |dHPWL| improvement from relaxation:    ILP {:.1}%, Ours {:.1}%",
            pct(hpwl_sums[0], hpwl_sums[1]),
            pct(hpwl_sums[2], hpwl_sums[3]),
        );
        println!("(paper, full-size suite: displacement 38% / 42%; dHPWL 45% / 58%)");
    }
}
