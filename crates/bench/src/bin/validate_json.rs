//! CI validator for the observability artifacts.
//!
//! ```text
//! validate_json --trace FILE             # Chrome Trace Event JSON array
//! validate_json --metrics FILE           # mrl-metrics-v1 summary
//! validate_json --prom FILE [NAME...]    # Prometheus text exposition
//! ```
//!
//! Exits non-zero with a message on the first structural problem. Kept in
//! `mrl-bench` because its `Json::parse` is the workspace's only JSON
//! reader (the build is offline, no serde).

use std::collections::{BTreeMap, BTreeSet};

use mrl_bench::json::Json;

fn die(msg: &str) -> ! {
    eprintln!("validate_json: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")))
}

fn validate_trace(path: &str) {
    let Json::Arr(events) = load(path) else {
        die(&format!("{path}: trace must be a JSON array of events"));
    };
    if events.is_empty() {
        die(&format!("{path}: trace has no events"));
    }
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => die(&format!("{path}: event {i} has no \"ph\" string")),
        };
        if !matches!(ph, "X" | "B" | "E") {
            die(&format!("{path}: event {i} has unexpected ph {ph:?}"));
        }
        for key in ["pid", "tid", "ts"] {
            if ev.get(key).and_then(Json::as_f64).is_none() {
                die(&format!("{path}: event {i} missing numeric \"{key}\""));
            }
        }
        if !matches!(ev.get("name"), Some(Json::Str(_))) {
            die(&format!("{path}: event {i} missing \"name\""));
        }
        if ph == "X" {
            if ev.get("dur").and_then(Json::as_f64).is_none() {
                die(&format!("{path}: X event {i} missing numeric \"dur\""));
            }
            complete += 1;
        }
    }
    if complete == 0 {
        die(&format!("{path}: no complete (ph \"X\") events"));
    }
    println!("{path}: ok — {} events ({complete} complete)", events.len());
}

fn validate_metrics(path: &str) {
    let json = load(path);
    match json.get("schema") {
        Some(Json::Str(s)) if s == "mrl-metrics-v1" => {}
        other => die(&format!("{path}: bad schema {other:?}")),
    }
    for section in ["run", "counters", "fail_reasons", "histograms"] {
        if !matches!(json.get(section), Some(Json::Obj(_))) {
            die(&format!("{path}: missing \"{section}\" object"));
        }
    }
    for hist in ["displacement_sites", "region_cells", "retry_round"] {
        let h = json
            .get("histograms")
            .and_then(|hs| hs.get(hist))
            .unwrap_or_else(|| die(&format!("{path}: missing histogram \"{hist}\"")));
        match h.get("buckets") {
            Some(Json::Arr(b)) if b.len() == 32 => {}
            _ => die(&format!("{path}: histogram \"{hist}\" needs 32 buckets")),
        }
    }
    println!("{path}: ok — mrl-metrics-v1 with all sections");
}

/// Splits one sample line into (family name, full label block, value).
/// Label values in our exposition never contain `}` or spaces, which keeps
/// this lint-grade parser honest without a full tokenizer.
fn split_sample<'a>(path: &str, line: &'a str) -> (&'a str, &'a str, f64) {
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| die(&format!("{path}: sample without value: {line:?}")));
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| die(&format!("{path}: non-numeric value: {line:?}")));
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .unwrap_or_else(|| die(&format!("{path}: unterminated labels: {line:?}")));
            (name, labels)
        }
        None => (series, ""),
    };
    (name, labels, value)
}

/// The metric family a sample belongs to: histogram sample suffixes fold
/// into their base name when that base carries a `# TYPE ... histogram`.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|t| t == "histogram") {
                return base;
            }
        }
    }
    name
}

/// Lints a Prometheus text exposition (format 0.0.4): every sample has a
/// preceding `# TYPE` and `# HELP`, histogram buckets are cumulative
/// (monotone, ending at `+Inf` == `_count`), and every `required` family
/// is present with at least one sample.
fn validate_prom(path: &str, required: &[String]) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut families: BTreeSet<String> = BTreeSet::new();
    // Histogram series keyed by (family, labels-minus-le): bucket values in
    // file order, plus the matching _count when it arrives.
    let mut buckets: BTreeMap<(String, String), Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut sums: BTreeSet<(String, String)> = BTreeSet::new();
    let mut samples = 0usize;

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            helps.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                die(&format!("{path}: unknown TYPE {kind:?} for {name}"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, labels, value) = split_sample(path, line);
        let family = family_of(name, &types);
        if !types.contains_key(family) {
            die(&format!("{path}: sample {name} has no preceding # TYPE"));
        }
        if !helps.contains(family) {
            die(&format!("{path}: sample {name} has no preceding # HELP"));
        }
        families.insert(family.to_string());
        samples += 1;
        if types[family] == "histogram" {
            let series = |labels: &str| {
                let kept: Vec<&str> = labels
                    .split(',')
                    .filter(|kv| !kv.is_empty() && !kv.starts_with("le="))
                    .collect();
                (family.to_string(), kept.join(","))
            };
            if name.ends_with("_bucket") {
                let le = labels
                    .split(',')
                    .find_map(|kv| kv.strip_prefix("le="))
                    .unwrap_or_else(|| die(&format!("{path}: bucket without le: {line:?}")));
                buckets
                    .entry(series(labels))
                    .or_default()
                    .push((le.trim_matches('"').to_string(), value));
            } else if name.ends_with("_count") {
                counts.insert(series(labels), value);
            } else if name.ends_with("_sum") {
                sums.insert(series(labels));
            }
        }
    }

    for (key, series) in &buckets {
        let (family, labels) = key;
        let tag = if labels.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{labels}}}")
        };
        let mut prev = f64::NEG_INFINITY;
        for (le, value) in series {
            if *value < prev {
                die(&format!("{path}: {tag} buckets not cumulative at le={le}"));
            }
            prev = *value;
        }
        match series.last() {
            Some((le, inf_value)) if le == "+Inf" => {
                let count = counts
                    .get(key)
                    .unwrap_or_else(|| die(&format!("{path}: {tag} has buckets but no _count")));
                if inf_value != count {
                    die(&format!(
                        "{path}: {tag} +Inf bucket {inf_value} != _count {count}"
                    ));
                }
            }
            _ => die(&format!("{path}: {tag} does not end at le=\"+Inf\"")),
        }
        if !sums.contains(key) {
            die(&format!("{path}: {tag} has buckets but no _sum"));
        }
    }
    for name in required {
        if !families.contains(name) {
            die(&format!("{path}: required metric family \"{name}\" absent"));
        }
    }
    println!(
        "{path}: ok — {samples} samples, {} families, {} histogram series",
        families.len(),
        buckets.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--trace") if args.len() == 2 => validate_trace(&args[1]),
        Some("--metrics") if args.len() == 2 => validate_metrics(&args[1]),
        Some("--prom") if args.len() >= 2 => validate_prom(&args[1], &args[2..]),
        _ => die("usage: validate_json (--trace FILE | --metrics FILE | --prom FILE [NAME...])"),
    }
}
