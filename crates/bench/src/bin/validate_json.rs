//! CI validator for the observability artifacts.
//!
//! ```text
//! validate_json --trace FILE     # Chrome Trace Event JSON array
//! validate_json --metrics FILE   # mrl-metrics-v1 summary
//! ```
//!
//! Exits non-zero with a message on the first structural problem. Kept in
//! `mrl-bench` because its `Json::parse` is the workspace's only JSON
//! reader (the build is offline, no serde).

use mrl_bench::json::Json;

fn die(msg: &str) -> ! {
    eprintln!("validate_json: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")))
}

fn validate_trace(path: &str) {
    let Json::Arr(events) = load(path) else {
        die(&format!("{path}: trace must be a JSON array of events"));
    };
    if events.is_empty() {
        die(&format!("{path}: trace has no events"));
    }
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => die(&format!("{path}: event {i} has no \"ph\" string")),
        };
        if !matches!(ph, "X" | "B" | "E") {
            die(&format!("{path}: event {i} has unexpected ph {ph:?}"));
        }
        for key in ["pid", "tid", "ts"] {
            if ev.get(key).and_then(Json::as_f64).is_none() {
                die(&format!("{path}: event {i} missing numeric \"{key}\""));
            }
        }
        if !matches!(ev.get("name"), Some(Json::Str(_))) {
            die(&format!("{path}: event {i} missing \"name\""));
        }
        if ph == "X" {
            if ev.get("dur").and_then(Json::as_f64).is_none() {
                die(&format!("{path}: X event {i} missing numeric \"dur\""));
            }
            complete += 1;
        }
    }
    if complete == 0 {
        die(&format!("{path}: no complete (ph \"X\") events"));
    }
    println!("{path}: ok — {} events ({complete} complete)", events.len());
}

fn validate_metrics(path: &str) {
    let json = load(path);
    match json.get("schema") {
        Some(Json::Str(s)) if s == "mrl-metrics-v1" => {}
        other => die(&format!("{path}: bad schema {other:?}")),
    }
    for section in ["run", "counters", "fail_reasons", "histograms"] {
        if !matches!(json.get(section), Some(Json::Obj(_))) {
            die(&format!("{path}: missing \"{section}\" object"));
        }
    }
    for hist in ["displacement_sites", "region_cells", "retry_round"] {
        let h = json
            .get("histograms")
            .and_then(|hs| hs.get(hist))
            .unwrap_or_else(|| die(&format!("{path}: missing histogram \"{hist}\"")));
        match h.get("buckets") {
            Some(Json::Arr(b)) if b.len() == 32 => {}
            _ => die(&format!("{path}: histogram \"{hist}\" needs 32 buckets")),
        }
    }
    println!("{path}: ok — mrl-metrics-v1 with all sections");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 {
        die("usage: validate_json (--trace FILE | --metrics FILE)");
    }
    match args[0].as_str() {
        "--trace" => validate_trace(&args[1]),
        "--metrics" => validate_metrics(&args[1]),
        other => die(&format!("unknown mode {other}")),
    }
}
